"""Neural-stage parser tests: training, inference, and family contrasts.

Training fixtures are session-scoped so the (fast, but not free) SGD fits
run once per test session.
"""

import numpy as np
import pytest

from repro.metrics import evaluate_parser
from repro.parsers.base import ParseRequest
from repro.parsers.neural import (
    ExecutionGuidedParser,
    FeatureConfig,
    GrammarNeuralParser,
    SketchParser,
)
from repro.parsers.neural.features import (
    column_features,
    question_vector,
    table_features,
)
from repro.parsers.neural.models import LinearRanker, SoftmaxClassifier
from repro.parsers.neural.slots import extract_slots
from repro.parsers.neural.values import (
    extract_capitalized,
    extract_numbers,
    extract_quoted,
    extract_reserved_number,
)
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql


@pytest.fixture(scope="module")
def trained_grammar(tiny_spider):
    parser = GrammarNeuralParser(epochs=30)
    parser.train(tiny_spider.split("train").examples, tiny_spider.databases)
    return parser


@pytest.fixture(scope="module")
def trained_sketch(tiny_wikisql):
    parser = SketchParser(epochs=30)
    parser.train(tiny_wikisql.split("train").examples, tiny_wikisql.databases)
    return parser


class TestModels:
    def test_softmax_learns_separable_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 4)).astype(np.float32)
        y = (x[:, 0] > 0).astype(int)
        model = SoftmaxClassifier(4, 2, epochs=30)
        model.fit(x, y)
        correct = sum(
            model.predict(x[i]) == y[i] for i in range(len(x))
        )
        assert correct / len(x) > 0.9

    def test_softmax_state_roundtrip(self):
        model = SoftmaxClassifier(3, 2)
        model.weights[:] = 1.5
        clone = SoftmaxClassifier(3, 2)
        clone.load_state(model.state_dict())
        assert np.allclose(clone.weights, model.weights)

    def test_ranker_learns_preference(self):
        rng = np.random.default_rng(1)
        groups = []
        for _ in range(80):
            candidates = rng.normal(size=(5, 3)).astype(np.float32)
            gold = int(np.argmax(candidates[:, 1]))  # feature 1 is the signal
            groups.append((candidates, gold))
        ranker = LinearRanker(3, epochs=15)
        ranker.fit(groups)
        hits = sum(ranker.best(c) == g for c, g in groups)
        assert hits / len(groups) > 0.85

    def test_fit_empty_is_noop(self):
        SoftmaxClassifier(3, 2).fit(np.zeros((0, 3)), np.zeros(0, dtype=int))
        LinearRanker(3).fit([])


class TestFeatures:
    def test_question_vector_normalized_and_deterministic(self):
        config = FeatureConfig()
        a = question_vector("show the price of products", config)
        b = question_vector("show the price of products", config)
        assert np.allclose(a, b)
        assert np.linalg.norm(a) == pytest.approx(1.0, abs=1e-5)

    def test_column_features_detect_overlap(self, sales_db):
        config = FeatureConfig()
        schema = sales_db.schema
        products = schema.table("products")
        price = products.column("price")
        stock = products.column("stock")
        question = "what is the price of products"
        price_vec = column_features(
            question, price, products, products, schema, "condition", config
        )
        stock_vec = column_features(
            question, stock, products, products, schema, "condition", config
        )
        assert price_vec[0] == 1.0  # exact overlap
        assert stock_vec[0] == 0.0

    def test_table_features_detect_mention(self, sales_db):
        config = FeatureConfig()
        schema = sales_db.schema
        vec = table_features(
            "how many orders", schema.table("orders"), schema, config
        )
        other = table_features(
            "how many orders", schema.table("products"), schema, config
        )
        assert vec[0] == 1.0 and other[0] == 0.0


class TestSlots:
    def test_simple_projection(self):
        slots = extract_slots(parse_sql("SELECT name, price FROM products"))
        assert slots.main_table == "products"
        assert slots.projection == [(None, "name"), (None, "price")]
        assert slots.agg == "none"

    def test_aggregate_and_condition(self):
        slots = extract_slots(
            parse_sql("SELECT AVG(price) FROM products WHERE stock > 5")
        )
        assert slots.agg == "avg"
        assert slots.agg_column == (None, "price")
        assert slots.conditions[0].op == ">"
        assert slots.conditions[0].value == 5

    def test_group_order_limit(self):
        slots = extract_slots(
            parse_sql(
                "SELECT category, COUNT(*) FROM products GROUP BY category "
                "HAVING COUNT(*) >= 2 ORDER BY category DESC LIMIT 3"
            )
        )
        assert slots.group == (None, "category")
        assert slots.having_min == 2
        assert slots.order_desc and slots.limit == 3

    def test_nested_in(self):
        slots = extract_slots(
            parse_sql(
                "SELECT name FROM products WHERE product_id IN "
                "(SELECT product_id FROM orders WHERE quantity > 2)"
            )
        )
        assert slots.nested_table == "orders"
        assert slots.nested_conditions[0].column == (None, "quantity")

    def test_set_operation(self):
        slots = extract_slots(
            parse_sql(
                "SELECT name FROM t WHERE x = 1 UNION "
                "SELECT name FROM t WHERE x = 2"
            )
        )
        assert slots.set_op == "union"
        assert slots.second_conditions[0].value == 2

    def test_out_of_space_returns_none(self):
        assert extract_slots(
            parse_sql("SELECT a + b FROM t")
        ) is None


class TestValuePointers:
    def test_numbers_skip_reserved(self):
        numbers = extract_numbers(
            "the top 3 products whose price is above 100"
        )
        assert [n.value for n in numbers] == [100]

    def test_reserved_number_extraction(self):
        q = "top 5 items, considering only groups with at least 2 entries"
        assert extract_reserved_number(q, "top") == 5
        assert extract_reserved_number(q, "at least") == 2
        assert extract_reserved_number(q, "bottom") is None

    def test_quoted(self):
        assert [v.value for v in extract_quoted("contains 'abc' here")] == [
            "abc"
        ]

    def test_capitalized_skips_opener(self):
        values = [v.value for v in extract_capitalized(
            "Show the name of The Olive Branch"
        )]
        assert "The Olive Branch" in values
        assert "Show" not in values


class TestTrainedParsers:
    def test_sketch_good_on_wikisql(self, trained_sketch, tiny_wikisql):
        report = evaluate_parser(trained_sketch, tiny_wikisql)
        assert report.accuracy("execution_match") > 0.5

    def test_sketch_poor_on_spider(self, trained_sketch, tiny_spider):
        report = evaluate_parser(trained_sketch, tiny_spider)
        assert report.accuracy("execution_match") < 0.55

    def test_grammar_beats_sketch_on_spider(
        self, trained_grammar, trained_sketch, tiny_spider
    ):
        grammar = evaluate_parser(trained_grammar, tiny_spider)
        sketch = evaluate_parser(trained_sketch, tiny_spider)
        assert grammar.accuracy("execution_match") > sketch.accuracy(
            "execution_match"
        )

    def test_sketch_never_emits_joins(self, trained_sketch, tiny_spider):
        for example in tiny_spider.split("dev").examples[:20]:
            db = tiny_spider.database(example.db_id)
            result = trained_sketch.parse(
                ParseRequest(
                    question=example.question, schema=db.schema, db=db
                )
            )
            if result.query is not None:
                assert "JOIN" not in to_sql(result.query)

    def test_untrained_parser_fails_gracefully(self, tiny_spider):
        parser = GrammarNeuralParser()
        example = tiny_spider.split("dev").examples[0]
        db = tiny_spider.database(example.db_id)
        result = parser.parse(
            ParseRequest(question=example.question, schema=db.schema, db=db)
        )
        assert result.query is None
        assert "not trained" in result.notes

    def test_execution_guided_never_worse(self, trained_grammar, tiny_spider):
        base = evaluate_parser(trained_grammar, tiny_spider)
        guided = evaluate_parser(
            ExecutionGuidedParser(trained_grammar), tiny_spider
        )
        assert guided.accuracy("execution_match") >= base.accuracy(
            "execution_match"
        ) - 1e-9

    def test_predictions_are_valid_sql(self, trained_grammar, tiny_spider):
        from repro.sql.analyzer import is_valid

        valid = 0
        total = 0
        for example in tiny_spider.split("dev").examples[:25]:
            db = tiny_spider.database(example.db_id)
            result = trained_grammar.parse(
                ParseRequest(
                    question=example.question, schema=db.schema, db=db
                )
            )
            if result.query is None:
                continue
            total += 1
            if is_valid(result.query, db.schema):
                valid += 1
        assert total > 0 and valid / total > 0.85
