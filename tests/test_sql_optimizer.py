"""Differential and regression tests for the cost-based optimizer.

Three-way property testing is the backbone: every seeded random query
(reusing ``test_sql_plan``'s generator) must produce identical results
with the optimizer on, the optimizer off, and the reference interpreter —
including on empty tables and all-NULL join keys, and with the index-build
threshold forced to 1 so even four-row fixtures exercise the index paths.
"""

from __future__ import annotations

import random

import pytest

from repro.data.database import Database
from repro.data.schema import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.errors import SQLError
from repro.sql import index as sqlindex
from repro.sql.executor import execute_reference
from repro.sql.parser import parse_sql
from repro.sql.plan import (
    clear_plan_caches,
    compile_query,
    compile_sql,
    configure_caches,
    explain,
    parse_cache_stats,
    plan_cache_stats,
    set_optimizer_enabled,
)
from tests.test_sql_plan import _random_query

NUM = ColumnType.NUMBER
TXT = ColumnType.TEXT


@pytest.fixture(autouse=True)
def tiny_index_threshold():
    """Force index builds even on tiny fixtures; restore afterwards."""
    previous = sqlindex.set_min_index_rows(1)
    yield
    sqlindex.set_min_index_rows(previous)


def assert_three_way(sql: str, db: Database) -> None:
    """Reference, optimizer-off, and optimizer-on must agree exactly."""
    query = parse_sql(sql)
    try:
        expected = execute_reference(query, db)
    except SQLError as exc:
        for optimize in (False, True):
            with pytest.raises(type(exc)) as info:
                compile_query(query, db.schema, db, optimize=optimize).run(db)
            assert str(info.value) == str(exc), (sql, optimize)
        return
    for optimize in (False, True):
        got = compile_query(query, db.schema, db, optimize=optimize).run(db)
        assert got.columns == expected.columns, (sql, optimize)
        assert got.rows == expected.rows, (sql, optimize)
        assert got.ordered == expected.ordered, (sql, optimize)


@pytest.fixture
def empty_db(shop_schema) -> Database:
    return Database(schema=shop_schema)


@pytest.fixture
def null_join_db(shop_schema) -> Database:
    db = Database(schema=shop_schema)
    for row in (
        (1, "widget", "tools", 9.5),
        (2, "gadget", None, 19.0),
        (3, None, "food", None),
    ):
        db.insert("products", row)
    for i in range(1, 7):  # every join key NULL
        db.insert("sales", (i, None, i, "Q1" if i % 2 else None))
    return db


class TestThreeWayProperty:
    def test_random_queries_shop(self, shop_db):
        rng = random.Random(4321)
        for _ in range(150):
            assert_three_way(_random_query(rng), shop_db)

    def test_random_queries_empty_tables(self, empty_db):
        rng = random.Random(99)
        for _ in range(100):
            assert_three_way(_random_query(rng), empty_db)

    def test_random_queries_all_null_join_keys(self, null_join_db):
        rng = random.Random(7)
        for _ in range(100):
            assert_three_way(_random_query(rng), null_join_db)

    def test_semi_join_lowering(self, shop_db):
        sql = (
            "SELECT name FROM products WHERE id IN "
            "(SELECT product_id FROM sales WHERE quantity > 2)"
        )
        assert_three_way(sql, shop_db)
        plan = compile_query(parse_sql(sql), shop_db.schema, shop_db,
                             optimize=True)
        assert plan.describe()["semi_joins"] == 1

    def test_semi_join_on_empty_source(self, empty_db):
        assert_three_way(
            "SELECT name FROM products WHERE id IN "
            "(SELECT product_id FROM sales)",
            empty_db,
        )


# ----------------------------------------------------------------------
@pytest.fixture
def mart_db() -> Database:
    """Three joinable tables with skewed sizes, for join reordering."""
    schema = Schema(
        db_id="mart",
        tables=(
            TableSchema(
                "customers",
                (Column("id", NUM), Column("name", TXT), Column("city", TXT)),
                primary_key="id",
            ),
            TableSchema(
                "orders",
                (
                    Column("id", NUM),
                    Column("customer_id", NUM),
                    Column("product_id", NUM),
                    Column("quantity", NUM),
                ),
                primary_key="id",
            ),
            TableSchema(
                "products",
                (Column("id", NUM), Column("name", TXT), Column("price", NUM)),
                primary_key="id",
            ),
        ),
        foreign_keys=(
            ForeignKey("orders", "customer_id", "customers", "id"),
            ForeignKey("orders", "product_id", "products", "id"),
        ),
    )
    db = Database(schema=schema)
    rng = random.Random(5)
    cities = ("east", "west", None)
    for i in range(40):
        db.insert("customers", (i, f"c{i}", rng.choice(cities)))
    for i in range(25):
        db.insert("products", (i, f"p{i}", rng.randrange(5, 200)))
    for i in range(300):
        db.insert(
            "orders",
            (
                i,
                rng.choice((rng.randrange(40), None)),
                rng.randrange(25),
                rng.randrange(1, 9),
            ),
        )
    return db


_MART_JOIN = (
    "FROM orders AS o JOIN customers AS c ON c.id = o.customer_id "
    "JOIN products AS p ON p.id = o.product_id"
)


class TestJoinReordering:
    def test_reorder_fires_and_agrees(self, mart_db):
        sql = (
            f"SELECT c.name, p.name {_MART_JOIN} "
            "WHERE p.price > 150 ORDER BY c.name, p.name"
        )
        assert_three_way(sql, mart_db)
        plan = compile_query(parse_sql(sql), mart_db.schema, mart_db,
                             optimize=True)
        assert plan.describe()["join_reorders"] == 1

    def test_reorder_preserves_written_order_rows(self, mart_db):
        # no ORDER BY: row order must still match written-order enumeration
        assert_three_way(
            f"SELECT o.id, c.name, p.price {_MART_JOIN} "
            "WHERE p.price <= 60",
            mart_db,
        )

    def test_reorder_with_aggregation(self, mart_db):
        assert_three_way(
            f"SELECT c.city, COUNT(*), SUM(o.quantity) {_MART_JOIN} "
            "WHERE p.price BETWEEN 20 AND 120 GROUP BY c.city",
            mart_db,
        )

    def test_left_join_never_reordered(self, mart_db):
        sql = (
            "SELECT c.name, p.name FROM orders AS o "
            "LEFT JOIN customers AS c ON c.id = o.customer_id "
            "JOIN products AS p ON p.id = o.product_id WHERE p.price > 100"
        )
        assert_three_way(sql, mart_db)
        plan = compile_query(parse_sql(sql), mart_db.schema, mart_db,
                             optimize=True)
        assert plan.describe()["join_reorders"] == 0

    def test_topk_order_by_limit(self, mart_db):
        sql = "SELECT name, price FROM products ORDER BY price DESC LIMIT 3"
        assert_three_way(sql, mart_db)
        plan = compile_query(parse_sql(sql), mart_db.schema, mart_db,
                             optimize=True)
        assert plan.describe()["topk_sorts"] == 1


# ----------------------------------------------------------------------
class TestStalePlanHazard:
    def test_insert_between_cached_executions(self, shop_db):
        """A cached plan must see rows inserted after its first execution."""
        clear_plan_caches()
        sql = "SELECT name FROM products WHERE id = 99"
        first = compile_sql(sql, shop_db.schema, shop_db).run(shop_db)
        assert first.rows == []
        shop_db.insert("products", (99, "late", "tools", 1.0))
        second = compile_sql(sql, shop_db.schema, shop_db).run(shop_db)
        assert second.rows == [("late",)]
        assert plan_cache_stats()["hits"] >= 1  # same plan object both times

    def test_insert_invalidates_sorted_index_topk(self, shop_db):
        clear_plan_caches()
        sql = "SELECT name FROM products ORDER BY price DESC LIMIT 1"
        first = compile_sql(sql, shop_db.schema, shop_db).run(shop_db)
        assert first.rows == [("gadget",)]
        shop_db.insert("products", (50, "deluxe", "tools", 500.0))
        second = compile_sql(sql, shop_db.schema, shop_db).run(shop_db)
        assert second.rows == [("deluxe",)]

    def test_stats_refresh_across_variants(self, shop_db):
        # one cached plan, executed against a structurally different copy
        clear_plan_caches()
        sql = "SELECT COUNT(*) FROM sales WHERE quantity >= 3"
        plan = compile_sql(sql, shop_db.schema, shop_db)
        assert plan.run(shop_db).rows == [(3,)]
        variant = shop_db.copy()
        variant.table("sales").replace_rows([(1, 1, 9, "Q9")])
        assert plan.run(variant).rows == [(1,)]


# ----------------------------------------------------------------------
class TestExplainAndCaches:
    def test_explain_estimates_and_actuals(self, mart_db):
        text = explain(
            f"SELECT c.name {_MART_JOIN} WHERE p.price > 150", mart_db
        )
        assert "est_rows=" in text
        assert "actual_rows=" in text
        assert "scan" in text
        assert "-- plan (optimized)" in text

    def test_explain_reports_execution_errors(self, shop_db):
        text = explain("SELECT name + 1 FROM products", shop_db)
        assert "-- execution failed:" in text

    def test_optimizer_toggle_keys_plan_cache(self, shop_db):
        clear_plan_caches()
        sql = "SELECT name FROM products WHERE price > 5"
        on = compile_sql(sql, shop_db.schema, shop_db)
        assert on.optimized
        previous = set_optimizer_enabled(False)
        try:
            off = compile_sql(sql, shop_db.schema, shop_db)
            assert not off.optimized
            assert off is not on
            assert off.run(shop_db).rows == on.run(shop_db).rows
        finally:
            set_optimizer_enabled(previous)

    def test_configurable_cache_sizes(self, shop_db):
        clear_plan_caches()
        configure_caches(plan_size=2, parse_size=2)
        try:
            for i in range(5):
                compile_sql(
                    f"SELECT name FROM products WHERE id = {i}",
                    shop_db.schema,
                )
            assert plan_cache_stats()["size"] <= 2
            assert plan_cache_stats()["max_size"] == 2
            assert parse_cache_stats()["size"] <= 2
            assert parse_cache_stats()["misses"] >= 5
        finally:
            configure_caches(plan_size=512, parse_size=2048)
            clear_plan_caches()
