"""Unparser tests: canonical rendering and parse/unparse round-trips."""

import pytest

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    TableRef,
)
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql

ROUND_TRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b FROM t",
    "SELECT * FROM t WHERE a > 5",
    "SELECT t.* FROM t",
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(DISTINCT a) FROM t",
    "SELECT a FROM t WHERE a = 1 AND b = 2",
    "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3",
    "SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 5",
    "SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5",
    "SELECT a FROM t WHERE a IN (1, 2, 3)",
    "SELECT a FROM t WHERE a NOT IN ('x', 'y')",
    "SELECT a FROM t WHERE a LIKE '%x%'",
    "SELECT a FROM t WHERE a IS NULL",
    "SELECT a FROM t WHERE a IS NOT NULL",
    "SELECT a FROM t WHERE NOT a = 1",
    "SELECT a FROM t WHERE EXISTS (SELECT * FROM u)",
    "SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE c < 2)",
    "SELECT a FROM t WHERE a > (SELECT AVG(a) FROM t)",
    "SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 10",
    "SELECT a FROM t ORDER BY a DESC LIMIT 3",
    "SELECT a FROM t AS x JOIN u AS y ON x.i = y.i",
    "SELECT a FROM t LEFT JOIN u ON t.i = u.i",
    "SELECT a FROM t UNION SELECT b FROM u",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT a FROM t INTERSECT SELECT a FROM u",
    "SELECT a FROM t EXCEPT SELECT a FROM u",
    "SELECT a + b * c FROM t",
    "SELECT (a + b) * c FROM t",
    "SELECT a - (b - c) FROM t",
    "SELECT a AS x, b AS y FROM t",
    "SELECT -5",
    "SELECT 'it''s' FROM t",
    "SELECT upper(name) FROM t",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
def test_round_trip_is_stable(sql):
    """to_sql(parse(s)) parses back to the identical AST."""
    first = parse_sql(sql)
    rendered = to_sql(first)
    second = parse_sql(rendered)
    assert first == second
    # and the canonical text is a fixed point
    assert to_sql(second) == rendered


def test_keywords_uppercased():
    assert to_sql(parse_sql("select a from t where a is null")) == (
        "SELECT a FROM t WHERE a IS NULL"
    )


def test_literal_rendering():
    assert to_sql(Literal(None)) == "NULL"
    assert to_sql(Literal(True)) == "TRUE"
    assert to_sql(Literal(False)) == "FALSE"
    assert to_sql(Literal(3)) == "3"
    assert to_sql(Literal(2.5)) == "2.5"
    assert to_sql(Literal("o'clock")) == "'o''clock'"


def test_order_item_direction():
    item = OrderItem(expr=ColumnRef("a"), descending=True)
    assert to_sql(item) == "a DESC"


def test_expression_parenthesization_minimal():
    # no needless parens around the tighter-binding side
    sql = to_sql(parse_sql("SELECT a + b * c FROM t"))
    assert sql == "SELECT a + b * c FROM t"
    sql = to_sql(parse_sql("SELECT (a + b) * c FROM t"))
    assert sql == "SELECT (a + b) * c FROM t"


def test_unknown_node_raises():
    with pytest.raises(TypeError):
        to_sql(object())  # type: ignore[arg-type]


def test_manual_ast_rendering():
    query = Select(
        items=(SelectItem(expr=ColumnRef("name")),),
        from_=TableRef(name="products"),
        where=BinaryOp(">", ColumnRef("price"), Literal(5)),
    )
    assert to_sql(query) == "SELECT name FROM products WHERE price > 5"
