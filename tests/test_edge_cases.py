"""Edge-case tests across the substrates."""

import pytest

from repro.data.database import Database
from repro.data.schema import Column, ColumnType, Schema, TableSchema
from repro.sql.executor import execute
from repro.sql.parser import parse_sql


def run(db, sql):
    return execute(parse_sql(sql), db)


class TestExecutorEdges:
    def test_like_underscore_wildcard(self, shop_db):
        result = run(
            shop_db, "SELECT name FROM products WHERE name LIKE 'g_dget'"
        )
        assert result.rows == [("gadget",)]

    def test_like_escaping_of_regex_chars(self, shop_schema):
        db = Database(schema=shop_schema)
        db.insert("products", (1, "a.b", "x", 1.0))
        db.insert("products", (2, "acb", "x", 1.0))
        result = run(db, "SELECT name FROM products WHERE name LIKE 'a.b'")
        assert result.rows == [("a.b",)]  # dot is literal, not regex

    def test_mixed_int_float_arithmetic(self, shop_db):
        result = run(shop_db, "SELECT 3 + 2.5")
        assert result.rows == [(5.5,)]

    def test_string_concatenation_via_plus(self, shop_db):
        result = run(shop_db, "SELECT 'a' + 'b'")
        assert result.rows == [("ab",)]

    def test_modulo_and_zero(self, shop_db):
        assert run(shop_db, "SELECT 7 % 3").rows == [(1,)]
        assert run(shop_db, "SELECT 7 % 0").rows == [(None,)]

    def test_alias_shadowing_in_correlated_subquery(self, shop_db):
        # inner binding 'p' shadows any outer name; correlation still works
        result = run(
            shop_db,
            "SELECT name FROM products AS p WHERE EXISTS "
            "(SELECT * FROM sales AS p2 WHERE p2.product_id = p.id)",
        )
        assert len(result.rows) == 4

    def test_count_distinct_with_nulls(self, shop_db):
        result = run(shop_db, "SELECT COUNT(DISTINCT price) FROM products")
        assert result.rows == [(3,)]  # NULL excluded

    def test_order_by_expression(self, shop_db):
        result = run(
            shop_db,
            "SELECT name FROM products WHERE price IS NOT NULL "
            "ORDER BY price * -1 ASC",
        )
        assert result.rows[0] == ("gadget",)

    def test_limit_zero(self, shop_db):
        assert run(shop_db, "SELECT name FROM products LIMIT 0").rows == []

    def test_empty_table_aggregates(self, shop_schema):
        db = Database(schema=shop_schema)
        result = run(
            db, "SELECT COUNT(*), SUM(price), MIN(price) FROM products"
        )
        assert result.rows == [(0, None, None)]

    def test_group_by_null_key(self, shop_schema):
        db = Database(schema=shop_schema)
        db.insert("products", (1, "a", None, 1.0))
        db.insert("products", (2, "b", None, 2.0))
        db.insert("products", (3, "c", "x", 3.0))
        result = run(
            db, "SELECT category, COUNT(*) FROM products GROUP BY category"
        )
        assert (None, 2) in result.rows and ("x", 1) in result.rows

    def test_between_reversed_bounds_empty(self, shop_db):
        result = run(
            shop_db, "SELECT name FROM products WHERE price BETWEEN 10 AND 1"
        )
        assert result.rows == []

    def test_scalar_subquery_empty_is_null(self, shop_db):
        result = run(
            shop_db,
            "SELECT (SELECT price FROM products WHERE id = 999)",
        )
        assert result.rows == [(None,)]

    def test_union_of_aggregates(self, shop_db):
        result = run(
            shop_db,
            "SELECT COUNT(*) FROM products UNION SELECT COUNT(*) FROM sales",
        )
        assert set(result.rows) == {(4,), (5,)}

    def test_self_join_with_aliases(self, shop_db):
        result = run(
            shop_db,
            "SELECT a.name, b.name FROM products AS a JOIN products AS b "
            "ON a.category = b.category WHERE a.id < b.id",
        )
        assert ("widget", "gadget") in result.rows
        assert ("apple", "bread") in result.rows
        assert len(result.rows) == 2


class TestParserEdges:
    def test_deeply_nested_subqueries(self):
        query = parse_sql(
            "SELECT a FROM t WHERE i IN (SELECT j FROM u WHERE k IN "
            "(SELECT m FROM v WHERE x = 1))"
        )
        from repro.sql.ast import InSubquery

        inner = query.where
        assert isinstance(inner, InSubquery)
        assert isinstance(inner.query.where, InSubquery)

    def test_case_insensitive_keywords_everywhere(self):
        query = parse_sql(
            "sElEcT DiStInCt a FrOm t WhErE a iS nOt NuLl oRdEr By a dEsC"
        )
        assert query.distinct
        assert query.order_by[0].descending

    def test_keyword_like_identifier_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_sql("SELECT select FROM from")

    def test_very_long_in_list(self):
        values = ", ".join(str(i) for i in range(200))
        query = parse_sql(f"SELECT a FROM t WHERE a IN ({values})")
        assert len(query.where.items) == 200

    def test_unicode_string_literal(self):
        query = parse_sql("SELECT a FROM t WHERE b = '北京'")
        assert query.where.right.value == "北京"


class TestSchemaEdges:
    def test_empty_schema_graph(self):
        schema = Schema(db_id="empty", tables=())
        assert schema.graph().number_of_nodes() == 0

    def test_single_column_table(self):
        schema = Schema(
            db_id="tiny",
            tables=(TableSchema("t", (Column("only"),)),),
        )
        schema.validate()
        db = Database(schema=schema)
        db.insert("t", ("v",))
        assert run(db, "SELECT only FROM t").rows == [("v",)]


class TestVQLEdges:
    def test_vql_with_set_operation_sql(self):
        from repro.vis.vql import parse_vql, to_vql

        text = (
            "VISUALIZE BAR SELECT a, COUNT(*) FROM t GROUP BY a UNION "
            "SELECT b, COUNT(*) FROM u GROUP BY b"
        )
        assert to_vql(parse_vql(text)) == text

    def test_vql_trailing_semicolon(self):
        from repro.vis.vql import parse_vql

        vql = parse_vql("VISUALIZE PIE SELECT a, b FROM t;")
        assert vql.chart_type == "pie"


class TestPromptEdges:
    def test_prompt_with_quotes_in_question(self):
        from repro.data.domains import domain_by_name
        from repro.llm.prompts import PromptBuilder, parse_prompt

        schema = domain_by_name("sales").schema
        prompt = PromptBuilder().build(
            "Show products whose name includes 'it''s'?", schema
        )
        parsed = parse_prompt(prompt)
        assert "it''s" in parsed.question

    def test_empty_demonstration_list_omitted(self):
        from repro.data.domains import domain_by_name
        from repro.llm.prompts import PromptBuilder

        schema = domain_by_name("sales").schema
        prompt = PromptBuilder().build("q?", schema, demonstrations=None)
        assert "### Examples:" not in prompt


class TestSystemsEdges:
    def test_knowledge_flows_through_system(self, sales_db):
        from repro.systems import ParsingBasedSystem

        response = ParsingBasedSystem().answer(
            "Display the name of premium products?",
            sales_db,
            knowledge=(
                "Premium products are products whose price is greater "
                "than 500."
            ),
        )
        assert response.kind == "data"
        assert "price > 500" in response.sql

    def test_empty_database_answers_gracefully(self, shop_schema):
        from repro.systems import ParsingBasedSystem

        db = Database(schema=shop_schema)
        response = ParsingBasedSystem().answer(
            "How many products?", db
        )
        assert response.kind == "data"
        assert response.result.rows == [(0,)]
