"""Cross-module integration tests: full train→parse→execute→score flows."""

import pytest

from repro.datasets import build_dataset
from repro.metrics import evaluate_parser
from repro.parsers.base import ParseRequest
from repro.parsers.semantic import GrammarSemanticParser


class TestEveryDatasetFamilyEvaluates:
    """The semantic parser (appropriately configured) runs end to end on
    every SQL dataset family without crashing, and beats chance."""

    @pytest.mark.parametrize(
        "name,kwargs,floor",
        [
            ("geoquery_like", {}, 0.6),
            ("wikisql_like", {}, 0.6),
            ("spider_like", {}, 0.6),
            ("kaggledbqa_like", {}, 0.6),
            ("sparc_like", {"use_history": True}, 0.5),
            ("bird_like", {"use_knowledge": True}, 0.6),
            ("cspider_like", {"languages": ("en", "zh")}, 0.5),
            ("vitext2sql_like", {"languages": ("en", "vi")}, 0.4),
            ("portuguese_spider_like", {"languages": ("en", "pt")}, 0.5),
            ("pauq_like", {"languages": ("en", "ru")}, 0.5),
            ("spider_dk_like", {"use_knowledge": True}, 0.6),
            ("spider_syn_like", {"world_knowledge": True}, 0.5),
            ("dr_spider_nlq_like", {"fuzzy": True}, 0.4),
        ],
    )
    def test_family(self, name, kwargs, floor):
        ds = build_dataset(name, scale=0.03, seed=13)
        parser = GrammarSemanticParser(**kwargs)
        report = evaluate_parser(parser, ds)
        assert report.total > 0
        assert report.accuracy("execution_match") >= floor, name


class TestCapabilityAblationsAcrossFamilies:
    """Each capability knob matters exactly on the family that probes it."""

    def test_history_matters_only_multiturn(self):
        mt = build_dataset("sparc_like", scale=0.05, seed=14)
        with_history = evaluate_parser(
            GrammarSemanticParser(use_history=True), mt
        ).accuracy("execution_match")
        without = evaluate_parser(
            GrammarSemanticParser(use_history=False), mt
        ).accuracy("execution_match")
        assert with_history > without

    def test_knowledge_matters_only_bird(self):
        kg = build_dataset("bird_like", scale=0.05, seed=14)
        with_knowledge = evaluate_parser(
            GrammarSemanticParser(use_knowledge=True), kg
        ).accuracy("execution_match")
        without = evaluate_parser(
            GrammarSemanticParser(use_knowledge=False), kg
        ).accuracy("execution_match")
        assert with_knowledge > without + 0.3

    def test_language_capability_gates_multilingual(self):
        zh = build_dataset("cspider_like", scale=0.05, seed=14)
        capable = evaluate_parser(
            GrammarSemanticParser(languages=("en", "zh")), zh
        ).accuracy("execution_match")
        english_only = evaluate_parser(
            GrammarSemanticParser(languages=("en",)), zh
        ).accuracy("execution_match")
        assert capable > english_only + 0.3


class TestFullStackRoundTrip:
    """Dataset → parser → executor → metrics → report, one pass."""

    def test_pipeline_on_vis(self, tiny_nvbench):
        from repro.parsers.vis import Chat2VisParser
        from repro.vis.charts import render_chart

        parser = Chat2VisParser()
        rendered = 0
        for example in tiny_nvbench.split("dev").examples[:10]:
            db = tiny_nvbench.database(example.db_id)
            vql = parser.parse_vis(
                ParseRequest(
                    question=example.question, schema=db.schema, db=db
                )
            )
            if vql is None:
                continue
            try:
                chart = render_chart(vql, db)
            except Exception:
                continue
            rendered += 1
            assert chart.chart_type in ("bar", "pie", "line", "scatter")
        assert rendered >= 7

    def test_csv_roundtrip_preserves_evaluation(self, tmp_path):
        """Persist a benchmark's database to CSV, reload, re-evaluate:
        identical results."""
        from repro.data.database import Database

        ds = build_dataset("geoquery_like", scale=0.03, seed=15)
        parser = GrammarSemanticParser()
        before = evaluate_parser(parser, ds).accuracy("execution_match")

        db_id, db = next(iter(ds.databases.items()))
        db.to_csv_dir(tmp_path)
        ds.databases[db_id] = Database.from_csv_dir(db.schema, tmp_path)
        after = evaluate_parser(parser, ds).accuracy("execution_match")
        assert before == after

    def test_determinism_across_full_stack(self):
        def one_pass():
            ds = build_dataset("spider_like", scale=0.03, seed=99)
            report = evaluate_parser(GrammarSemanticParser(), ds)
            return (
                report.accuracy("execution_match"),
                [e.sql for e in ds.examples[:5]],
            )

        assert one_pass() == one_pass()
