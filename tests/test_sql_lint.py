"""Lint subsystem tests: diagnostics, types, rules, lineage, gate, CLI."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.sql.analyzer import analyze
from repro.sql.ast import Select, SelectItem, ColumnRef, FuncCall, Star
from repro.sql.lint import (
    RULES,
    Severity,
    build_lineage,
    lint_query,
    lint_sql,
)
from repro.sql.parser import parse_sql


def lint(schema, sql):
    return lint_sql(sql, schema)


def codes(report):
    return [d.code for d in report.diagnostics]


# ----------------------------------------------------------------------
# multi-diagnostic engine behaviour
# ----------------------------------------------------------------------
class TestEngine:
    def test_collects_multiple_diagnostics_in_one_run(self, shop_schema):
        # fail-fast analyzer would stop at the first unknown column; the
        # engine reports every problem: two unknown columns, a type error,
        # and an ungrouped projection
        report = lint(
            shop_schema,
            "SELECT missing1, missing2, SUM(quarter) FROM sales "
            "WHERE quantity = 'many'",
        )
        assert len(report.errors) >= 2
        assert len(set(codes(report))) >= 2
        assert report.counts()["E102"] == 2

    def test_clean_query_empty_report(self, shop_schema):
        report = lint(shop_schema, "SELECT name FROM products")
        assert report.diagnostics == []
        assert report.ok
        assert report.max_severity() is None

    def test_scope_diagnostics_precede_type_and_rule_findings(
        self, shop_schema
    ):
        report = lint(
            shop_schema,
            "SELECT missing FROM products WHERE price = 'cheap'",
        )
        assert codes(report)[0] == "E102"  # scope pass runs first
        assert "E201" in codes(report)
        scope_index = codes(report).index("E102")
        type_index = codes(report).index("E201")
        assert scope_index < type_index

    def test_first_fatal_matches_analyzer_exception(self, shop_schema):
        sql = "SELECT name, missing FROM products WHERE nope = 1"
        report = lint(shop_schema, sql)
        with pytest.raises(AnalysisError) as exc:
            analyze(parse_sql(sql), shop_schema)
        assert report.first_fatal is not None
        assert report.first_fatal.message == str(exc.value)

    def test_analysis_collected_despite_errors(self, shop_schema):
        report = lint(
            shop_schema, "SELECT name, missing FROM products"
        )
        assert ("products", "name") in report.analysis.columns

    def test_lex_error_becomes_e001_with_position(self, shop_schema):
        sql = "SELECT name FROM products WHERE a ~ 1"
        report = lint(shop_schema, sql)
        assert codes(report) == ["E001"]
        assert report.diagnostics[0].position == sql.index("~")

    def test_parse_error_becomes_e002_with_char_position(self, shop_schema):
        sql = "SELECT name FROM"
        report = lint(shop_schema, sql)
        assert codes(report) == ["E002"]
        assert report.diagnostics[0].position == len(sql)

    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert max([Severity.INFO, Severity.ERROR]) is Severity.ERROR

    def test_render_mentions_code_and_severity(self, shop_schema):
        report = lint(shop_schema, "SELECT missing FROM products")
        text = report.render(source="q1")
        assert "q1" in text and "E102" in text and "error" in text


# ----------------------------------------------------------------------
# type inference pass
# ----------------------------------------------------------------------
class TestTypeInference:
    def test_text_compared_with_number(self, shop_schema):
        report = lint(shop_schema, "SELECT name FROM products WHERE name < 3")
        assert "E201" in codes(report)

    def test_sum_over_text_column(self, shop_schema):
        report = lint(shop_schema, "SELECT SUM(quarter) FROM sales")
        assert "E202" in codes(report)

    def test_avg_over_text_column(self, shop_schema):
        report = lint(shop_schema, "SELECT AVG(name) FROM products")
        assert "E202" in codes(report)

    def test_between_mixed_families(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT name FROM products WHERE price BETWEEN 1 AND 'ten'",
        )
        assert "E203" in codes(report)

    def test_boolean_scalar_confusion_in_and(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT name FROM products WHERE price AND category = 'food'",
        )
        assert "E204" in codes(report)

    def test_non_boolean_where_condition(self, shop_schema):
        report = lint(shop_schema, "SELECT name FROM products WHERE price + 2")
        assert "W205" in codes(report)

    def test_like_on_numeric_column(self, shop_schema):
        report = lint(
            shop_schema, "SELECT name FROM products WHERE price LIKE 'x%'"
        )
        assert "W206" in codes(report)

    def test_arithmetic_on_text(self, shop_schema):
        report = lint(shop_schema, "SELECT name + 1 FROM products")
        assert "E207" in codes(report)

    def test_in_list_family_mismatch(self, shop_schema):
        report = lint(
            shop_schema, "SELECT name FROM products WHERE price IN ('a', 'b')"
        )
        assert "E201" in codes(report)

    def test_compatible_types_are_silent(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT name FROM products WHERE price BETWEEN 1 AND 10 "
            "AND category = 'food' AND name LIKE 'w%'",
        )
        assert report.diagnostics == []

    def test_min_max_carry_argument_type(self, shop_schema):
        # MIN over a text column is legal; comparing its result with a
        # number is not
        report = lint(
            shop_schema,
            "SELECT name FROM products GROUP BY name HAVING MIN(category) > 4",
        )
        assert "E201" in codes(report)

    def test_null_comparisons_are_silent(self, shop_schema):
        report = lint(
            shop_schema, "SELECT name FROM products WHERE price = NULL"
        )
        assert "E201" not in codes(report)


# ----------------------------------------------------------------------
# semantic rules — one test per rule
# ----------------------------------------------------------------------
class TestRules:
    def test_registry_has_full_catalog(self):
        assert {
            "E301", "W302", "W303", "W304", "W305",
            "I306", "W307", "W308", "E309", "E310",
        } <= set(RULES)

    def test_e301_ungrouped_column(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT quarter, COUNT(*) FROM sales GROUP BY product_id",
        )
        assert "E301" in codes(report)

    def test_e301_bare_column_next_to_aggregate(self, shop_schema):
        report = lint(shop_schema, "SELECT name, MAX(price) FROM products")
        assert "E301" in codes(report)

    def test_e301_silent_when_properly_grouped(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT quarter, COUNT(*) FROM sales GROUP BY quarter",
        )
        assert "E301" not in codes(report)

    def test_w302_having_without_group_by(self, shop_schema):
        # the parser only accepts HAVING after GROUP BY, so build the AST
        query = parse_sql("SELECT COUNT(*) FROM sales")
        from dataclasses import replace

        bad = replace(
            query,
            having=parse_sql(
                "SELECT name FROM products WHERE price > 1"
            ).where,
        )
        report = lint_query(bad, shop_schema)
        assert "W302" in codes(report)

    def test_w303_cartesian_join(self, shop_schema):
        report = lint(
            shop_schema, "SELECT name, quarter FROM products, sales"
        )
        assert "W303" in codes(report)

    def test_w303_silent_when_joined(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT name, quarter FROM products JOIN sales "
            "ON sales.product_id = products.id",
        )
        assert "W303" not in codes(report)

    def test_w303_silent_when_filtered_in_where(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT name, quarter FROM products, sales "
            "WHERE sales.product_id = products.id",
        )
        assert "W303" not in codes(report)

    def test_w304_contradictory_equalities(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT name FROM products WHERE category = 'food' "
            "AND category = 'tools'",
        )
        assert "W304" in codes(report)

    def test_w304_inverted_between_bounds(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT name FROM products WHERE price BETWEEN 10 AND 1",
        )
        assert "W304" in codes(report)

    def test_w305_constant_true_predicate(self, shop_schema):
        report = lint(shop_schema, "SELECT name FROM products WHERE 1 = 1")
        assert "W305" in codes(report)

    def test_w305_self_comparison(self, shop_schema):
        report = lint(
            shop_schema, "SELECT name FROM products WHERE price = price"
        )
        assert "W305" in codes(report)

    def test_i306_order_limit_ties(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT name FROM products ORDER BY price DESC LIMIT 1",
        )
        assert "I306" in codes(report)
        assert report.ok  # info severity: not an error

    def test_i306_silent_with_primary_key_sort(self, shop_schema):
        report = lint(
            shop_schema, "SELECT name FROM products ORDER BY id LIMIT 3"
        )
        assert "I306" not in codes(report)

    def test_w307_redundant_distinct(self, shop_schema):
        report = lint(shop_schema, "SELECT DISTINCT COUNT(*) FROM sales")
        assert "W307" in codes(report)

    def test_w307_distinct_inside_min(self, shop_schema):
        report = lint(
            shop_schema, "SELECT MIN(DISTINCT price) FROM products"
        )
        assert "W307" in codes(report)

    def test_w308_unused_joined_table(self, shop_schema):
        report = lint(
            shop_schema,
            "SELECT products.name FROM products JOIN sales "
            "ON sales.product_id = products.id WHERE products.price > 1",
        )
        # 'sales' is referenced in the join condition, so it is used
        assert "W308" not in codes(report)
        query = parse_sql(
            "SELECT products.name FROM products JOIN sales "
            "ON products.id = products.id"
        )
        report = lint_query(query, shop_schema)
        assert "W308" in codes(report)

    def test_e309_nested_aggregate(self, shop_schema):
        report = lint(shop_schema, "SELECT SUM(MAX(price)) FROM products")
        assert "E309" in codes(report)

    def test_e310_aggregate_in_where(self, shop_schema):
        report = lint(
            shop_schema, "SELECT name FROM products WHERE SUM(price) > 10"
        )
        assert "E310" in codes(report)

    def test_rules_scoped_per_select_block(self, shop_schema):
        # the subquery's aggregate is fine; no rule should leak across
        # SELECT boundaries
        report = lint(
            shop_schema,
            "SELECT name FROM products WHERE price > "
            "(SELECT AVG(price) FROM products)",
        )
        assert report.diagnostics == []


# ----------------------------------------------------------------------
# column-level lineage
# ----------------------------------------------------------------------
class TestLineage:
    def lineage(self, schema, sql):
        return build_lineage(parse_sql(sql), schema)

    def test_simple_projection(self, shop_schema):
        graph = self.lineage(
            shop_schema, "SELECT name, price FROM products"
        )
        assert graph.to_dict() == {
            "name": ["products.name"],
            "price": ["products.price"],
        }

    def test_alias_and_expression(self, shop_schema):
        graph = self.lineage(
            shop_schema,
            "SELECT price * quantity AS revenue FROM products JOIN sales "
            "ON sales.product_id = products.id",
        )
        assert graph.to_dict() == {
            "revenue": ["products.price", "sales.quantity"],
        }

    def test_aggregate_output_name(self, shop_schema):
        graph = self.lineage(shop_schema, "SELECT COUNT(*) FROM sales")
        (output,) = graph.outputs
        assert output.name == "count(*)"
        assert output.sources == frozenset(
            {
                "sales.id", "sales.product_id",
                "sales.quantity", "sales.quarter",
            }
        )

    def test_lineage_through_scalar_subquery(self, shop_schema):
        graph = self.lineage(
            shop_schema,
            "SELECT quarter, (SELECT MAX(price) FROM products) AS top "
            "FROM sales",
        )
        assert graph.to_dict()["top"] == ["products.price"]

    def test_lineage_through_set_operation(self, shop_schema):
        graph = self.lineage(
            shop_schema,
            "SELECT name FROM products UNION SELECT quarter FROM sales",
        )
        (output,) = graph.outputs
        assert output.sources == frozenset(
            {"products.name", "sales.quarter"}
        )

    def test_star_expansion(self, shop_schema):
        graph = self.lineage(shop_schema, "SELECT * FROM sales")
        assert [o.name for o in graph.outputs] == [
            "id", "product_id", "quantity", "quarter",
        ]

    def test_edges_and_source_columns(self, shop_schema):
        graph = self.lineage(shop_schema, "SELECT name FROM products")
        assert graph.edges() == [("name", "products.name")]
        assert graph.source_columns() == frozenset({"products.name"})

    def test_report_carries_lineage_only_without_fatal_errors(
        self, shop_schema
    ):
        good = lint(shop_schema, "SELECT name FROM products")
        assert good.lineage is not None
        bad = lint(shop_schema, "SELECT name FROM missing_table")
        assert bad.lineage is None


# ----------------------------------------------------------------------
# lineage metric
# ----------------------------------------------------------------------
class TestLineageMetric:
    def test_match_and_f1(self, shop_schema):
        from repro.metrics import lineage_f1, lineage_match

        gold = "SELECT name, price FROM products"
        assert lineage_match("SELECT name, price FROM products", gold,
                             shop_schema)
        assert not lineage_match("SELECT name FROM products", gold,
                                 shop_schema)
        assert lineage_f1("SELECT name FROM products", gold,
                          shop_schema) == pytest.approx(2 / 3)
        assert lineage_f1("not sql", gold, shop_schema) == 0.0

    def test_registered_in_metric_registry(self):
        from repro.core.registry import metric_registry

        assert "lineage_match" in metric_registry()


# ----------------------------------------------------------------------
# gold-SQL audit: every generator's output must lint clean of errors
# ----------------------------------------------------------------------
#: codes generators are allowed to emit (asserted stable; anything new
#: must be triaged before joining this list)
ALLOWED_GOLD_CODES = {"I306"}


def _audit(dataset):
    flagged = {}
    for example in dataset.examples:
        if example.is_vis:
            continue
        schema = dataset.database(example.db_id).schema
        report = lint_sql(example.sql, schema)
        unexpected = [
            d for d in report.diagnostics if d.code not in ALLOWED_GOLD_CODES
        ]
        if unexpected:
            flagged[example.sql] = [d.code for d in unexpected]
    return flagged


class TestGoldAudit:
    def test_cross_domain_gold_is_clean(self, tiny_spider):
        assert _audit(tiny_spider) == {}

    def test_wikisql_gold_is_clean(self, tiny_wikisql):
        assert _audit(tiny_wikisql) == {}

    def test_multiturn_gold_is_clean(self):
        from repro.datasets.multiturn import build_sparc_like

        # regression: _edit_add_order used to append a bare sort column to
        # a COUNT(*) projection, an ungrouped-column error (E301)
        dataset = build_sparc_like(num_dialogues=40, seed=5)
        assert _audit(dataset) == {}


# ----------------------------------------------------------------------
# LintGate: candidate pruning before execution
# ----------------------------------------------------------------------
class TestLintGate:
    def test_decide_prunes_invalid_candidates(self, shop_schema):
        from repro.core.pipeline import LintGate

        bad = parse_sql("SELECT missing FROM products")
        worse = parse_sql("SELECT name FROM nowhere")
        good = parse_sql("SELECT name FROM products")
        decision = LintGate().decide([bad, worse, good], shop_schema)
        assert decision.chosen == good
        assert len(decision.pruned) == 2
        assert len(decision.kept) == 1
        assert all(report.errors for _, report in decision.pruned)

    def test_decide_prefers_fewer_warnings(self, shop_schema):
        from repro.core.pipeline import LintGate

        noisy = parse_sql(
            "SELECT name FROM products WHERE 1 = 1 AND price > 2"
        )
        clean = parse_sql("SELECT name FROM products WHERE price > 2")
        decision = LintGate().decide([noisy, clean], shop_schema)
        assert decision.chosen == clean

    def test_decide_keeps_nothing_when_all_bad(self, shop_schema):
        from repro.core.pipeline import LintGate

        bad = parse_sql("SELECT missing FROM products")
        decision = LintGate().decide([bad], shop_schema)
        assert decision.chosen is None
        assert decision.kept == []

    def test_pipeline_prunes_before_execution(self, shop_db):
        from repro.core.pipeline import LintGate, Pipeline
        from repro.parsers.base import ParseResult, Parser
        from repro.parsers.vis.base import VisParser

        bad = parse_sql("SELECT wrong_column FROM products")
        good = parse_sql("SELECT name FROM products")

        class StubParser(Parser):
            name = "stub"

            def parse(self, request):
                return ParseResult(query=bad, candidates=[bad, good])

        class StubVis(VisParser):
            def parse_vis(self, request):
                return None

        gated = Pipeline(StubParser(), StubVis(), lint_gate=LintGate())
        trace = gated.run("list the product names", shop_db)
        assert trace.succeeded
        assert trace.functional_expression == "SELECT name FROM products"
        lint_stage = [s for s in trace.stages if s.stage == "lint"]
        assert len(lint_stage) == 1
        assert "pruned 1" in lint_stage[0].output

        # without the gate the bad best candidate reaches the executor
        ungated = Pipeline(StubParser(), StubVis())
        trace = ungated.run("list the product names", shop_db)
        assert not trace.succeeded

    def test_gate_falls_back_to_parser_best(self, shop_db):
        from repro.core.pipeline import LintGate, Pipeline
        from repro.parsers.base import ParseResult, Parser
        from repro.parsers.vis.base import VisParser

        bad = parse_sql("SELECT wrong_column FROM products")

        class StubParser(Parser):
            name = "stub"

            def parse(self, request):
                return ParseResult(query=bad, candidates=[bad])

        class StubVis(VisParser):
            def parse_vis(self, request):
                return None

        pipeline = Pipeline(StubParser(), StubVis(), lint_gate=LintGate())
        trace = pipeline.run("list the product names", shop_db)
        # every candidate pruned: the gate keeps the parser's best, which
        # then fails at execution exactly as before
        assert trace.functional_expression == (
            "SELECT wrong_column FROM products"
        )
        assert not trace.succeeded

    def test_interface_lint_flag(self, shop_db):
        from repro.core.interface import NaturalLanguageInterface

        nli = NaturalLanguageInterface(shop_db, lint=True)
        assert nli.pipeline.lint_gate is not None
        answer = nli.ask("Show the name of products whose price is above 2?")
        assert answer.ok
        assert any(s.stage == "lint" for s in answer.trace.stages)


# ----------------------------------------------------------------------
# CLI and packaging
# ----------------------------------------------------------------------
class TestCLI:
    def test_lint_sql_reports_multiple_diagnostics(self, capsys):
        from repro.sql.lint.cli import main

        status = main(
            [
                "--sql",
                "SELECT name, SUM(quarter) FROM products "
                "WHERE price = 'cheap' AND price = 'pricey'",
                "--domain",
                "sales",
            ]
        )
        out = capsys.readouterr().out
        assert status == 1
        reported = {
            line.split()[2] for line in out.splitlines() if " E" in line
            or " W" in line or " I" in line
        }
        assert len(reported) >= 2  # no fail-fast: several distinct codes

    def test_lint_clean_sql_exits_zero(self, capsys):
        from repro.sql.lint.cli import main

        status = main(["--sql", "SELECT name FROM products"])
        assert status == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_dataset_mode(self, capsys):
        from repro.sql.lint.cli import main

        status = main(
            ["--dataset", "wikisql_like", "--scale", "0.005", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "linted" in out

    def test_lineage_flag(self, capsys):
        from repro.sql.lint.cli import main

        status = main(["--sql", "SELECT name FROM products", "--lineage"])
        assert status == 0
        assert "name <- products.name" in capsys.readouterr().out

    def test_main_module_dispatches_lint(self, capsys):
        from repro.__main__ import main

        status = main(["lint", "--sql", "SELECT name FROM products"])
        assert status == 0

    def test_entry_point_declared_and_importable(self):
        import importlib
        import tomllib

        with open("pyproject.toml", "rb") as handle:
            project = tomllib.load(handle)["project"]
        target = project["scripts"]["repro-lint"]
        module_name, _, attr = target.partition(":")
        module = importlib.import_module(module_name)
        assert callable(getattr(module, attr))


# ----------------------------------------------------------------------
# parse-stage position consistency (ParseError/LexError satellite)
# ----------------------------------------------------------------------
class TestParsePositions:
    def test_parse_error_position_is_character_offset(self):
        from repro.errors import ParseError

        sql = "SELECT name FROM products WHERE"
        with pytest.raises(ParseError) as exc:
            parse_sql(sql)
        assert exc.value.position == len(sql)
        assert "position" in str(exc.value)

    def test_parse_error_points_at_offending_token(self):
        from repro.errors import ParseError

        sql = "SELECT FROM products"
        with pytest.raises(ParseError) as exc:
            parse_sql(sql)
        assert exc.value.position == sql.index("FROM")

    def test_lex_and_parse_positions_share_convention(self, shop_schema):
        # both surface as E0xx diagnostics whose position indexes the text
        lex_report = lint(shop_schema, "SELECT ?")
        parse_report = lint(shop_schema, "SELECT name FROM products LIMIT x")
        assert lex_report.diagnostics[0].position == 7
        assert parse_report.diagnostics[0].position == (
            "SELECT name FROM products LIMIT x".index("x")
        )
