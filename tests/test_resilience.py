"""Tests for :mod:`repro.resilience` and the fault-tolerant pipeline.

Covers the four subsystem pieces in isolation (deadlines, retries,
breakers, fault injection — all on injectable clocks, no wall-time
sleeps), then the woven serving path: each degradation ladder end to
end, the seeded chaos-storm integration the ISSUE acceptance names, and
the no-faults differential proving a resilient pipeline's outputs are
identical to the plain one's.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import Pipeline, PipelineTrace
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    InjectedFault,
    ReproError,
    ResilienceError,
    SQLError,
)
from repro.parsers.base import ParseRequest, Parser, ParseResult
from repro.parsers.rule import KeywordRuleParser
from repro.parsers.vis.rule import DataToneVisParser
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FaultSpec,
    ResiliencePolicy,
    Retry,
    RetryPolicy,
    breaker_for,
    checkpoint,
    clear_faults,
    current_deadline,
    deadline_scope,
    guard_rows,
    install_faults,
    parse_fault_spec,
    reset_breakers,
)
from repro.resilience import breaker as breaker_mod
from repro.resilience import faults as faults_mod
from repro.sql import rescache
from repro.sql import vector as vector_mod
from repro.sql.executor import execute
from repro.sql.parser import parse_sql
from repro.systems import InteractiveSession, PipelineSystem


class FakeClock:
    """A monotonic clock advanced manually (or per call)."""

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.now = start
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeSleep:
    """Records requested sleeps and advances a FakeClock instead."""

    def __init__(self, clock: FakeClock) -> None:
        self.clock = clock
        self.calls: list[float] = []

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)
        self.clock.advance(seconds)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.after(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check("anything")  # no raise

    def test_expiry_on_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(4.999)
        assert not deadline.expired()
        clock.advance(0.002)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="during scan"):
            deadline.check("scan")

    def test_tightened_takes_minimum(self):
        clock = FakeClock()
        outer = Deadline.after(10.0, clock)
        inner = outer.tightened(3.0)
        assert inner.remaining() == pytest.approx(3.0)
        # a "tighter" child cannot extend the parent
        wide = outer.tightened(99.0)
        assert wide.remaining() == pytest.approx(10.0)
        # None inherits the parent expiry
        assert outer.tightened(None).expires_at == outer.expires_at

    def test_scope_nesting_keeps_tightest(self):
        clock = FakeClock()
        assert current_deadline() is None
        with deadline_scope(Deadline.after(10.0, clock)) as outer:
            assert current_deadline().expires_at == outer.expires_at
            with deadline_scope(Deadline.after(2.0, clock)) as inner:
                assert inner.remaining() == pytest.approx(2.0)
                assert current_deadline().expires_at == inner.expires_at
            # inner scope popped; outer ambient again
            assert current_deadline().expires_at == outer.expires_at
            # a looser inner scope is clamped to the outer expiry
            with deadline_scope(Deadline.after(50.0, clock)) as clamped:
                assert clamped.expires_at == outer.expires_at
        assert current_deadline() is None

    def test_checkpoint_noop_without_scope(self):
        checkpoint("free")  # must not raise, must cost ~nothing

    def test_checkpoint_raises_in_expired_scope(self):
        clock = FakeClock()
        with deadline_scope(Deadline.after(1.0, clock)):
            checkpoint("early")
            clock.advance(2.0)
            with pytest.raises(DeadlineExceeded):
                checkpoint("late")

    def test_guard_rows_passthrough_when_inactive(self):
        rows = [1, 2, 3]
        assert guard_rows(rows) is rows

    def test_guard_rows_raises_at_stride(self):
        from repro.resilience import deadline as deadline_mod

        clock = FakeClock()
        with deadline_scope(Deadline.after(1.0, clock)):
            guarded = guard_rows(iter(range(10_000)), "test scan")
            consumed = []
            clock.advance(5.0)  # expire before iterating
            with pytest.raises(DeadlineExceeded, match="test scan"):
                for row in guarded:
                    consumed.append(row)
            # the poll happens once per stride, not per row
            assert len(consumed) == deadline_mod.CHECK_STRIDE - 1

    def test_executor_checkpoint_raises_when_expired(self, shop_db):
        clock = FakeClock()
        query = parse_sql("SELECT name FROM products")
        with deadline_scope(Deadline.after(1.0, clock)):
            assert execute(query, shop_db).rows  # healthy inside budget
            clock.advance(2.0)
            # a result-cache hit legitimately serves past the deadline
            # (no work to bound); real plan execution must raise
            rescache.clear_result_cache()
            with pytest.raises(DeadlineExceeded):
                execute(query, shop_db)


# ----------------------------------------------------------------------
# retries
# ----------------------------------------------------------------------
class TestRetry:
    def test_success_first_attempt_no_sleep(self):
        clock = FakeClock()
        sleep = FakeSleep(clock)
        retry = Retry(RetryPolicy(max_attempts=3), clock=clock, sleep=sleep)
        assert retry.call(lambda: 42) == 42
        assert sleep.calls == []

    def test_retries_then_succeeds(self):
        clock = FakeClock()
        sleep = FakeSleep(clock)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError("transient")
            return "ok"

        retry = Retry(
            RetryPolicy(max_attempts=3, jitter=0.0),
            clock=clock,
            sleep=sleep,
        )
        assert retry.call(flaky) == "ok"
        assert len(attempts) == 3
        # exponential, jitter-free: base, base*multiplier
        assert sleep.calls == pytest.approx([0.02, 0.04])

    def test_exhaustion_reraises_last(self):
        clock = FakeClock()
        retry = Retry(
            RetryPolicy(max_attempts=2, jitter=0.0),
            clock=clock,
            sleep=FakeSleep(clock),
        )
        with pytest.raises(ValueError, match="always"):
            retry.call(lambda: (_ for _ in ()).throw(ValueError("always")))

    def test_jitter_is_seeded_and_deterministic(self):
        def delays(seed):
            clock = FakeClock()
            sleep = FakeSleep(clock)
            retry = Retry(
                RetryPolicy(max_attempts=4, seed=seed),
                clock=clock,
                sleep=sleep,
            )
            with pytest.raises(ValueError):
                retry.call(lambda: (_ for _ in ()).throw(ValueError()))
            return sleep.calls

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)

    def test_deadline_exceeded_never_retried(self):
        clock = FakeClock()
        sleep = FakeSleep(clock)
        calls = []

        def expiring():
            calls.append(1)
            raise DeadlineExceeded("budget gone")

        retry = Retry(
            RetryPolicy(max_attempts=5), clock=clock, sleep=sleep
        )
        with pytest.raises(DeadlineExceeded):
            retry.call(expiring)
        assert len(calls) == 1
        assert sleep.calls == []

    def test_backoff_not_taken_past_ambient_deadline(self):
        clock = FakeClock()
        sleep = FakeSleep(clock)
        retry = Retry(
            RetryPolicy(
                max_attempts=5, base_delay=10.0, max_delay=10.0, jitter=0.0
            ),
            clock=clock,
            sleep=sleep,
        )
        with deadline_scope(Deadline.after(1.0, clock)):
            with pytest.raises(ValueError):
                retry.call(lambda: (_ for _ in ()).throw(ValueError()))
        # the 10s backoff would outlive the 1s budget: no sleep taken
        assert sleep.calls == []

    def test_non_retryable_exceptions_propagate(self):
        clock = FakeClock()
        retry = Retry(
            RetryPolicy(max_attempts=5, retry_on=(KeyError,)),
            clock=clock,
            sleep=FakeSleep(clock),
        )
        calls = []

        def wrong_family():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            retry.call(wrong_family)
        assert len(calls) == 1


# ----------------------------------------------------------------------
# circuit breakers
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(
            failure_threshold=3, recovery_timeout=5.0, success_threshold=2
        )
        defaults.update(kwargs)
        return CircuitBreaker("test", clock=clock, **defaults), clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == breaker_mod.CLOSED
        breaker.record_failure()
        assert breaker.state == breaker_mod.OPEN
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == breaker_mod.CLOSED

    def test_half_open_after_recovery_timeout(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.state == breaker_mod.HALF_OPEN
        assert breaker.allow()  # probe admitted

    def test_probe_successes_close(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == breaker_mod.HALF_OPEN  # needs 2
        breaker.record_success()
        assert breaker.state == breaker_mod.CLOSED

    def test_probe_failure_reopens_and_restarts_timeout(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.1)
        assert breaker.state == breaker_mod.HALF_OPEN
        breaker.record_failure()
        assert breaker.state == breaker_mod.OPEN
        clock.advance(4.0)
        assert breaker.state == breaker_mod.OPEN  # timeout restarted
        clock.advance(1.5)
        assert breaker.state == breaker_mod.HALF_OPEN

    def test_call_wraps_outcomes(self):
        breaker, _ = self.make(failure_threshold=1)
        with pytest.raises(ValueError):
            breaker.call(lambda: (_ for _ in ()).throw(ValueError()))
        with pytest.raises(CircuitOpenError) as exc:
            breaker.call(lambda: "never runs")
        assert exc.value.component == "test"

    def test_registry_shares_and_resets(self):
        first = breaker_for("component.x")
        assert breaker_for("component.x") is first
        reset_breakers()
        assert breaker_for("component.x") is not first


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
class TestFaults:
    def test_parse_spec_roundtrip(self):
        specs = parse_fault_spec(
            "translate:error:p=0.3; execute:latency:delay=0.05:every=2;"
            "render:corrupt"
        )
        assert specs == (
            FaultSpec("translate", "error", p=0.3),
            FaultSpec("execute", "latency", every=2, delay=0.05),
            FaultSpec("render", "corrupt"),
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "justasite",
            "site:unknownkind",
            "site:error:p=1.5",
            "site:error:every=0",
            "site:error:nonsense",
            "site:error:p",
            ":error",
        ],
    )
    def test_parse_spec_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_nth_call_fires_exactly(self):
        install_faults("s:error:every=3")
        faults_mod.fire("s")
        faults_mod.fire("s")
        with pytest.raises(InjectedFault) as exc:
            faults_mod.fire("s")
        assert exc.value.site == "s"
        faults_mod.fire("s")
        faults_mod.fire("s")
        with pytest.raises(InjectedFault):
            faults_mod.fire("s")
        clear_faults()

    def test_sites_are_independent(self):
        install_faults("a:error")
        with pytest.raises(InjectedFault):
            faults_mod.fire("a")
        faults_mod.fire("b")  # un-addressed site: no injection
        clear_faults()
        faults_mod.fire("a")  # cleared: no injection

    def test_latency_uses_injected_sleep(self):
        clock = FakeClock()
        sleep = FakeSleep(clock)
        install_faults("s:latency:delay=0.25", sleep=sleep)
        faults_mod.fire("s")
        assert sleep.calls == [0.25]
        clear_faults()

    def test_corrupt_text_mangles(self):
        install_faults("s:corrupt")
        assert faults_mod.corrupt_text("s", "SELECT 1") != "SELECT 1"
        assert faults_mod.corrupt_text("other", "SELECT 1") == "SELECT 1"
        clear_faults()
        assert faults_mod.corrupt_text("s", "SELECT 1") == "SELECT 1"

    def test_probabilistic_is_seeded(self):
        def storm(seed):
            install_faults("s:error:p=0.5", seed=seed)
            fired = []
            for _ in range(32):
                try:
                    faults_mod.fire("s")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            clear_faults()
            return fired

        assert storm(3) == storm(3)
        assert any(storm(3)) and not all(storm(3))


# ----------------------------------------------------------------------
# rescache.peek
# ----------------------------------------------------------------------
class TestPeek:
    def test_peek_cold_is_none_and_executes_nothing(self, shop_db):
        query = parse_sql("SELECT name FROM products")
        assert rescache.peek(query, shop_db) is None

    def test_peek_hits_after_cached_execute(self, shop_db):
        query = parse_sql("SELECT name FROM products ORDER BY name")
        expected = rescache.cached_execute(query, shop_db)
        peeked = rescache.peek(query, shop_db)
        assert peeked is not None
        assert peeked.rows == expected.rows
        # a fresh copy, not the cached object
        assert peeked is not rescache.peek(query, shop_db)

    def test_peek_misses_after_mutation(self, shop_db):
        query = parse_sql("SELECT name FROM products")
        rescache.cached_execute(query, shop_db)
        shop_db.insert("products", (99, "new", "tools", 1.0))
        assert rescache.peek(query, shop_db) is None


# ----------------------------------------------------------------------
# pipeline degradation ladders
# ----------------------------------------------------------------------
class _ExplodingParser(Parser):
    """A primary parser that always raises (a hard component outage)."""

    name = "exploding parser"

    def __init__(self) -> None:
        self.calls = 0

    def parse(self, request: ParseRequest) -> ParseResult:
        self.calls += 1
        raise RuntimeError("parser backend down")


def _policy(**kwargs) -> ResiliencePolicy:
    defaults = dict(retry=RetryPolicy(max_attempts=2, base_delay=0.0))
    defaults.update(kwargs)
    return ResiliencePolicy(**defaults)


def _pipeline(resilience=None, sql_parser=None) -> Pipeline:
    return Pipeline(
        sql_parser or KeywordRuleParser(),
        DataToneVisParser(),
        resilience=resilience,
    )


class TestPipelineLadders:
    def test_translate_fault_falls_back_to_rules(self, shop_db):
        pipeline = _pipeline(_policy())
        install_faults("translate:error")
        trace = pipeline.run("how many products are there", shop_db)
        clear_faults()
        assert trace.error is None
        assert trace.result.rows == [(4,)]
        assert "translate:rule-fallback" in trace.degraded

    def test_hard_parser_outage_falls_back(self, shop_db):
        exploding = _ExplodingParser()
        pipeline = _pipeline(_policy(), sql_parser=exploding)
        trace = pipeline.run("how many products are there", shop_db)
        assert trace.error is None
        assert trace.result.rows == [(4,)]
        assert trace.degraded == ["translate:rule-fallback"]
        # the retry wrapper attempted the primary max_attempts times
        assert exploding.calls == 2

    def test_execute_fault_serves_cached_result(self, shop_db):
        pipeline = _pipeline(_policy())
        question = "how many products are there"
        warm = pipeline.run(question, shop_db)
        assert warm.error is None and not warm.degraded
        install_faults("execute:error")
        trace = pipeline.run(question, shop_db)
        clear_faults()
        assert trace.error is None
        assert trace.result.rows == warm.result.rows
        assert trace.degraded == ["execute:cached-result"]
        assert not trace.cached  # served by the ladder, not the turn memo

    def test_execute_fault_cold_cache_fails_closed(self, shop_db):
        rescache.clear_result_cache()
        pipeline = _pipeline(_policy())
        install_faults("execute:error")
        trace = pipeline.run("how many products are there", shop_db)
        clear_faults()
        assert trace.error == "execution failed"
        assert trace.degraded == ["execute:failed"]
        assert trace.result is None

    def test_vector_fault_degrades_to_row_engine(self, shop_db):
        if not vector_mod.vector_enabled():
            pytest.skip("vector engine disabled in this environment")
        pipeline = _pipeline(_policy())
        install_faults("engine.vector:error")
        trace = pipeline.run(
            "how many products are there", shop_db
        )
        clear_faults()
        assert trace.error is None
        assert trace.result.rows == [(4,)]
        assert trace.degraded == ["execute:vector-off"]
        assert vector_mod.vector_enabled()  # toggle restored

    def test_render_fault_degrades_to_data_only(self, shop_db):
        pipeline = _pipeline(_policy())
        question = "show a bar chart of price by name for products"
        healthy = pipeline.run(question, shop_db)
        assert healthy.chart is not None
        install_faults("render:error")
        trace = pipeline.run(question, shop_db)
        clear_faults()
        assert trace.chart is None
        assert trace.error is None
        assert trace.result is not None
        assert trace.result.rows  # the chart's underlying data
        assert trace.degraded == ["render:data-only"]

    def test_breaker_trips_and_skips_dead_component(self, shop_db):
        exploding = _ExplodingParser()
        policy = _policy(
            retry=RetryPolicy(max_attempts=1),
            breaker_failure_threshold=2,
            breaker_recovery_timeout=1e9,
        )
        pipeline = _pipeline(policy, sql_parser=exploding)
        questions = [
            "how many products are there",
            "how many sales are there",
            "what is the average price of products",
        ]
        for question in questions:
            trace = pipeline.run(question, shop_db)
            assert trace.error is None
            assert "translate:rule-fallback" in trace.degraded
        # first two turns fail organically and trip the breaker; the
        # third is rejected without even calling the dead parser
        assert exploding.calls == 2
        assert (
            breaker_for("parser.sql").state == breaker_mod.OPEN
        )

    def test_organic_sql_failures_do_not_trip_breaker(self, shop_db):
        class _BadSQLParser(Parser):
            name = "bad sql parser"

            def parse(self, request):
                query = parse_sql("SELECT nope FROM products")
                return ParseResult(query=query, candidates=[query])

        policy = _policy(breaker_failure_threshold=2)
        pipeline = _pipeline(policy, sql_parser=_BadSQLParser())
        for _ in range(4):
            trace = pipeline.run("how many products are there", shop_db)
            assert trace.error == "execution failed"
            assert not trace.degraded  # organic failure, no ladder
        assert breaker_for("executor").state == breaker_mod.CLOSED

    def test_corrupted_vql_still_completes(self, shop_db):
        pipeline = _pipeline(_policy())
        install_faults("translate:corrupt")
        trace = pipeline.run(
            "show a bar chart of price by name for products", shop_db
        )
        clear_faults()
        # the mangled program cannot chart, but the turn returns
        assert isinstance(trace, PipelineTrace)
        assert trace.error is not None or trace.succeeded

    def test_expired_turn_budget_degrades_not_raises(self, shop_db):
        clock = FakeClock(tick=1.0)  # every look at the clock costs 1s
        policy = _policy(
            turn_deadline=3.0,
            stage_deadlines={},
            clock=clock,
        )
        pipeline = _pipeline(policy)
        trace = pipeline.run("how many products are there", shop_db)
        assert isinstance(trace, PipelineTrace)
        assert trace.degraded  # some ladder (or the turn guard) engaged

    def test_degraded_turns_are_not_memoized(self, shop_db):
        pipeline = _pipeline(_policy())
        question = "how many products are there"
        pipeline.run(question, shop_db)  # warm cache + memo
        install_faults("execute:error")
        degraded = pipeline.run(question, shop_db)
        clear_faults()
        assert degraded.degraded == ["execute:cached-result"]
        healthy = pipeline.run(question, shop_db)
        assert healthy.error is None
        assert not healthy.degraded


# ----------------------------------------------------------------------
# the chaos storm (ISSUE acceptance scenario)
# ----------------------------------------------------------------------
class TestChaosStorm:
    STORM = (
        "translate:error:p=0.2;execute:error:p=0.2;render:error:p=0.2;"
        "execute:latency:p=0.2:delay=0.0005"
    )

    def test_storm_never_raises_and_every_turn_returns(self, shop_db):
        pipeline = _pipeline(_policy())
        questions = [
            "how many products are there",
            "show a bar chart of price by name for products",
            "what is the average price of products",
            "how many sales are there",
        ]
        # warm pass: give the cached-result rung something to serve
        for question in questions:
            trace = pipeline.run(question, shop_db)
            assert trace.error is None
        install_faults(self.STORM, seed=5)
        try:
            degraded_turns = 0
            for round_ in range(8):
                for question in questions:
                    trace = pipeline.run(question, shop_db)
                    assert isinstance(trace, PipelineTrace)
                    # every turn completes with an answer: faults are
                    # absorbed by retries or a degradation ladder
                    assert trace.error is None, (
                        round_,
                        question,
                        trace.degraded,
                    )
                    degraded_turns += bool(trace.degraded)
        finally:
            clear_faults()
        assert degraded_turns > 0  # the storm actually bit

    def test_chaos_cli_reports_full_recovery(self):
        from repro.resilience.cli import run_chaos

        report = run_chaos(self.STORM, turns=12, seed=5)
        assert report["unhandled_exceptions"] == 0
        assert report["healthy"] + report["degraded"] == 12
        assert report["recovery_rate"] == 1.0
        # seeded: same spec + seed replays the same storm (counters are
        # process-global and accumulate, so compare everything else)
        again = run_chaos(self.STORM, turns=12, seed=5)
        report.pop("counters"), again.pop("counters")
        assert report == again

    def test_chaos_runs_are_isolated(self):
        from repro.resilience.cli import run_chaos

        # a brutal storm trips breakers; the registry is process-global,
        # so the next run must reset it or its warm pass serves degraded
        run_chaos("execute:error:p=1.0", turns=8, seed=1)
        clean = run_chaos("translate:error:p=0.0", turns=8, seed=1)
        assert clean["failed"] == 0
        assert clean["degraded"] == 0
        assert clean["healthy"] == 8


# ----------------------------------------------------------------------
# the no-faults differential (resilience on == resilience off)
# ----------------------------------------------------------------------
class TestNoFaultsDifferential:
    QUESTIONS = [
        "how many products are there",
        "what is the average price of products",
        "show the name of products",
        "show a bar chart of price by name for products",
        "how many sales are there",
        "gibberish the parser cannot translate",
    ]

    @staticmethod
    def _outputs(pipeline: Pipeline, db) -> list[tuple]:
        outputs = []
        for question in TestNoFaultsDifferential.QUESTIONS:
            rescache.clear_result_cache()
            trace = pipeline.run(question, db)
            outputs.append(
                (
                    trace.functional_expression,
                    trace.error,
                    trace.result.columns if trace.result else None,
                    trace.result.rows if trace.result else None,
                    trace.chart.to_ascii() if trace.chart else None,
                    [r.stage for r in trace.stages],
                    [r.output for r in trace.stages],
                    trace.degraded,
                )
            )
        return outputs

    def test_byte_identical_outputs(self, shop_db):
        plain = self._outputs(_pipeline(), shop_db)
        resilient = self._outputs(
            _pipeline(ResiliencePolicy.default()), shop_db
        )
        # same translations, same rows, same charts, same stage outputs,
        # same errors — and the resilient run never degraded
        assert resilient == plain
        assert all(not entry[-1] for entry in resilient)


# ----------------------------------------------------------------------
# systems surface: PipelineSystem + session transcripts
# ----------------------------------------------------------------------
class TestSystemsSurface:
    def test_pipeline_system_answers(self, shop_db):
        system = PipelineSystem()
        response = system.answer("how many products are there", shop_db)
        assert response.kind == "data"
        assert response.result.rows == [(4,)]
        assert not response.is_degraded

    def test_session_surfaces_degraded_turns(self, shop_db):
        session = InteractiveSession(system=PipelineSystem(), db=shop_db)
        session.ask("how many products are there")  # warm, healthy
        install_faults("execute:error")
        degraded = session.ask("how many products are there")
        clear_faults()
        assert degraded.is_degraded
        assert degraded.kind == "data"
        assert "degraded" in degraded.message
        assert "execute:cached-result" in degraded.message
        # the transcript keeps the honest record
        assert session.transcript[-1].is_degraded
        # healthy turns stay unannotated
        healthy = session.ask("how many products are there")
        assert not healthy.is_degraded
        assert "degraded" not in healthy.message

    def test_degraded_responses_not_memoized_by_session(self, shop_db):
        session = InteractiveSession(system=PipelineSystem(), db=shop_db)
        question = "what is the average price of products"
        session.ask(question)
        install_faults("execute:error")
        session.ask(question)
        clear_faults()
        after = session.ask(question)
        assert not after.is_degraded

    def test_resilient_system_never_raises_under_storm(self, shop_db):
        system = PipelineSystem()
        session = InteractiveSession(system=system, db=shop_db)
        questions = [
            "how many products are there",
            "show a bar chart of price by name for products",
        ]
        for question in questions:
            session.ask(question)
        install_faults(TestChaosStorm.STORM, seed=11)
        try:
            for _ in range(6):
                for question in questions:
                    response = session.ask(question)
                    assert response.kind in ("data", "chart", "error")
        finally:
            clear_faults()


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_counters_move_under_faults(self, shop_db):
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.get_registry()
        pipeline = _pipeline(_policy())
        install_faults("translate:error")
        pipeline.run("how many products are there", shop_db)
        clear_faults()
        snapshot = registry.snapshot()
        assert snapshot["repro.resilience.faults.injected"] >= 1
        assert snapshot["repro.resilience.retry.attempts"] >= 2
        assert snapshot["repro.resilience.retry.exhausted"] >= 1
        assert snapshot["repro.resilience.degrades"] >= 1
        assert (
            snapshot["repro.resilience.degrade.translate:rule-fallback"] >= 1
        )
        assert snapshot["repro.pipeline.degraded.turns"] >= 1
