"""Property-based tests (hypothesis) for the SQL substrate.

A random-query strategy over the shop schema drives invariants that must
hold for *every* query the grammar can produce: parse/unparse round-trips,
normalizer idempotence, decomposition self-match, and executor laws
(filtering only removes rows, LIMIT bounds, DISTINCT de-duplicates,
UNION ALL concatenates, determinism).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.database import Database
from repro.data.schema import Column, ColumnType, Schema, TableSchema
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    SetOperation,
    Star,
    TableRef,
)
from repro.sql.components import classify_hardness, decompose
from repro.sql.executor import execute
from repro.sql.normalize import normalize_sql
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql

SCHEMA = Schema(
    db_id="prop",
    tables=(
        TableSchema(
            "items",
            (
                Column("id", ColumnType.NUMBER),
                Column("label", ColumnType.TEXT),
                Column("price", ColumnType.NUMBER),
                Column("kind", ColumnType.TEXT),
            ),
            primary_key="id",
        ),
    ),
)


def _make_db(rows: list[tuple]) -> Database:
    db = Database(schema=SCHEMA)
    for row in rows:
        db.insert("items", row)
    return db


row_strategy = st.tuples(
    st.integers(0, 50),
    st.sampled_from(["ant", "bee", "cow", "dog", None]),
    st.one_of(st.none(), st.integers(0, 100), st.floats(0, 100, width=16)),
    st.sampled_from(["x", "y", "z"]),
)
rows_strategy = st.lists(row_strategy, max_size=12)

NUM_COLS = ("id", "price")
TEXT_COLS = ("label", "kind")

column_ref = st.sampled_from(
    [ColumnRef(c) for c in NUM_COLS + TEXT_COLS]
)
num_ref = st.sampled_from([ColumnRef(c) for c in NUM_COLS])
literal = st.one_of(
    st.integers(-5, 60).map(Literal),
    st.sampled_from(["ant", "bee", "x", "z"]).map(Literal),
)

comparison = st.builds(
    BinaryOp,
    op=st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    left=column_ref,
    right=literal,
)
condition = st.recursive(
    comparison,
    lambda children: st.builds(
        BinaryOp,
        op=st.sampled_from(["and", "or"]),
        left=children,
        right=children,
    ),
    max_leaves=4,
)

projection = st.one_of(
    st.just((SelectItem(expr=Star()),)),
    st.lists(
        column_ref.map(lambda r: SelectItem(expr=r)),
        min_size=1,
        max_size=3,
        unique_by=lambda i: i.expr.column,
    ).map(tuple),
)

aggregate_items = st.one_of(
    st.just((SelectItem(expr=FuncCall(name="count", args=(Star(),))),)),
    num_ref.map(
        lambda r: (
            SelectItem(expr=FuncCall(name="avg", args=(r,))),
        )
    ),
)


@st.composite
def select_query(draw) -> Select:
    aggregated = draw(st.booleans())
    if aggregated:
        items = draw(aggregate_items)
        group = draw(
            st.one_of(
                st.none(),
                st.sampled_from([ColumnRef(c) for c in TEXT_COLS]),
            )
        )
        if group is not None:
            items = (SelectItem(expr=group),) + items
        order_by = ()
    else:
        items = draw(projection)
        group = None
        order_by = draw(
            st.one_of(
                st.just(()),
                st.tuples(
                    st.builds(
                        OrderItem,
                        expr=column_ref,
                        descending=st.booleans(),
                    )
                ),
            )
        )
    where = draw(st.one_of(st.none(), condition))
    limit = draw(st.one_of(st.none(), st.integers(0, 6)))
    distinct = draw(st.booleans()) if not aggregated else False
    return Select(
        items=items,
        from_=TableRef(name="items"),
        where=where,
        group_by=(group,) if group is not None else (),
        order_by=order_by,
        limit=limit,
        distinct=distinct,
    )


@settings(max_examples=120, deadline=None)
@given(query=select_query())
def test_parse_unparse_roundtrip(query):
    rendered = to_sql(query)
    assert parse_sql(rendered) == query


@settings(max_examples=80, deadline=None)
@given(query=select_query())
def test_normalize_idempotent(query):
    once = normalize_sql(to_sql(query))
    assert normalize_sql(once) == once


@settings(max_examples=80, deadline=None)
@given(query=select_query())
def test_decompose_self_match_and_hardness(query):
    components = decompose(query)
    assert components.matches(decompose(query))
    assert classify_hardness(query) in ("easy", "medium", "hard", "extra")


@settings(max_examples=80, deadline=None)
@given(rows=rows_strategy, query=select_query())
def test_executor_is_deterministic(rows, query):
    db = _make_db(rows)
    first = execute(query, db)
    second = execute(query, db)
    assert first.rows == second.rows
    assert first.columns == second.columns


@settings(max_examples=80, deadline=None)
@given(rows=rows_strategy, query=select_query())
def test_limit_bounds_row_count(rows, query):
    db = _make_db(rows)
    result = execute(query, db)
    if query.limit is not None:
        assert len(result.rows) <= query.limit


@settings(max_examples=80, deadline=None)
@given(rows=rows_strategy, where=condition)
def test_where_only_removes_rows(rows, where):
    db = _make_db(rows)
    base = Select(items=(SelectItem(expr=Star()),), from_=TableRef("items"))
    filtered = Select(
        items=(SelectItem(expr=Star()),),
        from_=TableRef("items"),
        where=where,
    )
    all_rows = execute(base, db).rows
    kept = execute(filtered, db).rows
    assert len(kept) <= len(all_rows)
    counts: dict[tuple, int] = {}
    for row in all_rows:
        counts[row] = counts.get(row, 0) + 1
    for row in kept:
        counts[row] -= 1
        assert counts[row] >= 0  # kept rows are a sub-multiset


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_distinct_deduplicates(rows):
    db = _make_db(rows)
    plain = execute(parse_sql("SELECT kind FROM items"), db).rows
    distinct = execute(parse_sql("SELECT DISTINCT kind FROM items"), db).rows
    assert len(distinct) == len(set(plain))
    assert set(distinct) == set(plain)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, where=comparison)
def test_union_all_concatenates(rows, where):
    db = _make_db(rows)
    left = Select(
        items=(SelectItem(expr=ColumnRef("label")),),
        from_=TableRef("items"),
        where=where,
    )
    right = Select(
        items=(SelectItem(expr=ColumnRef("label")),),
        from_=TableRef("items"),
    )
    union_all = SetOperation(op="union all", left=left, right=right)
    assert len(execute(union_all, db).rows) == (
        len(execute(left, db).rows) + len(execute(right, db).rows)
    )


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_count_star_equals_row_count(rows):
    db = _make_db(rows)
    result = execute(parse_sql("SELECT COUNT(*) FROM items"), db)
    assert result.rows == [(len(rows),)]


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, query=select_query())
def test_exact_match_implies_execution_match(rows, query):
    from repro.metrics import exact_string_match, execution_match

    db = _make_db(rows)
    sql = to_sql(query)
    assert exact_string_match(sql, sql)
    assert execution_match(sql, sql, db)
