"""Every ``repro.*`` module must import cleanly (docs/CI guarantee).

A module that only breaks when imported — a bad top-level reference, a
circular import, an instrumentation hook wired to a renamed symbol —
should fail here, not in whichever test happens to touch it first.  CI
runs the same sweep as a standalone step.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro


def _all_modules() -> list[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("name", _all_modules())
def test_module_imports(name: str):
    module = importlib.import_module(name)
    assert module.__name__ == name
