"""Extension tests: weak supervision, compositional splits, applications."""

import pytest

from repro.applications import DataReportGenerator, summarize_result
from repro.datasets import build_dataset
from repro.datasets.composition import (
    composition_signature,
    make_ssp_split,
)
from repro.errors import DatasetError
from repro.metrics import evaluate_parser
from repro.parsers.neural import GrammarNeuralParser
from repro.parsers.neural.weak import (
    Denotation,
    WeaklySupervisedParser,
    enumerate_candidates,
)
from repro.sql.executor import Result, execute
from repro.sql.parser import parse_sql


class TestWeakSupervision:
    @pytest.fixture(scope="class")
    def weak_setup(self, tiny_wikisql):
        train = tiny_wikisql.split("train").examples
        denotations = [
            Denotation.from_example(e, tiny_wikisql.database(e.db_id))
            for e in train
        ]
        parser = WeaklySupervisedParser(epochs=30)
        parser.train_from_denotations(denotations, tiny_wikisql.databases)
        return parser, tiny_wikisql

    def test_candidate_search_finds_gold_denotation(self, tiny_wikisql):
        hits = 0
        total = 0
        for example in tiny_wikisql.split("train").examples[:25]:
            db = tiny_wikisql.database(example.db_id)
            gold = execute(parse_sql(example.sql), db)
            total += 1
            from repro.metrics.execution import results_equal

            for candidate in enumerate_candidates(
                example.question, db.schema, db
            ):
                try:
                    result = execute(candidate, db)
                except Exception:
                    continue
                if results_equal(result, gold):
                    hits += 1
                    break
        assert hits / total > 0.5

    def test_search_hits_recorded(self, weak_setup):
        parser, _ = weak_setup
        assert parser.search_hits > 0
        assert len(parser.pseudo_corpus) == parser.search_hits

    def test_weak_parser_recovers_accuracy(self, weak_setup, tiny_wikisql):
        parser, _ = weak_setup
        supervised = GrammarNeuralParser(epochs=30)
        supervised.train(
            tiny_wikisql.split("train").examples, tiny_wikisql.databases
        )
        weak_report = evaluate_parser(parser, tiny_wikisql)
        full_report = evaluate_parser(supervised, tiny_wikisql)
        weak_acc = weak_report.accuracy("execution_match")
        full_acc = full_report.accuracy("execution_match")
        assert weak_acc > 0.3
        assert weak_acc >= full_acc * 0.5  # recovers most of supervised

    def test_denotation_never_contains_sql(self, tiny_wikisql):
        example = tiny_wikisql.split("train").examples[0]
        signal = Denotation.from_example(
            example, tiny_wikisql.database(example.db_id)
        )
        assert not hasattr(signal, "sql")
        assert signal.question == example.question


class TestCompositionalSplits:
    def test_signature_counts_phenomena(self):
        assert composition_signature("SELECT a FROM t") == 0
        assert composition_signature("SELECT a FROM t WHERE x = 1") == 1
        assert composition_signature(
            "SELECT a FROM t WHERE x = 1 ORDER BY a DESC LIMIT 3"
        ) == 3

    def test_ssp_split_separates_by_signature(self, tiny_spider):
        split = make_ssp_split(tiny_spider)
        assert all(
            composition_signature(e.sql) < 2
            for e in split.split("train").examples
        )
        assert all(
            composition_signature(e.sql) >= 2
            for e in split.split("dev").examples
        )

    def test_cg_dev_examples_are_composed(self):
        ds = build_dataset("spider_cg_like", scale=0.05, seed=3)
        for example in ds.split("dev").examples:
            assert "ORDER BY" in example.sql
            assert "WHERE" in example.sql
        for example in ds.split("train").examples:
            assert "ORDER BY" not in example.sql

    def test_composition_is_harder_than_iid(self, tiny_spider):
        """The Spider-SSP claim: compositional dev is harder than IID dev
        for a trained parser (trained only on atomic examples)."""
        split = make_ssp_split(tiny_spider)
        parser = GrammarNeuralParser(epochs=30)
        parser.train(split.split("train").examples, split.databases)
        composed = evaluate_parser(parser, split).accuracy("execution_match")

        iid = GrammarNeuralParser(epochs=30)
        iid.train(tiny_spider.split("train").examples, tiny_spider.databases)
        standard = evaluate_parser(iid, tiny_spider).accuracy(
            "execution_match"
        )
        assert composed < standard

    def test_empty_side_rejected(self, tiny_wikisql):
        with pytest.raises(DatasetError):
            make_ssp_split(tiny_wikisql, threshold=99)


class TestReportGenerator:
    def test_summarize_scalar(self):
        result = Result(columns=["count(*)"], rows=[(7,)])
        assert "7" in summarize_result(result)

    def test_summarize_groups(self):
        result = Result(
            columns=["g", "n"], rows=[("a", 3), ("b", 9), ("c", 1)]
        )
        text = summarize_result(result)
        assert "b" in text and "c" in text

    def test_summarize_empty(self):
        assert "No rows" in summarize_result(Result(columns=[], rows=[]))

    def test_full_report(self, sales_db):
        generator = DataReportGenerator(sales_db)
        report = generator.generate(
            title="Quarterly review",
            questions=[
                "What is the total quantity of orders for each quarter?",
                "How many customers?",
                "Show a bar chart of the number of products per category?",
            ],
        )
        assert report.startswith("# Quarterly review")
        assert "## Overview" in report
        assert "## Headline questions" in report
        assert "## Recommended visualizations" in report
        assert "SELECT" in report
        assert "VISUALIZE" in report
        assert "█" in report  # at least one rendered chart

    def test_report_handles_unanswerable(self, sales_db):
        generator = DataReportGenerator(sales_db)
        report = generator.generate(
            questions=["utter gibberish zebra unicorn nonsense?"]
        )
        assert "could not answer" in report or "SELECT" in report
