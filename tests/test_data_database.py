"""Database store tests: inserts, copies, CSV round-trips."""

import pytest

from repro.data.database import Database, Table
from repro.errors import AnalysisError


class TestTable:
    def test_column_index(self, shop_db):
        table = shop_db.table("products")
        assert table.column_index("price") == 3
        assert table.column_index("PRICE") == 3

    def test_column_values(self, shop_db):
        assert shop_db.table("products").column_values("name") == [
            "widget", "gadget", "apple", "bread",
        ]

    def test_append_arity_checked(self, shop_db):
        with pytest.raises(AnalysisError):
            shop_db.table("products").append((1, "x"))

    def test_len(self, shop_db):
        assert len(shop_db.table("sales")) == 5


class TestCacheToken:
    def test_append_changes_token(self, shop_db):
        table = shop_db.table("products")
        before = table.cache_token()
        table.append((9, "new", "misc", 1.0))
        assert table.cache_token() != before

    def test_replace_rows_changes_token(self, shop_db):
        table = shop_db.table("products")
        before = table.cache_token()
        table.replace_rows(list(table.rows))
        assert table.cache_token() != before

    def test_raw_swap_detected_even_with_equal_length(self, shop_db):
        # a raw `rows = [...]` swap bypasses replace_rows(); the token must
        # still change, even when the new list has the same length (the
        # old (version, len, id) scheme could alias here after id reuse)
        table = shop_db.table("products")
        before = table.cache_token()
        table.rows = [tuple(row) for row in table.rows]
        assert table.cache_token() != before

    def test_token_stable_without_mutation(self, shop_db):
        table = shop_db.table("products")
        assert table.cache_token() == table.cache_token()


class TestDatabase:
    def test_missing_tables_created_empty(self, shop_schema):
        db = Database(schema=shop_schema)
        assert len(db.table("products")) == 0
        assert len(db.table("sales")) == 0

    def test_table_lookup_case_insensitive(self, shop_db):
        assert shop_db.table("Products").name == "products"

    def test_missing_table_raises(self, shop_db):
        with pytest.raises(AnalysisError):
            shop_db.table("nothing")

    def test_copy_is_independent(self, shop_db):
        clone = shop_db.copy()
        clone.insert("products", (9, "new", "misc", 1.0))
        assert len(clone.table("products")) == 5
        assert len(shop_db.table("products")) == 4

    def test_row_count(self, shop_db):
        assert shop_db.row_count() == 9


class TestCSV:
    def test_round_trip(self, shop_db, tmp_path):
        shop_db.to_csv_dir(tmp_path)
        loaded = Database.from_csv_dir(shop_db.schema, tmp_path)
        assert loaded.table("products").rows == shop_db.table("products").rows
        assert loaded.table("sales").rows == shop_db.table("sales").rows

    def test_null_round_trip(self, shop_db, tmp_path):
        shop_db.to_csv_dir(tmp_path)
        loaded = Database.from_csv_dir(shop_db.schema, tmp_path)
        assert loaded.table("products").rows[3][3] is None

    def test_missing_file_gives_empty_table(self, shop_db, tmp_path):
        shop_db.to_csv_dir(tmp_path)
        (tmp_path / "sales.csv").unlink()
        loaded = Database.from_csv_dir(shop_db.schema, tmp_path)
        assert len(loaded.table("sales")) == 0
        assert len(loaded.table("products")) == 4

    def test_header_mismatch_rejected(self, shop_db, tmp_path):
        shop_db.to_csv_dir(tmp_path)
        (tmp_path / "sales.csv").write_text("wrong,header\n1,2\n")
        with pytest.raises(AnalysisError):
            Database.from_csv_dir(shop_db.schema, tmp_path)
