"""Vis dataset builders and the benchmark registry."""

import pytest

from repro.datasets.registry import PAPER_REFERENCE, build_dataset, dataset_names
from repro.errors import DatasetError
from repro.sql.executor import execute
from repro.sql.parser import parse_sql
from repro.vis.charts import render_chart
from repro.vis.vql import parse_vql


class TestVisDatasets:
    def test_every_example_has_vql(self, tiny_nvbench):
        for example in tiny_nvbench.examples:
            assert example.vql is not None
            assert example.vql.startswith("VISUALIZE")

    def test_vql_sql_consistency(self, tiny_nvbench):
        for example in tiny_nvbench.examples[:30]:
            vql = parse_vql(example.vql)
            gold_sql = parse_sql(example.sql)
            assert vql.query == gold_sql

    def test_charts_render(self, tiny_nvbench):
        for example in tiny_nvbench.examples[:25]:
            db = tiny_nvbench.database(example.db_id)
            chart = render_chart(example.vql, db)
            assert chart.chart_type in ("bar", "pie", "line", "scatter")

    def test_questions_mention_charts(self, tiny_nvbench):
        cues = ("chart", "graph", "plot", "bars", "proportion", "points",
                "trend")
        mentioned = sum(
            any(c in e.question.lower() for c in cues)
            for e in tiny_nvbench.examples
        )
        assert mentioned / len(tiny_nvbench.examples) > 0.9

    def test_chart_type_diversity(self, tiny_nvbench):
        types = {e.vql.split()[1] for e in tiny_nvbench.examples}
        assert len(types) >= 3

    def test_scatter_examples_numeric(self, tiny_nvbench):
        for example in tiny_nvbench.examples:
            if example.vql.split()[1] == "SCATTER":
                db = tiny_nvbench.database(example.db_id)
                result = execute(parse_sql(example.sql), db)
                assert len(result.columns) == 2


class TestRegistry:
    def test_thirty_eight_families(self):
        assert len(dataset_names()) == 38
        assert set(PAPER_REFERENCE) == set(dataset_names())

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            build_dataset("nothing_like")

    @pytest.mark.parametrize(
        "name",
        ["geoquery_like", "wikisql_like", "sparc_like", "bird_like",
         "cnvbench_like"],
    )
    def test_representative_builds(self, name):
        ds = build_dataset(name, scale=0.02, seed=1)
        assert len(ds.examples) > 0
        stats = ds.statistics()
        assert stats.num_queries == len(ds.examples)

    def test_scale_controls_size(self):
        small = build_dataset("atis_like", scale=0.02, seed=1)
        large = build_dataset("atis_like", scale=0.06, seed=1)
        assert len(large.examples) > len(small.examples)

    def test_size_ordering_preserved(self):
        """WikiSQL-family must stay the largest SQL corpus at any scale."""
        wikisql = build_dataset("wikisql_like", scale=0.05, seed=1)
        academic = build_dataset("academic_like", scale=0.05, seed=1)
        assert len(wikisql.examples) > len(academic.examples)
