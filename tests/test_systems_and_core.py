"""System architectures, advisor, sessions, pipeline, and the NLI facade."""

import pytest

from repro import NaturalLanguageInterface
from repro.core.pipeline import Pipeline
from repro.core.registry import (
    approach_registry,
    dataset_registry,
    functional_representations,
    metric_registry,
    system_registry,
)
from repro.parsers.semantic import GrammarSemanticParser
from repro.systems import (
    EndToEndSystem,
    InteractiveSession,
    MultiStageSystem,
    ParsingBasedSystem,
    RuleBasedSystem,
    UserProfile,
    recommend_system,
)
from repro.systems.base import wants_visualization


class TestIntentRouting:
    def test_vis_cues(self):
        assert wants_visualization("Draw a bar chart of sales?")
        assert wants_visualization("show the proportion breakdown of x")
        assert not wants_visualization("Show the name of products?")


@pytest.fixture(scope="module")
def all_systems():
    return {
        "rule-based": RuleBasedSystem(),
        "parsing-based": ParsingBasedSystem(),
        "multi-stage": MultiStageSystem(),
        "end-to-end": EndToEndSystem(),
    }


class TestArchitectures:
    def test_all_answer_simple_query(self, all_systems, sales_db):
        for name, system in all_systems.items():
            response = system.answer(
                "What is the average price of products?", sales_db
            )
            assert response.kind == "data", name
            assert response.result is not None
            assert response.latency_seconds > 0

    def test_rule_based_refuses_out_of_template(self, all_systems, sales_db):
        response = all_systems["rule-based"].answer(
            "Give me the designation of items per kind sorted weirdly?",
            sales_db,
        )
        assert response.kind == "clarification"

    def test_parsing_based_handles_group(self, all_systems, sales_db):
        response = all_systems["parsing-based"].answer(
            "What is the number of orders for each quarter?", sales_db
        )
        assert response.kind == "data"
        assert "GROUP BY" in (response.sql or "")

    def test_chart_answers(self, all_systems, sales_db):
        for name in ("parsing-based", "multi-stage", "end-to-end"):
            response = all_systems[name].answer(
                "Draw a bar chart of the number of orders per quarter?",
                sales_db,
            )
            assert response.kind == "chart", name
            assert response.chart is not None
            assert response.chart.points

    def test_multi_stage_deepeye_fallback(self, all_systems, sales_db):
        response = all_systems["multi-stage"].answer(
            "Draw a chart of something interesting about products?",
            sales_db,
        )
        # either a parsed chart or the DeepEye recommendation path
        assert response.kind == "chart"

    def test_end_to_end_confusion_detection(self, all_systems, sales_db):
        response = all_systems["end-to-end"].answer(
            "completely unintelligible gibberish request", sales_db
        )
        assert response.kind in ("clarification", "data")


class TestAdvisor:
    def test_basic_user_defaults_to_rules(self):
        assert recommend_system(UserProfile()).architecture == "rule-based"

    def test_basic_flexible_gets_end_to_end(self):
        rec = recommend_system(UserProfile(needs_flexibility=True))
        assert rec.architecture == "end-to-end"

    def test_technical_user_gets_parsing(self):
        rec = recommend_system(UserProfile(technical_skill="high"))
        assert rec.architecture == "parsing-based"

    def test_professional_complex_gets_multi_stage(self):
        rec = recommend_system(
            UserProfile(expertise="professional", data_complexity="complex")
        )
        assert rec.architecture == "multi-stage"

    def test_professional_fast_gets_end_to_end(self):
        rec = recommend_system(
            UserProfile(expertise="professional", environment="fast-paced")
        )
        assert rec.architecture == "end-to-end"

    def test_professional_stable_gets_rules(self):
        rec = recommend_system(UserProfile(expertise="professional"))
        assert rec.architecture == "rule-based"

    def test_every_recommendation_is_reasoned(self):
        for profile in (
            UserProfile(),
            UserProfile(expertise="professional", environment="fast-paced"),
        ):
            assert recommend_system(profile).reason


class TestSession:
    def test_history_accumulates(self, sales_db):
        session = InteractiveSession(
            system=ParsingBasedSystem(), db=sales_db
        )
        first = session.ask(
            "Show the name of products whose price is greater than 100?"
        )
        second = session.ask("How many are there?")
        assert first.kind == "data" and second.kind == "data"
        assert "COUNT(*)" in (second.sql or "")
        assert "price > 100" in (second.sql or "")
        assert len(session.transcript) == 2

    def test_reset_clears_state(self, sales_db):
        session = InteractiveSession(
            system=ParsingBasedSystem(), db=sales_db
        )
        session.ask("Show the name of products?")
        session.reset()
        assert not session.history and not session.transcript


class TestPipeline:
    def test_trace_records_stages(self, sales_db):
        pipeline = Pipeline(
            GrammarSemanticParser(),
            NaturalLanguageInterface(sales_db).pipeline.vis_parser,
        )
        trace = pipeline.run("Show the name of products?", sales_db)
        assert trace.succeeded
        stages = [record.stage for record in trace.stages]
        assert stages == ["preprocess", "translate", "execute", "present"]
        assert "SELECT" in trace.functional_expression
        assert "question:" in trace.describe()

    def test_vis_trace(self, sales_db):
        nli = NaturalLanguageInterface(sales_db)
        trace = nli.pipeline.run(
            "Draw a pie chart of the number of orders per quarter?",
            sales_db,
        )
        assert trace.succeeded and trace.chart is not None

    def test_failed_translation_traced(self, sales_db):
        pipeline = Pipeline(
            GrammarSemanticParser(guess_unlinked=False),
            NaturalLanguageInterface(sales_db).pipeline.vis_parser,
        )
        trace = pipeline.run("pure nonsense zebra unicorn?", sales_db)
        assert not trace.succeeded
        assert trace.error


class TestNLIFacade:
    def test_data_answer(self, sales_db):
        nli = NaturalLanguageInterface(sales_db)
        answer = nli.ask("What is the maximum price of products?")
        assert answer.ok
        assert answer.rows and answer.columns

    def test_chart_answer(self, sales_db):
        nli = NaturalLanguageInterface(sales_db)
        answer = nli.ask(
            "Show a bar chart of the number of orders per quarter?"
        )
        assert answer.ok and answer.chart is not None
        assert "█" in answer.chart.to_ascii()

    def test_conversation_and_reset(self, sales_db):
        nli = NaturalLanguageInterface(sales_db)
        nli.ask("Show the name of products whose price is above 100?")
        follow = nli.ask("How many are there?")
        assert "COUNT(*)" in (follow.sql or "")
        nli.reset()
        assert nli.history == []

    def test_llm_backed_interface(self, sales_db):
        nli = NaturalLanguageInterface(sales_db, model="chatgpt-like")
        answer = nli.ask("How many customers?")
        assert answer.ok


class TestRegistries:
    def test_approaches_instantiable(self):
        registry = approach_registry()
        assert len(registry) >= 18
        for name, factory in registry.items():
            instance = factory()
            assert hasattr(instance, "parse") or hasattr(
                instance, "parse_vis"
            ), name

    def test_all_stages_covered(self):
        from repro.parsers.base import LLM, NEURAL, PLM, TRADITIONAL

        stages = {
            factory().stage for factory in approach_registry().values()
        }
        assert {TRADITIONAL, NEURAL, PLM, LLM} <= stages

    def test_other_registries(self):
        assert len(dataset_registry()) == 38
        assert len(metric_registry()) == 9
        assert len(system_registry()) == 4
        assert len(functional_representations()) == 3
