"""Simulated LLM substrate tests: prompts, profiles, corruption, interface."""

import random

import pytest

from repro.data.domains import domain_by_name
from repro.errors import LLMError
from repro.llm.corruption import corrupt_query, syntax_error_text
from repro.llm.interface import SimulatedLLM
from repro.llm.profiles import MODEL_PROFILES, get_profile
from repro.llm.prompts import (
    PromptBuilder,
    deserialize_schema,
    extract_sql,
    extract_vql,
    parse_prompt,
    serialize_schema,
)
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql


@pytest.fixture
def schema():
    return domain_by_name("sales").schema


class TestPromptBuilder:
    def test_zero_shot_prompt_has_sections(self, schema):
        prompt = PromptBuilder().build("How many orders?", schema)
        assert "### Task:" in prompt
        assert "### Schema (sales):" in prompt
        assert "CREATE TABLE orders" in prompt
        assert prompt.rstrip().endswith("A:")

    def test_descriptions_toggle(self, schema):
        with_desc = PromptBuilder(include_descriptions=True).build("q", schema)
        without = PromptBuilder(include_descriptions=False).build("q", schema)
        assert "/* aka:" in with_desc
        assert "/* aka:" not in without

    def test_demonstrations_rendered(self, schema):
        prompt = PromptBuilder().build(
            "q", schema, demonstrations=[("dq", "SELECT 1")]
        )
        assert "### Examples:" in prompt and "Q: dq" in prompt

    def test_repair_section(self, schema):
        prompt = PromptBuilder().build(
            "q", schema, repair_of="SELECT x FROM y", error="unknown table y"
        )
        assert "### It failed with: unknown table y" in prompt


class TestPromptParsing:
    def test_round_trip_fields(self, schema):
        prompt = PromptBuilder(chain_of_thought=True).build(
            "How many orders?",
            schema,
            demonstrations=[("dq", "SELECT 1"), ("dq2", "SELECT 2")],
            knowledge="Premium products are products whose price is "
            "greater than 10.",
            history=[("prev", "SELECT name FROM products")],
        )
        parsed = parse_prompt(prompt)
        assert parsed.question == "How many orders?"
        assert parsed.chain_of_thought
        assert len(parsed.demonstrations) == 2
        assert len(parsed.history) == 1
        assert parsed.knowledge.startswith("Premium")
        assert parsed.schema is not None
        assert parsed.schema.has_table("orders")

    def test_schema_round_trip_with_synonyms_and_fks(self, schema):
        body = serialize_schema(schema)
        rebuilt = deserialize_schema("sales", body)
        assert rebuilt.table_names() == schema.table_names()
        assert rebuilt.foreign_keys
        price = rebuilt.table("products").column("price")
        assert "cost" in price.synonyms
        assert price.type.value == "number"

    def test_schema_without_descriptions_loses_synonyms(self, schema):
        body = serialize_schema(schema, descriptions=False)
        rebuilt = deserialize_schema("sales", body)
        assert rebuilt.table("products").column("price").synonyms == ()

    def test_extract_sql_from_code_block(self):
        assert extract_sql("reasoning\n```sql\nSELECT 1\n```") == "SELECT 1"
        assert extract_sql("SELECT a FROM t") == "SELECT a FROM t"

    def test_extract_vql(self):
        completion = "```sql\nVISUALIZE BAR SELECT a, b FROM t\n```"
        assert extract_vql(completion).startswith("VISUALIZE BAR")


class TestCorruption:
    QUERY = "SELECT name FROM products WHERE price > 100"

    def test_corruption_changes_query(self, schema):
        rng = random.Random(0)
        changed = 0
        for seed in range(20):
            rng = random.Random(seed)
            corrupted = corrupt_query(parse_sql(self.QUERY), schema, rng)
            if to_sql(corrupted) != self.QUERY:
                changed += 1
        assert changed >= 15

    def test_corrupted_query_still_renders(self, schema):
        for seed in range(25):
            rng = random.Random(seed)
            corrupted = corrupt_query(
                parse_sql(self.QUERY), schema, rng, severity=2
            )
            assert to_sql(corrupted)  # never raises

    def test_syntax_error_text_breaks_parsing(self):
        from repro.errors import SQLError

        rng = random.Random(3)
        broken = syntax_error_text(self.QUERY, rng)
        with pytest.raises(SQLError):
            parse_sql(broken)


class TestProfiles:
    def test_known_profiles(self):
        assert set(MODEL_PROFILES) == {
            "small-llm", "codex-like", "chatgpt-like", "palm-like",
        }
        with pytest.raises(KeyError):
            get_profile("gpt9")

    def test_tier_ordering(self):
        assert (
            MODEL_PROFILES["palm-like"].base_error
            < MODEL_PROFILES["chatgpt-like"].base_error
            < MODEL_PROFILES["small-llm"].base_error
        )


class TestSimulatedLLM:
    def test_deterministic_at_t0(self, schema):
        prompt = PromptBuilder().build("How many orders?", schema)
        a = SimulatedLLM(seed=1).complete(prompt)[0].text
        b = SimulatedLLM(seed=1).complete(prompt)[0].text
        assert a == b

    def test_sampling_varies_at_temperature(self, schema):
        prompt = PromptBuilder().build(
            "Show the name of products whose price is greater than 100?",
            schema,
        )
        llm = SimulatedLLM("small-llm", seed=1)
        texts = {
            c.text for c in llm.complete(prompt, temperature=0.8, n=10)
        }
        assert len(texts) > 1

    def test_no_schema_means_guess(self):
        llm = SimulatedLLM(seed=0)
        out = llm.complete("### Task: x\n### Question: hello\nA:")[0].text
        assert "SELECT" in out

    def test_needs_question(self):
        llm = SimulatedLLM(seed=0)
        out = llm.complete("### Task: x\nA:")[0].text
        assert "question" in out.lower()

    def test_cot_adds_reasoning(self, schema):
        prompt = PromptBuilder(chain_of_thought=True).build(
            "How many orders?", schema
        )
        out = SimulatedLLM(seed=0).complete(prompt)[0].text
        assert "1." in out and "```sql" in out

    def test_vis_task_emits_vql(self, schema):
        prompt = PromptBuilder(task="vis").build(
            "Draw a pie chart of the number of orders per quarter?", schema
        )
        out = SimulatedLLM(seed=0).complete(prompt)[0].text
        assert "VISUALIZE" in out

    def test_n_must_be_positive(self, schema):
        with pytest.raises(LLMError):
            SimulatedLLM().complete("x", n=0)

    def test_token_accounting(self, schema):
        llm = SimulatedLLM(seed=0)
        prompt = PromptBuilder().build("How many orders?", schema)
        completion = llm.complete(prompt)[0]
        assert completion.prompt_tokens > 10
        assert llm.calls == 1
        assert llm.total_prompt_tokens == completion.prompt_tokens
