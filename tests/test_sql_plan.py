"""Differential tests for the compiled plan engine (repro.sql.plan).

The tree-walking interpreter ``execute_reference`` is the oracle: on every
query the compiled engine must produce an identical result (columns, rows,
ordered-ness) or fail with an identical error.  Coverage comes from three
directions — every gold query emitted by the dataset builders, targeted
operator tests (hash join vs nested loop on NULL join keys), and a seeded
random query generator.
"""

from __future__ import annotations

import random

import pytest

from repro.data.database import Database
from repro.data.schema import Column, ColumnType, Schema, TableSchema
from repro.errors import SQLError
from repro.sql.executor import execute, execute_reference
from repro.sql.parser import parse_sql
from repro.sql.plan import (
    clear_plan_caches,
    compile_sql,
    plan_cache_stats,
    plan_for,
)

NUM = ColumnType.NUMBER
TXT = ColumnType.TEXT


def assert_engines_agree(sql: str, db: Database):
    """Run *sql* on both engines; assert identical results or errors."""
    query = parse_sql(sql)
    try:
        expected = execute_reference(query, db)
    except SQLError as exc:
        with pytest.raises(type(exc)) as info:
            plan_for(query, db.schema).run(db)
        assert str(info.value) == str(exc), sql
        return None
    got = plan_for(query, db.schema).run(db)
    assert got.columns == expected.columns, sql
    assert got.rows == expected.rows, sql
    assert got.ordered == expected.ordered, sql
    return got


def _dataset_differential(dataset) -> int:
    checked = 0
    for split in dataset.splits.values():
        for example in split.examples:
            db = dataset.database(example.db_id)
            assert_engines_agree(example.sql, db)
            checked += 1
    return checked


# ----------------------------------------------------------------------
# Gold queries from every dataset builder.
class TestGoldQueryDifferential:
    def test_cross_domain_golds(self, tiny_spider):
        assert _dataset_differential(tiny_spider) >= 100

    def test_wikisql_golds(self, tiny_wikisql):
        assert _dataset_differential(tiny_wikisql) >= 100

    def test_nvbench_golds(self, tiny_nvbench):
        assert _dataset_differential(tiny_nvbench) >= 100

    def test_multiturn_golds(self):
        from repro.datasets.multiturn import build_sparc_like

        dataset = build_sparc_like(num_dialogues=25, seed=11)
        assert _dataset_differential(dataset) >= 25

    def test_compositional_golds(self):
        from repro.datasets.composition import build_spider_cg_like

        dataset = build_spider_cg_like(num_examples=60, seed=11)
        assert _dataset_differential(dataset) >= 60

    def test_knowledge_golds(self):
        from repro.datasets.knowledge import build_bird_like

        dataset = build_bird_like(num_examples=60, seed=11)
        assert _dataset_differential(dataset) >= 60


# ----------------------------------------------------------------------
# Hash join vs nested loop on NULL join keys.
@pytest.fixture
def null_key_db() -> Database:
    schema = Schema(
        db_id="nulljoin",
        tables=(
            TableSchema(
                "left_t",
                (Column("id", NUM), Column("k", NUM), Column("tag", TXT)),
                primary_key="id",
            ),
            TableSchema(
                "right_t",
                (Column("id", NUM), Column("k", NUM), Column("val", TXT)),
                primary_key="id",
            ),
        ),
    )
    db = Database(schema=schema)
    for row in ((1, 1, "a"), (2, None, "b"), (3, 2, "c"), (4, None, "d")):
        db.insert("left_t", row)
    for row in ((1, 1, "x"), (2, None, "y"), (3, 3, "z"), (4, None, "w")):
        db.insert("right_t", row)
    return db


class TestJoinStrategies:
    def test_equi_join_uses_hash_join(self, null_key_db):
        plan = compile_sql(
            "SELECT l.tag, r.val FROM left_t AS l JOIN right_t AS r "
            "ON l.k = r.k",
            null_key_db.schema,
        )
        assert plan.describe()["hash_joins"] == 1

    def test_non_equi_join_uses_nested_loop(self, null_key_db):
        plan = compile_sql(
            "SELECT l.tag, r.val FROM left_t AS l JOIN right_t AS r "
            "ON l.k < r.k",
            null_key_db.schema,
        )
        assert plan.describe()["nested_loop_joins"] == 1
        assert plan.describe()["hash_joins"] == 0

    def test_null_keys_never_match_inner(self, null_key_db):
        # SQL three-valued logic: NULL = NULL is unknown, so the two NULL
        # rows on each side must not pair up under the hash join.
        result = assert_engines_agree(
            "SELECT l.tag, r.val FROM left_t AS l JOIN right_t AS r "
            "ON l.k = r.k",
            null_key_db,
        )
        assert result.rows == [("a", "x")]

    def test_null_keys_left_join_pads(self, null_key_db):
        result = assert_engines_agree(
            "SELECT l.tag, r.val FROM left_t AS l LEFT JOIN right_t AS r "
            "ON l.k = r.k ORDER BY l.id",
            null_key_db,
        )
        assert result.rows == [
            ("a", "x"), ("b", None), ("c", None), ("d", None),
        ]

    def test_hash_and_nested_loop_agree_on_same_equi_join(self, null_key_db):
        # The same logical join answered by both physical strategies: the
        # hash path via the plain ON, the nested-loop path by phrasing the
        # equality so the planner cannot classify it as an equi-join.
        hash_result = assert_engines_agree(
            "SELECT l.tag, r.val FROM left_t AS l JOIN right_t AS r "
            "ON l.k = r.k",
            null_key_db,
        )
        nested = compile_sql(
            "SELECT l.tag, r.val FROM left_t AS l JOIN right_t AS r "
            "ON l.k <= r.k AND l.k >= r.k",
            null_key_db.schema,
        )
        assert nested.describe()["hash_joins"] == 0
        assert nested.run(null_key_db).rows == hash_result.rows


# ----------------------------------------------------------------------
# Plan caching and compile-time metadata.
class TestPlanCache:
    def test_same_sql_same_schema_hits(self, shop_db):
        clear_plan_caches()
        sql = "SELECT name FROM products WHERE price > 3"
        first = compile_sql(sql, shop_db.schema)
        second = compile_sql(sql, shop_db.schema)
        assert first is second
        stats = plan_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_different_schema_misses(self, shop_db, null_key_db):
        clear_plan_caches()
        sql = "SELECT COUNT(*) FROM left_t"
        compile_sql(sql, null_key_db.schema)
        with pytest.raises(SQLError):
            compile_sql(sql, shop_db.schema).run(shop_db)
        assert plan_cache_stats()["misses"] == 2

    def test_execute_routes_through_plan_cache(self, shop_db):
        # with the result cache on, a repeat is served above the planner;
        # disable it so the second execute exercises the plan cache
        from repro.sql import rescache

        clear_plan_caches()
        query = parse_sql("SELECT COUNT(*) FROM sales")
        previous = rescache.set_rescache_enabled(False)
        try:
            execute(query, shop_db)
            execute(query, shop_db)
        finally:
            rescache.set_rescache_enabled(previous)
        stats = plan_cache_stats()
        assert stats["hits"] >= 1

    def test_subquery_hoisting_metadata(self, shop_db):
        uncorrelated = compile_sql(
            "SELECT name FROM products WHERE id IN "
            "(SELECT product_id FROM sales WHERE quantity > 2)",
            shop_db.schema,
        )
        assert uncorrelated.describe()["hoisted_subqueries"] == 1
        assert uncorrelated.describe()["correlated_subqueries"] == 0
        correlated = compile_sql(
            "SELECT name FROM products AS p WHERE EXISTS "
            "(SELECT 1 FROM sales AS s WHERE s.product_id = p.id)",
            shop_db.schema,
        )
        assert correlated.describe()["correlated_subqueries"] == 1

    def test_filter_pushdown_metadata(self, shop_db):
        plan = compile_sql(
            "SELECT p.name FROM sales AS s JOIN products AS p "
            "ON s.product_id = p.id WHERE p.price > 2 AND s.quantity > 1",
            shop_db.schema,
        )
        assert plan.describe()["pushed_filters"] >= 1


# ----------------------------------------------------------------------
# Seeded random query generator (hypothesis-style differential fuzzing).
_COLS = {
    "products": ["id", "name", "category", "price"],
    "sales": ["id", "product_id", "quantity", "quarter"],
}
_NUM_COLS = {
    "products": ["id", "price"],
    "sales": ["id", "product_id", "quantity"],
}
_AGGS = ["COUNT", "SUM", "AVG", "MIN", "MAX"]
_CMPS = ["=", "<>", "<", "<=", ">", ">="]


def _random_predicate(rng: random.Random, table: str, prefix: str) -> str:
    kind = rng.randrange(5)
    col = f"{prefix}{rng.choice(_COLS[table])}"
    num_col = f"{prefix}{rng.choice(_NUM_COLS[table])}"
    if kind == 0:
        return f"{num_col} {rng.choice(_CMPS)} {rng.randrange(-2, 12)}"
    if kind == 1:
        return f"{col} IS {'NOT ' if rng.random() < 0.5 else ''}NULL"
    if kind == 2:
        return f"{num_col} BETWEEN {rng.randrange(0, 4)} AND {rng.randrange(4, 12)}"
    if kind == 3:
        return f"{num_col} IN ({rng.randrange(0, 4)}, {rng.randrange(0, 8)}, NULL)"
    return f"{prefix}{'name' if table == 'products' else 'quarter'} LIKE '%{rng.choice('aeq12')}%'"


def _random_query(rng: random.Random) -> str:
    use_join = rng.random() < 0.4
    if use_join:
        join_kind = rng.choice(["JOIN", "LEFT JOIN"])
        from_clause = (
            f"FROM products AS p {join_kind} sales AS s ON s.product_id = p.id"
        )
        table, prefix = rng.choice([("products", "p."), ("sales", "s.")])
    else:
        table = rng.choice(["products", "sales"])
        from_clause, prefix = f"FROM {table}", ""
    group_by = rng.random() < 0.3
    if group_by:
        group_col = f"{prefix}{rng.choice(_COLS[table])}"
        agg = rng.choice(_AGGS)
        agg_arg = "*" if agg == "COUNT" else f"{prefix}{rng.choice(_NUM_COLS[table])}"
        select = f"SELECT {group_col}, {agg}({agg_arg}) AS m"
        tail = f" GROUP BY {group_col}"
        if rng.random() < 0.5:
            tail += f" HAVING {agg}({agg_arg}) {rng.choice(_CMPS)} {rng.randrange(0, 6)}"
        if rng.random() < 0.5:
            tail += f" ORDER BY m {rng.choice(['ASC', 'DESC'])}"
    else:
        distinct = "DISTINCT " if rng.random() < 0.3 else ""
        cols = rng.sample(_COLS[table], k=rng.randrange(1, 3))
        select = f"SELECT {distinct}" + ", ".join(f"{prefix}{c}" for c in cols)
        tail = ""
        if rng.random() < 0.5:
            tail += f" ORDER BY {prefix}{rng.choice(_COLS[table])} {rng.choice(['ASC', 'DESC'])}"
    where = ""
    if rng.random() < 0.7:
        preds = [
            _random_predicate(rng, table, prefix)
            for _ in range(rng.randrange(1, 3))
        ]
        where = " WHERE " + f" {rng.choice(['AND', 'OR'])} ".join(preds)
    limit = f" LIMIT {rng.randrange(1, 5)}" if rng.random() < 0.3 else ""
    return f"{select} {from_clause}{where}{tail}{limit}"


def test_seeded_random_queries_differential(shop_db):
    rng = random.Random(1234)
    for _ in range(250):
        assert_engines_agree(_random_query(rng), shop_db)


def test_random_queries_on_generated_database(sales_db):
    # Same generator, bigger generated database: exercise result sizes the
    # four-row shop fixture cannot.
    table = next(iter(sales_db.tables))
    assert_engines_agree(f"SELECT COUNT(*) FROM {table}", sales_db)
    assert_engines_agree(f"SELECT * FROM {table} LIMIT 7", sales_db)
