"""Visualization substrate tests: VQL, specs, charts, recommendation."""

import pytest

from repro.errors import ChartError, VQLParseError
from repro.sql.parser import parse_sql
from repro.vis.charts import Chart, render_chart
from repro.vis.recommend import recommend_charts
from repro.vis.spec import build_spec
from repro.vis.vql import (
    CHART_TYPES,
    VQLQuery,
    normalize_vql,
    parse_vql,
    to_vql,
)


class TestVQL:
    def test_parse_basic(self):
        vql = parse_vql("VISUALIZE BAR SELECT a, COUNT(*) FROM t GROUP BY a")
        assert vql.chart_type == "bar"
        assert vql.query == parse_sql("SELECT a, COUNT(*) FROM t GROUP BY a")

    @pytest.mark.parametrize("chart", CHART_TYPES)
    def test_all_chart_types(self, chart):
        vql = parse_vql(f"VISUALIZE {chart.upper()} SELECT a, b FROM t")
        assert vql.chart_type == chart

    def test_parse_bin_clause(self):
        vql = parse_vql(
            "VISUALIZE LINE SELECT order_date, COUNT(*) FROM t "
            "GROUP BY order_date BIN order_date BY MONTH"
        )
        assert vql.bin_column == "order_date"
        assert vql.bin_unit == "month"

    def test_round_trip(self):
        text = "VISUALIZE PIE SELECT a, COUNT(*) FROM t GROUP BY a"
        assert to_vql(parse_vql(text)) == text

    def test_round_trip_with_bin(self):
        text = (
            "VISUALIZE LINE SELECT d, SUM(x) FROM t GROUP BY d "
            "BIN d BY YEAR"
        )
        assert to_vql(parse_vql(text)) == text

    def test_normalize(self):
        assert normalize_vql(
            "visualize bar select A from T t1 where t1.A > 1 "
        ).startswith("VISUALIZE BAR SELECT a FROM t")

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT a FROM t",
            "VISUALIZE",
            "VISUALIZE HISTOGRAM SELECT a FROM t",
            "VISUALIZE BAR NOT SQL AT ALL",
            "VISUALIZE BAR SELECT a FROM t BIN a BY decade",
        ],
    )
    def test_bad_vql_raises(self, bad):
        with pytest.raises(VQLParseError):
            parse_vql(bad)

    def test_with_chart(self):
        vql = parse_vql("VISUALIZE BAR SELECT a, b FROM t")
        assert vql.with_chart("pie").chart_type == "pie"

    def test_bin_inside_string_literal_is_not_a_clause(self):
        vql = parse_vql(
            "VISUALIZE BAR SELECT name, price FROM products "
            "WHERE name = 'x bin y'"
        )
        assert vql.bin_column is None and vql.bin_unit is None
        assert vql.query == parse_sql(
            "SELECT name, price FROM products WHERE name = 'x bin y'"
        )

    def test_bin_like_literal_at_end_is_not_a_clause(self):
        # ends in a quote, so the trailing-clause grammar cannot match
        vql = parse_vql(
            "VISUALIZE BAR SELECT a, b FROM t WHERE c = 'group bin d by e'"
        )
        assert vql.bin_column is None

    def test_bin_clause_after_string_literal_still_parses(self):
        vql = parse_vql(
            "VISUALIZE LINE SELECT d, COUNT(*) FROM t "
            "WHERE kind = 'x bin y' GROUP BY d BIN d BY YEAR"
        )
        assert vql.bin_column == "d" and vql.bin_unit == "year"


class TestSpec:
    def test_bar_spec(self, shop_db):
        vql = parse_vql(
            "VISUALIZE BAR SELECT category, COUNT(*) FROM products "
            "GROUP BY category"
        )
        from repro.sql.executor import execute

        spec = build_spec(vql, execute(vql.query, shop_db))
        assert spec["mark"] == "bar"
        assert spec["encoding"]["x"]["type"] == "nominal"
        assert spec["encoding"]["y"]["type"] == "quantitative"
        assert len(spec["data"]["values"]) == 2

    def test_pie_uses_theta(self, shop_db):
        vql = parse_vql(
            "VISUALIZE PIE SELECT category, COUNT(*) FROM products "
            "GROUP BY category"
        )
        from repro.sql.executor import execute

        spec = build_spec(vql, execute(vql.query, shop_db))
        assert spec["mark"] == "arc"
        assert "theta" in spec["encoding"]

    def test_scatter_requires_numeric(self, shop_db):
        vql = parse_vql("VISUALIZE SCATTER SELECT name, category FROM products")
        from repro.sql.executor import execute

        with pytest.raises(ChartError):
            build_spec(vql, execute(vql.query, shop_db))

    def test_single_column_rejected(self, shop_db):
        vql = VQLQuery(
            chart_type="bar", query=parse_sql("SELECT name FROM products")
        )
        from repro.sql.executor import execute

        with pytest.raises(ChartError):
            build_spec(vql, execute(vql.query, shop_db))

    def test_empty_result_allowed(self, shop_db):
        vql = parse_vql(
            "VISUALIZE BAR SELECT category, COUNT(*) FROM products "
            "WHERE id > 99 GROUP BY category"
        )
        from repro.sql.executor import execute

        spec = build_spec(vql, execute(vql.query, shop_db))
        assert spec["data"]["values"] == []


class TestCharts:
    def test_render_bar(self, shop_db):
        chart = render_chart(
            "VISUALIZE BAR SELECT category, COUNT(*) FROM products "
            "GROUP BY category",
            shop_db,
        )
        assert chart.chart_type == "bar"
        assert chart.points == [("tools", 2), ("food", 2)]
        ascii_art = chart.to_ascii()
        assert "tools" in ascii_art and "█" in ascii_art

    def test_render_scatter_ascii(self, shop_db):
        chart = render_chart(
            "VISUALIZE SCATTER SELECT price, id FROM products "
            "WHERE price IS NOT NULL",
            shop_db,
        )
        assert "•" in chart.to_ascii()

    def test_binning_by_quarter(self, shop_schema):
        from repro.data.database import Database

        db = Database(schema=shop_schema)
        db.insert("products", (1, "a", "x", 1.0))
        db.insert("sales", (1, 1, 3, "2024-01-10"))
        db.insert("sales", (2, 1, 2, "2024-02-20"))
        db.insert("sales", (3, 1, 5, "2024-07-01"))
        chart = render_chart(
            "VISUALIZE LINE SELECT quarter, SUM(quantity) FROM sales "
            "GROUP BY quarter BIN quarter BY QUARTER",
            db,
        )
        assert dict(chart.points) == {"2024-Q1": 5.0, "2024-Q3": 5.0}

    def test_binning_by_year_and_weekday(self):
        from repro.vis.charts import _bin_key

        assert _bin_key("2024-03-15", "year") == "2024"
        assert _bin_key("2024-03-15", "month") == "2024-03"
        assert _bin_key("2024-03-15", "weekday") == "Fri"
        assert _bin_key("not a date", "year") == "not a date"

    def test_empty_chart_ascii(self):
        chart = Chart(chart_type="bar", x_label="x", y_label="y", points=[])
        assert "no data" in chart.to_ascii()


class TestRecommend:
    def test_recommends_ranked_charts(self, sales_db):
        ranked = recommend_charts(sales_db, "products", top_k=3)
        assert ranked
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)
        for entry in ranked:
            assert entry.vql.startswith("VISUALIZE")
            assert entry.chart.points

    def test_prefers_readable_category_counts(self, sales_db):
        ranked = recommend_charts(sales_db, "products", top_k=5)
        assert any("GROUP BY" in r.vql for r in ranked)

    def test_quality_penalizes_many_slices(self):
        from repro.vis.recommend import _quality

        few = Chart("pie", "x", "y", [(str(i), 1) for i in range(5)])
        many = Chart("pie", "x", "y", [(str(i), 1) for i in range(18)])
        assert _quality(few) > _quality(many)
