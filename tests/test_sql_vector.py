"""Three-way differential tests for the vectorized backend (repro.sql.vector).

The tree-walking interpreter ``execute_reference`` is the oracle; the
row-compiled plan and the vectorized plan must both agree with it — same
columns, rows, ordered-ness, and on failing queries the same error type
and message.  Coverage mirrors ``test_sql_plan``: every gold query from
the generated spider/wikisql/nvbench corpora, a seeded random-query
sweep, plus targeted tests for the batch cache, the explain annotations,
the obs counters, and the ``REPRO_SQL_VECTOR`` toggle.
"""

from __future__ import annotations

import random

import pytest

from repro.data.database import Database
from repro.errors import SQLError
from repro.sql import vector as vec
from repro.sql.executor import execute_reference
from repro.sql.parser import parse_sql
from repro.sql.plan import clear_plan_caches, compile_query, plan_for

#: (optimize, vectorize) settings every query is checked under
_ENGINE_MODES = ((True, False), (True, True), (False, True))


def assert_three_way_agree(sql: str, db: Database) -> None:
    """Reference vs row-compiled vs vectorized: identical results or errors."""
    query = parse_sql(sql)
    try:
        expected = execute_reference(query, db)
    except SQLError as exc:
        for optimize, vectorize in _ENGINE_MODES:
            plan = compile_query(
                query, db.schema, db, optimize=optimize, vectorize=vectorize
            )
            with pytest.raises(type(exc)) as info:
                plan.run(db)
            assert str(info.value) == str(exc), (sql, optimize, vectorize)
        return
    for optimize, vectorize in _ENGINE_MODES:
        plan = compile_query(
            query, db.schema, db, optimize=optimize, vectorize=vectorize
        )
        got = plan.run(db)
        assert got.columns == expected.columns, (sql, optimize, vectorize)
        assert got.rows == expected.rows, (sql, optimize, vectorize)
        assert got.ordered == expected.ordered, (sql, optimize, vectorize)


def _dataset_differential(dataset) -> int:
    checked = 0
    for split in dataset.splits.values():
        for example in split.examples:
            db = dataset.database(example.db_id)
            assert_three_way_agree(example.sql, db)
            checked += 1
    return checked


# ----------------------------------------------------------------------
# Gold queries from the generated corpora.
class TestGoldQueryDifferential:
    def test_cross_domain_golds(self, tiny_spider):
        assert _dataset_differential(tiny_spider) >= 100

    def test_wikisql_golds(self, tiny_wikisql):
        assert _dataset_differential(tiny_wikisql) >= 100

    def test_nvbench_golds(self, tiny_nvbench):
        assert _dataset_differential(tiny_nvbench) >= 100


# ----------------------------------------------------------------------
# Seeded random queries over the shared shop fixture.
def test_seeded_random_queries_differential(shop_db):
    from tests.test_sql_plan import _random_query

    rng = random.Random(4321)
    for _ in range(250):
        assert_three_way_agree(_random_query(rng), shop_db)


def test_random_queries_on_generated_database(sales_db):
    table = next(iter(sales_db.tables))
    assert_three_way_agree(f"SELECT COUNT(*) FROM {table}", sales_db)
    assert_three_way_agree(f"SELECT * FROM {table} LIMIT 7", sales_db)


# ----------------------------------------------------------------------
# Targeted semantics the kernels must not get wrong.
class TestKernelSemantics:
    @pytest.mark.parametrize(
        "sql",
        [
            # numeric comparison over a column holding NULL
            "SELECT name FROM products WHERE price > 5",
            # string ranks above numbers in the total order
            "SELECT name FROM products WHERE price < 'zzz'",
            # NOT IN with a NULL member is never TRUE
            "SELECT name FROM products WHERE price NOT IN (1.0, NULL)",
            # BETWEEN with NULL bound
            "SELECT name FROM products WHERE price BETWEEN NULL AND 10",
            "SELECT name FROM products WHERE NOT price BETWEEN 2 AND 10",
            "SELECT name FROM products WHERE name LIKE '%a%' OR price >= 9.5",
            "SELECT category FROM products WHERE price IS NULL",
            # empty-group plain column must raise identically
            "SELECT name, COUNT(*) FROM products WHERE price > 999 "
            "GROUP BY category",
            # aggregate over non-numeric text must raise identically
            "SELECT SUM(name) FROM products",
            # ORDER BY output alias vs recomputed aggregate
            "SELECT category, COUNT(*) AS n FROM products GROUP BY category "
            "ORDER BY n DESC",
            "SELECT category, MIN(price) FROM products GROUP BY category "
            "ORDER BY MIN(price)",
            # DISTINCT aggregate
            "SELECT COUNT(DISTINCT category) FROM products",
            "SELECT AVG(quantity) FROM sales WHERE quarter = 'Q2'",
        ],
    )
    def test_targeted(self, sql, shop_db):
        assert_three_way_agree(sql, shop_db)

    def test_join_with_filter(self, shop_db):
        assert_three_way_agree(
            "SELECT p.name, s.quantity FROM products AS p "
            "JOIN sales AS s ON s.product_id = p.id WHERE p.price > 1",
            shop_db,
        )
        assert_three_way_agree(
            "SELECT p.name, s.quantity FROM products AS p "
            "LEFT JOIN sales AS s ON s.product_id = p.id",
            shop_db,
        )


# ----------------------------------------------------------------------
# Batch cache, explain annotations, counters, toggle.
class TestVectorMachinery:
    def test_column_batch_cached_until_mutation(self, shop_db):
        table = shop_db.table("products")
        original_len = len(table.rows)
        first = vec.column_batch(table)
        names_before = list(first.column(1))
        assert vec.column_batch(table) is first
        table.append((9, "new", "tools", 3.0))
        second = vec.column_batch(table)
        assert second is not first
        assert len(second.rows) == original_len + 1
        assert second.column(1) == names_before + ["new"]

    def test_explain_annotates_vectorized_nodes(self, shop_db):
        plan = compile_query(
            parse_sql("SELECT name FROM products WHERE price > 5"),
            shop_db.schema,
            shop_db,
            optimize=True,
            vectorize=True,
        )
        text = plan.explain(shop_db)
        assert "vectorized=yes" in text
        assert "-- plan (optimized)" in text

    def test_fallback_annotated_and_counted(self, shop_db):
        # arithmetic inside the aggregate is outside the safe kernel subset
        before = vec.FALLBACKS.value
        plan = compile_query(
            parse_sql(
                "SELECT category, SUM(price * 2) FROM products "
                "GROUP BY category"
            ),
            shop_db.schema,
            shop_db,
            optimize=True,
            vectorize=True,
        )
        assert "vectorized=no" in plan.explain(shop_db)
        assert vec.FALLBACKS.value > before

    def test_batches_counter_ticks(self, shop_db):
        before = vec.BATCHES.value
        plan = compile_query(
            parse_sql("SELECT name FROM products WHERE price > 5"),
            shop_db.schema,
            shop_db,
            optimize=True,
            vectorize=True,
        )
        plan.run(shop_db)
        assert vec.BATCHES.value > before

    def test_toggle_keys_plan_cache(self, shop_db):
        query = parse_sql("SELECT name FROM products WHERE price > 5")
        clear_plan_caches()
        previous = vec.set_vector_enabled(True)
        try:
            on_plan = plan_for(query, shop_db.schema, shop_db)
            vec.set_vector_enabled(False)
            off_plan = plan_for(query, shop_db.schema, shop_db)
            assert on_plan is not off_plan
            assert on_plan.vectorized and not off_plan.vectorized
            assert "vectorized" not in off_plan.explain(shop_db)
            assert off_plan.run(shop_db).rows == on_plan.run(shop_db).rows
        finally:
            vec.set_vector_enabled(previous)
            clear_plan_caches()
