"""Docs/CLI consistency gate — see ``benchmarks/check_docs.py``.

Every ``python -m repro <subcommand>`` the docs mention must exist, and
every subcommand the CLI dispatches must appear in README.md.  Running
the checker as a test keeps stale CLI examples out of the docs without a
separate CI wiring step.
"""

import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(__file__)), "benchmarks"),
)

import check_docs


def test_subcommand_extraction_is_nonempty():
    subs = check_docs.dispatched_subcommands()
    # the dispatch chain in __main__.py; a regression here means the
    # extraction regex broke, not that the CLI lost all subcommands
    assert {"lint", "vis-lint", "explain", "trace", "eval", "cache",
            "chaos"} <= subs


def test_docs_name_only_real_subcommands_and_readme_names_all():
    violations = check_docs.check()
    assert not violations, "\n".join(violations)
