"""PLM- and LLM-stage parser tests: pretraining transfer and prompting."""

import pytest

from repro.metrics import evaluate_parser
from repro.parsers.base import ParseRequest
from repro.parsers.llm import (
    ChainOfThoughtLLMParser,
    FewShotLLMParser,
    MultiStageLLMParser,
    SelfConsistencyLLMParser,
    ZeroShotLLMParser,
)
from repro.parsers.plm import PLMParser, make_pretraining_corpus


class TestPLM:
    def test_pretraining_corpus_shape(self):
        examples, databases = make_pretraining_corpus(size=60, seed=1)
        assert len(examples) == 60
        assert len(databases) == 10
        assert all(e.db_id in databases for e in examples)

    def test_pretraining_corpus_deterministic(self):
        a, _ = make_pretraining_corpus(size=20, seed=3)
        b, _ = make_pretraining_corpus(size=20, seed=3)
        assert [e.sql for e in a] == [e.sql for e in b]

    def test_pretraining_transfer_on_small_data(self, tiny_spider):
        """The survey's PLM claim: pretraining helps most on small data."""
        small_train = tiny_spider.split("train").examples[:30]

        from repro.parsers.neural import GrammarNeuralParser

        scratch = GrammarNeuralParser(epochs=30)
        scratch.train(small_train, tiny_spider.databases)
        pretrained = PLMParser(epochs=30, pretrain_size=600)
        pretrained.train(small_train, tiny_spider.databases)

        scratch_report = evaluate_parser(scratch, tiny_spider)
        plm_report = evaluate_parser(pretrained, tiny_spider)
        assert plm_report.accuracy("execution_match") > scratch_report.accuracy(
            "execution_match"
        )

    def test_pretrain_flag_off_skips_pretraining(self, tiny_spider):
        parser = PLMParser(pretrain=False, epochs=10)
        parser.train(
            tiny_spider.split("train").examples[:20], tiny_spider.databases
        )
        assert not parser._pretrained


class TestLLMStrategies:
    @pytest.fixture(scope="class")
    def dev_example(self, tiny_spider):
        example = tiny_spider.split("dev").examples[0]
        db = tiny_spider.database(example.db_id)
        return example, db

    def test_zero_shot_produces_query(self, dev_example):
        example, db = dev_example
        result = ZeroShotLLMParser().parse(
            ParseRequest(question=example.question, schema=db.schema, db=db)
        )
        assert result.query is not None

    def test_deterministic_at_temperature_zero(self, dev_example):
        example, db = dev_example
        request = ParseRequest(
            question=example.question, schema=db.schema, db=db
        )
        a = ZeroShotLLMParser(seed=3).parse(request)
        b = ZeroShotLLMParser(seed=3).parse(request)
        assert a.query == b.query

    def test_clear_prompting_improves_accuracy(self, tiny_spider):
        plain = evaluate_parser(
            ZeroShotLLMParser(clear_prompting=False), tiny_spider
        )
        clear = evaluate_parser(ZeroShotLLMParser(), tiny_spider)
        assert clear.accuracy("execution_match") > plain.accuracy(
            "execution_match"
        )

    def test_few_shot_beats_zero_shot(self, tiny_spider):
        zero = evaluate_parser(ZeroShotLLMParser(), tiny_spider)
        few = FewShotLLMParser()
        few.train(tiny_spider.split("train").examples, tiny_spider.databases)
        few_report = evaluate_parser(few, tiny_spider)
        assert few_report.accuracy("execution_match") >= zero.accuracy(
            "execution_match"
        )

    def test_demo_selection_strategies_run(self, tiny_spider):
        for selection in ("random", "similar", "diverse"):
            parser = FewShotLLMParser(selection=selection, num_demos=3)
            parser.train(
                tiny_spider.split("train").examples[:40],
                tiny_spider.databases,
            )
            report = evaluate_parser(parser, tiny_spider, limit=10)
            assert report.total == 10

    def test_self_consistency_at_least_single_sample(self, tiny_spider):
        single = FewShotLLMParser(model="palm-like")
        single.train(
            tiny_spider.split("train").examples, tiny_spider.databases
        )
        voted = SelfConsistencyLLMParser(model="palm-like", samples=5)
        voted.train(
            tiny_spider.split("train").examples, tiny_spider.databases
        )
        single_report = evaluate_parser(single, tiny_spider)
        voted_report = evaluate_parser(voted, tiny_spider)
        assert voted_report.accuracy("execution_match") >= (
            single_report.accuracy("execution_match") - 0.05
        )

    def test_multi_stage_self_correction_counts_calls(self, dev_example):
        example, db = dev_example
        parser = MultiStageLLMParser(model="small-llm", max_repairs=2)
        parser.parse(
            ParseRequest(question=example.question, schema=db.schema, db=db)
        )
        assert parser.llm.calls >= 1

    def test_weak_model_worse_than_strong(self, tiny_spider):
        weak = evaluate_parser(
            ZeroShotLLMParser(model="small-llm"), tiny_spider
        )
        strong = evaluate_parser(
            ZeroShotLLMParser(model="palm-like"), tiny_spider
        )
        assert strong.accuracy("execution_match") > weak.accuracy(
            "execution_match"
        )

    def test_cot_parser_runs(self, tiny_spider):
        parser = ChainOfThoughtLLMParser()
        parser.train(
            tiny_spider.split("train").examples, tiny_spider.databases
        )
        report = evaluate_parser(parser, tiny_spider, limit=15)
        assert report.total == 15
        assert report.accuracy("execution_match") > 0.5
