"""Normalizer tests: canonicalization erases surface variation only."""

import pytest

from repro.sql.normalize import normalize_sql


class TestErasedVariation:
    def test_keyword_case(self):
        assert normalize_sql("select A from T") == normalize_sql(
            "SELECT a FROM t"
        )

    def test_identifier_case(self):
        assert normalize_sql("SELECT Name FROM Products") == (
            "SELECT name FROM products"
        )

    def test_single_table_alias_dropped(self):
        assert normalize_sql("SELECT p.name FROM products p") == (
            "SELECT name FROM products"
        )

    def test_join_aliases_renamed_positionally(self):
        a = normalize_sql(
            "SELECT s.quantity FROM sales s JOIN products p "
            "ON s.product_id = p.id"
        )
        b = normalize_sql(
            "SELECT x.quantity FROM sales x JOIN products y "
            "ON x.product_id = y.id"
        )
        assert a == b
        assert "t1" in a and "t2" in a

    def test_projection_alias_dropped(self):
        assert normalize_sql("SELECT COUNT(*) AS n FROM t") == (
            "SELECT COUNT(*) FROM t"
        )

    def test_literal_moves_right_on_commutative_ops(self):
        assert normalize_sql("SELECT a FROM t WHERE 5 = a") == (
            normalize_sql("SELECT a FROM t WHERE a = 5")
        )

    def test_whitespace_collapsed(self):
        assert normalize_sql("SELECT   a\nFROM   t") == "SELECT a FROM t"


class TestPreservedSemantics:
    def test_condition_order_not_normalized(self):
        # exact string match famously cannot see through conjunct reordering
        a = normalize_sql("SELECT a FROM t WHERE x = 1 AND y = 2")
        b = normalize_sql("SELECT a FROM t WHERE y = 2 AND x = 1")
        assert a != b

    def test_distinct_preserved(self):
        assert "DISTINCT" in normalize_sql("SELECT DISTINCT a FROM t")

    def test_correlated_outer_qualifier_kept(self):
        sql = (
            "SELECT name FROM products p WHERE EXISTS "
            "(SELECT * FROM sales s WHERE s.product_id = p.id)"
        )
        normalized = normalize_sql(sql)
        # the inner single-table select must keep the correlated reference
        # to the outer table distinguishable
        assert normalized.count("products") >= 1
        assert "product_id = " in normalized

    def test_idempotent(self):
        queries = [
            "SELECT a FROM t WHERE a > 5 ORDER BY a DESC LIMIT 3",
            "SELECT p.a FROM t p JOIN u q ON p.i = q.i",
            "SELECT a FROM t UNION SELECT b FROM u",
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) >= 2",
        ]
        for sql in queries:
            once = normalize_sql(sql)
            assert normalize_sql(once) == once

    def test_set_operation_normalized_per_branch(self):
        out = normalize_sql(
            "SELECT A FROM T WHERE X = 1 UNION SELECT a FROM t WHERE x = 2"
        )
        assert out == (
            "SELECT a FROM t WHERE x = 1 UNION SELECT a FROM t WHERE x = 2"
        )
