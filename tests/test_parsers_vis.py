"""Text-to-Vis parser family tests."""

import pytest

from repro.metrics import evaluate_parser
from repro.parsers.base import ParseRequest
from repro.parsers.vis import (
    Chat2VisParser,
    DataToneVisParser,
    NL2InterfaceParser,
    NcNetParser,
    RGVisNetParser,
    Seq2VisParser,
)
from repro.parsers.vis.base import detect_chart_type
from repro.vis.vql import parse_vql


class TestChartTypeDetection:
    @pytest.mark.parametrize(
        "question,expected",
        [
            ("Show a bar chart of sales?", "bar"),
            ("Draw a pie graph of counts?", "pie"),
            ("Plot a line chart of revenue?", "line"),
            ("Display a scatter plot of x and y?", "scatter"),
            ("Show the proportion breakdown of orders?", "pie"),
            ("Show something with no cue?", "bar"),
        ],
    )
    def test_detection(self, question, expected):
        assert detect_chart_type(question) == expected


class TestTemplateVisParser:
    def test_in_template_bar(self, sales_db):
        vql = DataToneVisParser().parse_vis(
            ParseRequest(
                question="Show a bar chart of the number of products "
                "per category?",
                schema=sales_db.schema,
                db=sales_db,
            )
        )
        assert vql is not None
        parsed = parse_vql(vql)
        assert parsed.chart_type == "bar"
        assert "GROUP BY" in vql

    def test_scatter_template(self, sales_db):
        vql = DataToneVisParser().parse_vis(
            ParseRequest(
                question="Show a scatter plot of price and stock of "
                "products?",
                schema=sales_db.schema,
                db=sales_db,
            )
        )
        assert vql is not None and "SCATTER" in vql

    def test_fails_without_exact_names(self, sales_db):
        vql = DataToneVisParser().parse_vis(
            ParseRequest(
                question="Show a bar chart of how many goods per kind?",
                schema=sales_db.schema,
                db=sales_db,
            )
        )
        assert vql is None

    def test_depluralization_strips_one_s_only(self):
        # rstrip("s") would reduce "boss" to "bo" and match this question
        from repro.data.schema import Column, ColumnType, Schema, TableSchema

        schema = Schema(
            db_id="office",
            tables=(
                TableSchema(
                    "boss",
                    (Column("rank", ColumnType.TEXT),),
                ),
            ),
        )
        vql = DataToneVisParser().parse_vis(
            ParseRequest(
                question="Show a bar chart of bo things per rank?",
                schema=schema,
            )
        )
        assert vql is None


class TestNeuralVisParsers:
    @pytest.fixture(scope="class")
    def trained(self, tiny_nvbench):
        train = tiny_nvbench.split("train").examples
        seq2vis = Seq2VisParser()
        seq2vis.train(train, tiny_nvbench.databases)
        ncnet = NcNetParser()
        ncnet.train(train, tiny_nvbench.databases)
        rgvisnet = RGVisNetParser()
        rgvisnet.train(train, tiny_nvbench.databases)
        return seq2vis, ncnet, rgvisnet

    def test_family_ordering_on_nvbench(self, trained, tiny_nvbench):
        seq2vis, ncnet, rgvisnet = trained
        scores = [
            evaluate_parser(p, tiny_nvbench).accuracy("exact_match")
            for p in (seq2vis, ncnet, rgvisnet)
        ]
        assert scores[0] < scores[1]  # seq2vis << ncnet
        assert scores[1] <= scores[2] + 0.05  # rgvisnet >= ncnet (roughly)

    def test_untrained_returns_none(self, tiny_nvbench):
        example = tiny_nvbench.split("dev").examples[0]
        db = tiny_nvbench.database(example.db_id)
        request = ParseRequest(
            question=example.question, schema=db.schema, db=db
        )
        assert Seq2VisParser().parse_vis(request) is None

    def test_predictions_are_parseable_vql(self, trained, tiny_nvbench):
        _, ncnet, _ = trained
        for example in tiny_nvbench.split("dev").examples[:10]:
            db = tiny_nvbench.database(example.db_id)
            vql = ncnet.parse_vis(
                ParseRequest(
                    question=example.question, schema=db.schema, db=db
                )
            )
            if vql is not None:
                parse_vql(vql)

    def test_rgvisnet_codebase_populated(self, trained):
        *_, rgvisnet = trained
        assert rgvisnet.codebase


class TestLLMVisParsers:
    def test_chat2vis_answers(self, tiny_nvbench):
        parser = Chat2VisParser()
        report = evaluate_parser(parser, tiny_nvbench, limit=20)
        assert report.accuracy("exact_match") > 0.4

    def test_nl2interface_uses_demos(self, tiny_nvbench):
        parser = NL2InterfaceParser()
        parser.train(
            tiny_nvbench.split("train").examples, tiny_nvbench.databases
        )
        assert parser.pool
        report = evaluate_parser(parser, tiny_nvbench, limit=20)
        assert report.accuracy("exact_match") > 0.4
