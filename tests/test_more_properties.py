"""Additional property-based tests: VQL, linker, metrics, reports."""

import random

from hypothesis import given, settings, strategies as st

from repro.data.domains import all_domains
from repro.metrics import bleu
from repro.parsers.linker import SchemaLinker
from repro.vis.vql import CHART_TYPES, VQLQuery, parse_vql, to_vql

_SQL_BODIES = st.sampled_from(
    [
        "SELECT a, COUNT(*) FROM t GROUP BY a",
        "SELECT x, y FROM t WHERE x > 3",
        "SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 2",
        "SELECT name, price FROM products ORDER BY price DESC LIMIT 5",
        "SELECT d, COUNT(*) FROM t GROUP BY d",
    ]
)


@settings(max_examples=60, deadline=None)
@given(
    chart=st.sampled_from(CHART_TYPES),
    sql=_SQL_BODIES,
    bin_unit=st.sampled_from([None, "year", "quarter", "month", "weekday"]),
)
def test_vql_round_trip(chart, sql, bin_unit):
    from repro.sql.parser import parse_sql

    vql = VQLQuery(
        chart_type=chart,
        query=parse_sql(sql),
        bin_column="d" if bin_unit else None,
        bin_unit=bin_unit,
    )
    rendered = to_vql(vql)
    assert parse_vql(rendered) == vql
    # canonical text is a fixed point
    assert to_vql(parse_vql(rendered)) == rendered


@settings(max_examples=40, deadline=None)
@given(
    domain_index=st.integers(0, 9),
    words=st.lists(
        st.sampled_from(
            ["show", "the", "of", "all", "whose", "is", "and", "zebra"]
        ),
        min_size=0,
        max_size=6,
    ),
)
def test_linker_mentions_never_overlap(domain_index, words):
    domain = all_domains()[domain_index]
    linker = SchemaLinker(domain.schema)
    table = domain.schema.tables[0]
    question = " ".join(
        words + [table.mentions()[0], table.columns[-1].mentions()[0]]
    )
    mentions = linker.link(question)
    # spans are disjoint and ordered
    for first, second in zip(mentions, mentions[1:]):
        assert first.end <= second.start
    # every linked element exists in the schema
    for mention in mentions:
        schema_table = domain.schema.table(mention.table)
        if mention.kind == "column":
            assert schema_table.has_column(mention.column)


@settings(max_examples=60, deadline=None)
@given(
    tokens=st.lists(
        st.sampled_from(["select", "a", "from", "t", "where", "x", "1"]),
        min_size=1,
        max_size=12,
    )
)
def test_bleu_bounds_and_identity(tokens):
    text = " ".join(tokens)
    assert 0.0 <= bleu(text, "select a from t") <= 1.0
    assert bleu(tokens, tokens) >= 0.5  # self-similarity is high


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), accuracy=st.floats(0.1, 0.9))
def test_bootstrap_ci_contains_point_estimate(seed, accuracy):
    from repro.metrics.report import EvaluationReport

    rng = random.Random(seed)
    hits = [rng.random() < accuracy for _ in range(60)]
    report = EvaluationReport(
        parser_name="p", dataset_name="d", split="dev", total=len(hits)
    )
    report.metric_hits["execution_match"] = sum(hits)
    report.example_hits["execution_match"] = hits
    lower, upper = report.confidence_interval("execution_match", seed=seed)
    point = sum(hits) / len(hits)
    assert 0.0 <= lower <= point <= upper <= 1.0


def test_ci_empty_report():
    from repro.metrics.report import EvaluationReport

    report = EvaluationReport(parser_name="p", dataset_name="d", split="dev")
    assert report.confidence_interval("execution_match") == (0.0, 0.0)


@settings(max_examples=30, deadline=None)
@given(
    question=st.text(
        alphabet="abcdefghij ?'", min_size=0, max_size=40
    )
)
def test_semantic_parser_never_crashes(question):
    """The parser returns a result (possibly a failure) for any input."""
    from repro.data.domains import domain_by_name
    from repro.parsers.base import ParseRequest
    from repro.parsers.semantic import GrammarSemanticParser

    schema = domain_by_name("sales").schema
    parser = GrammarSemanticParser()
    result = parser.parse(ParseRequest(question=question, schema=schema))
    assert result is not None
