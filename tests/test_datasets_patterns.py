"""Pattern grammar tests: every pattern yields valid, executable gold."""

import random

import pytest

from repro.data.domains import all_domains, domain_by_name
from repro.data.generator import DatabaseGenerator
from repro.datasets.patterns import (
    ALL_PATTERNS,
    CHARTABLE_PATTERNS,
    SIMPLE_PATTERNS,
    PatternContext,
    sample_instance,
)
from repro.sql.analyzer import analyze
from repro.sql.executor import execute
from repro.sql.parser import parse_sql


@pytest.fixture(scope="module")
def contexts():
    rng = random.Random(0)
    generator = DatabaseGenerator(seed=1)
    out = []
    for domain in all_domains():
        db = generator.populate(domain, rows_per_table=20)
        out.append(PatternContext(domain, db, rng))
    return out


def _instances(ctx, pattern_fn, attempts=30):
    found = []
    for _ in range(attempts):
        instance = pattern_fn(ctx)
        if instance is not None:
            found.append(instance)
    return found


@pytest.mark.parametrize("pattern_fn,weight", ALL_PATTERNS)
def test_pattern_produces_valid_gold(contexts, pattern_fn, weight):
    """Every pattern parses, validates, and executes on some domain."""
    produced = 0
    for ctx in contexts:
        for instance in _instances(ctx, pattern_fn, attempts=10):
            produced += 1
            query = parse_sql(instance.sql)
            analyze(query, ctx.schema)
            execute(query, ctx.db)
            assert instance.question.endswith("?")
            assert instance.question[0].isupper()
    assert produced > 0, f"{pattern_fn.__name__} never instantiated"


def test_sample_instance_uses_weights(contexts):
    rng_ctx = contexts[0]
    names = {
        sample_instance(rng_ctx, ALL_PATTERNS).pattern for _ in range(150)
    }
    assert len(names) >= 6  # healthy pattern diversity


def test_simple_patterns_are_single_table(contexts):
    for ctx in contexts[:3]:
        for _ in range(30):
            instance = sample_instance(ctx, SIMPLE_PATTERNS)
            assert "JOIN" not in instance.sql
            assert "GROUP BY" not in instance.sql


def test_chartable_patterns_have_chart_hint(contexts):
    for ctx in contexts[:3]:
        for _ in range(20):
            instance = sample_instance(ctx, CHARTABLE_PATTERNS)
            assert instance.chart in ("bar", "pie", "line", "scatter")


def test_hardness_property_matches_classifier(contexts):
    from repro.sql.components import classify_hardness

    ctx = contexts[0]
    for _ in range(30):
        instance = sample_instance(ctx, ALL_PATTERNS)
        assert instance.hardness == classify_hardness(
            parse_sql(instance.sql)
        )


def test_values_in_conditions_come_from_database(contexts):
    """Equality conditions should usually be satisfiable (non-empty)."""
    ctx = contexts[0]
    non_empty = 0
    total = 0
    for _ in range(40):
        instance = sample_instance(ctx, ALL_PATTERNS)
        result = execute(parse_sql(instance.sql), ctx.db)
        total += 1
        if result.rows:
            non_empty += 1
    assert non_empty / total > 0.6
