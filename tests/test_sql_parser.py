"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    Exists,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    Like,
    Literal,
    ScalarSubquery,
    Select,
    SetOperation,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.parser import parse_sql


class TestProjection:
    def test_select_star(self):
        query = parse_sql("SELECT * FROM t")
        assert isinstance(query.items[0].expr, Star)
        assert query.from_ == TableRef(name="t")

    def test_qualified_star(self):
        query = parse_sql("SELECT t.* FROM t")
        assert query.items[0].expr == Star(table="t")

    def test_multiple_columns(self):
        query = parse_sql("SELECT a, b, c FROM t")
        assert [i.expr.column for i in query.items] == ["a", "b", "c"]

    def test_alias_with_as(self):
        query = parse_sql("SELECT a AS x FROM t")
        assert query.items[0].alias == "x"

    def test_alias_without_as(self):
        query = parse_sql("SELECT a x FROM t")
        assert query.items[0].alias == "x"

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct
        assert not parse_sql("SELECT ALL a FROM t").distinct

    def test_select_without_from(self):
        query = parse_sql("SELECT 1 + 1")
        assert query.from_ is None
        assert query.items[0].expr == BinaryOp("+", Literal(1), Literal(1))


class TestAggregatesAndFunctions:
    def test_count_star(self):
        query = parse_sql("SELECT COUNT(*) FROM t")
        expr = query.items[0].expr
        assert expr == FuncCall(name="count", args=(Star(),))

    def test_count_distinct(self):
        expr = parse_sql("SELECT COUNT(DISTINCT a) FROM t").items[0].expr
        assert expr.distinct and expr.args == (ColumnRef("a"),)

    def test_avg(self):
        expr = parse_sql("SELECT AVG(price) FROM t").items[0].expr
        assert expr.name == "avg" and expr.is_aggregate

    def test_non_keyword_function(self):
        expr = parse_sql("SELECT upper(name) FROM t").items[0].expr
        assert expr == FuncCall(name="upper", args=(ColumnRef("name"),))


class TestWhere:
    def test_comparison(self):
        where = parse_sql("SELECT a FROM t WHERE a > 5").where
        assert where == BinaryOp(">", ColumnRef("a"), Literal(5))

    def test_and_or_precedence(self):
        where = parse_sql("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").where
        # AND binds tighter: a=1 OR (b=2 AND c=3)
        assert where.op == "or"
        assert where.right.op == "and"

    def test_not(self):
        where = parse_sql("SELECT a FROM t WHERE NOT a = 1").where
        assert isinstance(where, UnaryOp) and where.op == "not"

    def test_in_list(self):
        where = parse_sql("SELECT a FROM t WHERE a IN (1, 2, 3)").where
        assert where == InList(
            expr=ColumnRef("a"),
            items=(Literal(1), Literal(2), Literal(3)),
        )

    def test_not_in(self):
        where = parse_sql("SELECT a FROM t WHERE a NOT IN (1)").where
        assert where.negated

    def test_in_subquery(self):
        where = parse_sql(
            "SELECT a FROM t WHERE a IN (SELECT b FROM u)"
        ).where
        assert isinstance(where, InSubquery)
        assert isinstance(where.query, Select)

    def test_like(self):
        where = parse_sql("SELECT a FROM t WHERE a LIKE '%x%'").where
        assert where == Like(expr=ColumnRef("a"), pattern=Literal("%x%"))

    def test_not_like(self):
        assert parse_sql("SELECT a FROM t WHERE a NOT LIKE 'x'").where.negated

    def test_between(self):
        where = parse_sql("SELECT a FROM t WHERE a BETWEEN 1 AND 5").where
        assert where == Between(
            expr=ColumnRef("a"), low=Literal(1), high=Literal(5)
        )

    def test_is_null_and_not_null(self):
        assert parse_sql("SELECT a FROM t WHERE a IS NULL").where == IsNull(
            expr=ColumnRef("a")
        )
        assert parse_sql("SELECT a FROM t WHERE a IS NOT NULL").where.negated

    def test_exists(self):
        where = parse_sql(
            "SELECT a FROM t WHERE EXISTS (SELECT * FROM u)"
        ).where
        assert isinstance(where, Exists)

    def test_scalar_subquery_comparison(self):
        where = parse_sql(
            "SELECT a FROM t WHERE a > (SELECT AVG(a) FROM t)"
        ).where
        assert isinstance(where.right, ScalarSubquery)

    def test_arithmetic_precedence(self):
        expr = parse_sql("SELECT 1 + 2 * 3").items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized_arithmetic(self):
        expr = parse_sql("SELECT (1 + 2) * 3").items[0].expr
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus_folds_literal(self):
        assert parse_sql("SELECT -5").items[0].expr == Literal(-5)


class TestJoins:
    def test_inner_join_on(self):
        query = parse_sql(
            "SELECT a FROM t JOIN u ON t.id = u.tid"
        )
        join = query.from_
        assert isinstance(join, Join) and join.kind == "inner"
        assert join.condition is not None

    def test_left_join(self):
        join = parse_sql("SELECT a FROM t LEFT JOIN u ON t.i = u.i").from_
        assert join.kind == "left"

    def test_left_outer_join(self):
        join = parse_sql(
            "SELECT a FROM t LEFT OUTER JOIN u ON t.i = u.i"
        ).from_
        assert join.kind == "left"

    def test_comma_join(self):
        join = parse_sql("SELECT a FROM t, u").from_
        assert isinstance(join, Join) and join.condition is None

    def test_table_alias(self):
        query = parse_sql("SELECT p.a FROM products AS p")
        assert query.from_ == TableRef(name="products", alias="p")

    def test_chained_joins(self):
        query = parse_sql(
            "SELECT a FROM t JOIN u ON t.i = u.i JOIN v ON u.j = v.j"
        )
        outer = query.from_
        assert outer.right.name == "v"
        assert outer.left.right.name == "u"


class TestClauses:
    def test_group_by_having(self):
        query = parse_sql(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert query.group_by == (ColumnRef("a"),)
        assert query.having is not None

    def test_order_by_directions(self):
        query = parse_sql("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in query.order_by] == [True, False, False]

    def test_limit(self):
        assert parse_sql("SELECT a FROM t LIMIT 5").limit == 5

    def test_trailing_semicolon(self):
        assert parse_sql("SELECT a FROM t;").limit is None


class TestSetOperations:
    def test_union(self):
        query = parse_sql("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(query, SetOperation) and query.op == "union"

    def test_union_all(self):
        query = parse_sql("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert query.op == "union all"

    def test_intersect_except(self):
        assert parse_sql("SELECT a FROM t INTERSECT SELECT a FROM u").op == (
            "intersect"
        )
        assert parse_sql("SELECT a FROM t EXCEPT SELECT a FROM u").op == (
            "except"
        )

    def test_left_associative_chain(self):
        query = parse_sql(
            "SELECT a FROM t UNION SELECT a FROM u EXCEPT SELECT a FROM v"
        )
        assert query.op == "except"
        assert query.left.op == "union"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP a",
            "SELECT a FROM t LIMIT x",
            "SELECT a FROM t ORDER a",
            "SELECT a FROM t WHERE a NOT 5",
            "SELECT a FROM t trailing junk (",
            "FROM t SELECT a",
        ],
    )
    def test_malformed_queries_raise(self, bad):
        with pytest.raises(ParseError):
            parse_sql(bad)

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t LIMIT 'five'")
