"""NLG channel tests: realizer, translation, perturbations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.domains import domain_by_name
from repro.nlg.lexicon import AGG_PHRASES, OP_PHRASES
from repro.nlg.perturb import (
    OUT_OF_SCHEMA_SYNONYMS,
    drop_column_mentions,
    substitute_synonyms,
    typo_perturb,
)
from repro.nlg.realizer import Realizer
from repro.nlg.translate import SUPPORTED_LANGUAGES, reverse_translate, translate


@pytest.fixture
def realizer():
    return Realizer(random.Random(0))


class TestRealizer:
    def test_question_capitalized_and_terminated(self, realizer):
        question = realizer.list_question("the name of products")
        assert question[0].isupper()
        assert question.endswith("?")

    def test_condition_uses_op_lexicon(self, realizer):
        text = realizer.condition("price", ">", 10)
        assert "price" in text and "10" in text
        assert any(
            phrase in text for phrase in OP_PHRASES[">"]
        )

    def test_agg_np_count_has_no_column(self, realizer):
        text = realizer.agg_np("count", "", "orders")
        assert "orders" in text

    def test_agg_np_formats_column(self, realizer):
        text = realizer.agg_np("avg", "price", "products")
        assert "price" in text and "products" in text

    def test_value_text_formats(self, realizer):
        assert realizer.value_text(10.0) == "10"
        assert realizer.value_text(2.5) == "2.5"
        assert realizer.value_text("abc") == "abc"

    def test_followup_lowercases_and_prefixes(self, realizer):
        out = realizer.followup("Show their names?")
        assert out.endswith("?")
        assert "show their names" in out.lower()

    def test_deterministic_given_seed(self):
        a = Realizer(random.Random(42)).list_question("x of y")
        b = Realizer(random.Random(42)).list_question("x of y")
        assert a == b

    def test_table_noun_sometimes_synonym(self):
        table = domain_by_name("sales").schema.table("orders")
        rng = random.Random(0)
        realizer = Realizer(rng, synonym_prob=1.0)
        noun = realizer.table_noun(table)
        assert noun in table.mentions()[1:]

    def test_projection_np_joins_columns(self, realizer):
        text = realizer.projection_np(["name", "price"], "products")
        assert "name" in text and "price" in text and " and " in text


class TestTranslate:
    def test_supported_languages(self):
        assert set(SUPPORTED_LANGUAGES) == {"en", "pt", "ru", "vi", "zh"}

    def test_english_passthrough(self):
        assert translate("Show the name?", "en") == "Show the name?"

    def test_unknown_language_raises(self):
        with pytest.raises(KeyError):
            translate("x", "fr")

    @pytest.mark.parametrize("language", ["zh", "vi", "pt"])
    def test_translation_changes_function_words(self, language):
        question = "Show the name of products whose price is greater than 5?"
        translated = translate(question, language)
        assert translated != question
        # schema words survive untouched (code-switching)
        assert "products" in translated
        assert "price" in translated

    @pytest.mark.parametrize("language", ["zh", "vi", "pt"])
    def test_reverse_translation_restores_cues(self, language):
        question = "Show the name of products whose price is greater than 5?"
        reversed_ = reverse_translate(translate(question, language), language)
        lowered = reversed_.lower()
        assert "products" in lowered
        assert "greater" in lowered or "is" in lowered

    def test_reverse_translate_word_boundaries(self):
        # "o" must not be replaced inside Portuguese content words
        out = reverse_translate("mostre o nome dos products?", "pt")
        assert "products" in out


class TestPerturbations:
    def test_synonym_substitution_changes_mentions(self):
        schema = domain_by_name("sales").schema
        rng = random.Random(0)
        question = "Show the name of products whose price is above 5?"
        out = substitute_synonyms(question, schema, rng)
        assert out != question
        assert "price" not in out.lower()

    def test_synonym_substitution_prefers_out_of_schema(self):
        schema = domain_by_name("sales").schema
        rng = random.Random(1)
        out = substitute_synonyms(
            "What is the average price of products?", schema, rng
        )
        replaced = out.lower()
        assert any(
            syn in replaced for syn in OUT_OF_SCHEMA_SYNONYMS["price"]
        )

    def test_drop_column_mentions(self):
        schema = domain_by_name("sales").schema
        out = drop_column_mentions(
            "Show the name of products whose price is above 5?", schema
        )
        assert "price" not in out.lower()
        assert "value" in out.lower()

    def test_typos_only_touch_safe_words(self):
        rng = random.Random(0)
        question = "Show the name of products whose price is above 5?"
        out = typo_perturb(question, rng, rate=1.0)
        # schema-ish words survive
        assert "products" in out
        assert "price" in out
        assert out != question

    def test_typo_rate_zero_is_identity(self):
        rng = random.Random(0)
        question = "Show the name of products?"
        assert typo_perturb(question, rng, rate=0.0) == question

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_typo_output_same_word_count(self, seed):
        rng = random.Random(seed)
        question = "Show the average number of things sorted by size?"
        out = typo_perturb(question, rng, rate=0.5)
        assert len(out.split()) == len(question.split())


class TestLexicons:
    def test_agg_phrases_cover_all_aggregates(self):
        assert set(AGG_PHRASES) == {"count", "sum", "avg", "min", "max"}

    def test_op_phrases_cover_all_operators(self):
        assert set(OP_PHRASES) == {"=", "<>", ">", "<", ">=", "<="}
