"""Spider-format dataset IO, error analysis, CLI, and Vis dialogue tests."""

import json

import pytest

from repro.datasets import build_dataset
from repro.datasets.io import (
    load_dataset,
    save_dataset,
    schema_to_spider,
    spider_to_schema,
)
from repro.metrics import evaluate_parser
from repro.metrics.analysis import categorize_error, error_profile
from repro.parsers.rule import KeywordRuleParser
from repro.parsers.semantic import GrammarSemanticParser


class TestSpiderFormatIO:
    def test_schema_round_trip(self, shop_schema):
        entry = schema_to_spider(shop_schema)
        rebuilt = spider_to_schema(entry)
        assert rebuilt.table_names() == shop_schema.table_names()
        assert rebuilt.table("products").primary_key == "id"
        assert len(rebuilt.foreign_keys) == 1
        fk = rebuilt.foreign_keys[0]
        assert (fk.table, fk.column) == ("sales", "product_id")
        rebuilt.validate()

    def test_spider_column_convention(self, shop_schema):
        entry = schema_to_spider(shop_schema)
        assert entry["column_names_original"][0] == [-1, "*"]
        assert entry["column_types"][0] == "text"
        # indexes in FK pairs point into the flat column list
        src, dst = entry["foreign_keys"][0]
        assert entry["column_names_original"][src][1] == "product_id"
        assert entry["column_names_original"][dst][1] == "id"

    def test_dataset_round_trip(self, tmp_path):
        original = build_dataset("geoquery_like", scale=0.02, seed=4)
        save_dataset(original, tmp_path)
        assert (tmp_path / "tables.json").exists()
        assert (tmp_path / "train.json").exists()
        loaded = load_dataset(tmp_path)
        assert loaded.name == original.name
        assert len(loaded.examples) == len(original.examples)
        assert [e.sql for e in loaded.examples] == [
            e.sql for e in original.examples
        ]
        # contents survive: evaluation is identical
        before = evaluate_parser(
            GrammarSemanticParser(), original
        ).accuracy("execution_match")
        after = evaluate_parser(GrammarSemanticParser(), loaded).accuracy(
            "execution_match"
        )
        assert before == after

    def test_bird_fields_use_evidence_key(self, tmp_path):
        ds = build_dataset("bird_like", scale=0.02, seed=4)
        save_dataset(ds, tmp_path)
        payload = json.loads((tmp_path / "train.json").read_text())
        assert all("evidence" in item for item in payload)
        loaded = load_dataset(tmp_path)
        assert all(e.knowledge for e in loaded.examples)

    def test_vis_fields_preserved(self, tmp_path):
        ds = build_dataset("nvbench_like", scale=0.02, seed=4)
        save_dataset(ds, tmp_path)
        loaded = load_dataset(tmp_path)
        assert all(e.vql for e in loaded.examples)

    def test_load_missing_meta_raises(self, tmp_path):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            load_dataset(tmp_path)


class TestErrorAnalysis:
    GOLD = "SELECT name FROM products WHERE price > 100"

    @pytest.mark.parametrize(
        "predicted,category",
        [
            (None, "parse_failure"),
            ("SELCT broken(", "invalid_sql"),
            ("SELECT name FROM customers WHERE price > 100", "wrong_table"),
            ("SELECT category FROM products WHERE price > 100",
             "wrong_projection"),
            ("SELECT name FROM products WHERE price > 200",
             "wrong_condition"),
            ("SELECT name FROM products WHERE price > 100 "
             "ORDER BY name ASC", "wrong_ordering"),
        ],
    )
    def test_categories(self, predicted, category):
        assert categorize_error(predicted, self.GOLD) == category

    def test_grouping_category(self):
        gold = "SELECT category, COUNT(*) FROM products GROUP BY category"
        wrong = "SELECT category, COUNT(*) FROM products GROUP BY name"
        assert categorize_error(wrong, gold) == "wrong_grouping"

    def test_profile_over_dataset(self, tiny_wikisql):
        profile = error_profile(KeywordRuleParser(), tiny_wikisql, limit=40)
        assert sum(profile.values()) > 0
        assert set(profile) <= set(
            ("parse_failure", "invalid_sql", "wrong_table",
             "wrong_projection", "wrong_condition", "wrong_grouping",
             "wrong_ordering", "structural", "semantic_only")
        )
        # the rule parser's dominant failure is refusing to parse
        assert profile["parse_failure"] >= max(
            count
            for category, count in profile.items()
            if category != "parse_failure"
        ) or profile["parse_failure"] > 0


class TestCLI:
    def test_demo_mode_runs(self, capsys):
        from repro.__main__ import main

        assert main(["--demo", "--domain", "sales"]) == 0
        out = capsys.readouterr().out
        assert "SQL:" in out and "VISUALIZE" in out

    def test_demo_other_domain(self, capsys):
        from repro.__main__ import main

        assert main(["--demo", "--domain", "library", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "connected to 'library'" in out


class TestVisDialogues:
    def test_chat2vis_handles_restyle_turns(self):
        from repro.parsers.vis import Chat2VisParser

        ds = build_dataset("chartdialogs_like", scale=0.2, seed=6)
        report = evaluate_parser(Chat2VisParser(), ds)
        assert report.accuracy("exact_match") > 0.6
        assert report.accuracy("vis_data") > 0.7
