"""Traditional-stage parser tests: keyword rules and grammar semantics."""

import pytest

from repro.metrics import evaluate_parser, execution_match
from repro.parsers.base import ParseRequest
from repro.parsers.rule import KeywordRuleParser
from repro.parsers.semantic import GrammarSemanticParser
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql


def ask(parser, question, db, **kwargs):
    request = ParseRequest(
        question=question, schema=db.schema, db=db, **kwargs
    )
    result = parser.parse(request)
    return to_sql(result.query) if result.query is not None else None


class TestKeywordRuleParser:
    def test_in_template_projection(self, sales_db):
        sql = ask(
            KeywordRuleParser(), "Show the price of products?", sales_db
        )
        assert sql == "SELECT price FROM products"

    def test_in_template_count(self, sales_db):
        sql = ask(KeywordRuleParser(), "How many orders?", sales_db)
        assert sql == "SELECT COUNT(*) FROM orders"

    def test_in_template_condition(self, sales_db):
        sql = ask(
            KeywordRuleParser(),
            "Show the name of products whose price is greater than 100?",
            sales_db,
        )
        assert sql == "SELECT name FROM products WHERE price > 100"

    def test_fails_on_synonym_phrasing(self, sales_db):
        assert ask(
            KeywordRuleParser(), "Show the wage of nobody?", sales_db
        ) is None

    def test_fails_on_out_of_template_op(self, sales_db):
        assert ask(
            KeywordRuleParser(),
            "Show the name of products whose price exceeds 100?",
            sales_db,
        ) is None

    def test_no_joins_ever(self, sales_db):
        sql = ask(
            KeywordRuleParser(),
            "Show the name of customers of orders?",
            sales_db,
        )
        assert sql is None or "JOIN" not in sql


class TestGrammarSemanticParser:
    @pytest.mark.parametrize(
        "question,expected",
        [
            (
                "Show the name of products?",
                "SELECT name FROM products",
            ),
            (
                "What is the average price of products?",
                "SELECT AVG(price) FROM products",
            ),
            (
                "How many orders whose quantity is greater than 3?",
                "SELECT COUNT(*) FROM orders WHERE quantity > 3",
            ),
            (
                "Tell me the number of orders for each quarter?",
                "SELECT quarter, COUNT(*) FROM orders GROUP BY quarter",
            ),
            (
                "Show the name of products with the highest price?",
                "SELECT name FROM products ORDER BY price DESC LIMIT 1",
            ),
            (
                "List the distinct category values of products?",
                "SELECT DISTINCT category FROM products",
            ),
            (
                "Show the name of products whose price is between 10 and 50?",
                "SELECT name FROM products WHERE price BETWEEN 10 AND 50",
            ),
            (
                "Show the name of products whose price is above the average?",
                "SELECT name FROM products WHERE price > "
                "(SELECT AVG(price) FROM products)",
            ),
        ],
    )
    def test_canonical_questions(self, sales_db, question, expected):
        assert ask(GrammarSemanticParser(), question, sales_db) == expected

    def test_join_via_parent_mention(self, sales_db):
        sql = ask(
            GrammarSemanticParser(),
            "Show the quantity of orders whose customers city is Springfield?",
            sales_db,
        )
        assert sql is not None and "JOIN" in sql and "customers" in sql

    def test_nested_that_have(self, sales_db):
        sql = ask(
            GrammarSemanticParser(),
            "Show the name of customers that have orders whose "
            "quantity is greater than 5?",
            sales_db,
        )
        assert sql is not None and "IN (SELECT" in sql

    def test_set_operation(self, sales_db):
        sql = ask(
            GrammarSemanticParser(),
            "Show the name of products whose category is toys "
            "but not category is food?",
            sales_db,
        )
        assert sql is not None and "EXCEPT" in sql

    def test_value_case_restored_from_db(self, sales_db):
        # the generator stores capitalized segments; the question carries
        # the surface form verbatim so the db lookup must normalize case
        city = sales_db.table("customers").column_values("city")[0]
        sql = ask(
            GrammarSemanticParser(),
            f"Show the name of customers whose city is {city.lower()}?",
            sales_db,
        )
        assert sql is not None and city in sql

    def test_language_gate(self, sales_db):
        english_only = GrammarSemanticParser(languages=("en",))
        request_zh = ParseRequest(
            question="显示 name 的 products?",
            schema=sales_db.schema,
            db=sales_db,
            language="zh",
        )
        assert english_only.parse(request_zh).query is None
        bilingual = GrammarSemanticParser(languages=("en", "zh"))
        assert bilingual.parse(request_zh).query is not None

    def test_followup_count(self, sales_db):
        parser = GrammarSemanticParser(use_history=True)
        first = parse_sql("SELECT name FROM products WHERE price > 100")
        sql = ask(
            parser,
            "How many are there?",
            sales_db,
            history=[("q1", first)],
        )
        assert sql == "SELECT COUNT(*) FROM products WHERE price > 100"

    def test_followup_add_condition(self, sales_db):
        parser = GrammarSemanticParser(use_history=True)
        first = parse_sql("SELECT name FROM products")
        sql = ask(
            parser,
            "Now keep only those whose stock is less than 50?",
            sales_db,
            history=[("q1", first)],
        )
        assert sql == "SELECT name FROM products WHERE stock < 50"

    def test_knowledge_alias_applied(self, sales_db):
        parser = GrammarSemanticParser(use_knowledge=True)
        sql = ask(
            parser,
            "Display the name of premium products?",
            sales_db,
            knowledge=(
                "Premium products are products whose price is greater "
                "than 500."
            ),
        )
        assert sql == "SELECT name FROM products WHERE price > 500"

    def test_knowledge_ignored_without_flag(self, sales_db):
        parser = GrammarSemanticParser(use_knowledge=False)
        sql = ask(
            parser,
            "Display the name of premium products?",
            sales_db,
            knowledge=(
                "Premium products are products whose price is greater "
                "than 500."
            ),
        )
        assert sql is None or "500" not in sql


class TestStageOrderingOnBenchmarks:
    def test_semantic_beats_rules(self, tiny_spider):
        rule = evaluate_parser(KeywordRuleParser(), tiny_spider)
        semantic = evaluate_parser(GrammarSemanticParser(), tiny_spider)
        assert semantic.accuracy("execution_match") > rule.accuracy(
            "execution_match"
        )

    def test_world_knowledge_helps_on_synonyms(self, tiny_spider):
        from repro.datasets.robustness import make_synonym_variant

        syn = make_synonym_variant(tiny_spider, seed=1)
        exact = evaluate_parser(GrammarSemanticParser(), syn)
        world = evaluate_parser(
            GrammarSemanticParser(world_knowledge=True), syn
        )
        assert world.accuracy("execution_match") > exact.accuracy(
            "execution_match"
        )
