"""Vis lint subsystem tests: engine, rule catalog, gate, wiring, gold audit."""

from __future__ import annotations

import pytest

from repro.data.schema import Column, ColumnType, Schema, TableSchema
from repro.sql.lint.diagnostics import Severity
from repro.vis.lint import VIS_RULES, VisLintGate, lint_vis, lint_vql_text
from repro.vis.vql import parse_vql


def codes(report) -> set[str]:
    return {d.code for d in report.diagnostics}


@pytest.fixture
def dated_schema() -> Schema:
    """A schema with a DATE column, which the shop fixture lacks."""
    return Schema(
        db_id="journal",
        tables=(
            TableSchema(
                "entries",
                (
                    Column("id", ColumnType.NUMBER),
                    Column("topic", ColumnType.TEXT),
                    Column("words", ColumnType.NUMBER),
                    Column("written_on", ColumnType.DATE),
                ),
                primary_key="id",
            ),
        ),
    )


class TestEngine:
    def test_clean_chart_has_no_diagnostics(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE BAR SELECT category, COUNT(*) FROM products "
            "GROUP BY category",
            shop_schema,
        )
        assert report.ok
        assert report.vis_diagnostics == []
        assert report.output is not None
        assert report.output.names() == ("category", "count(*)")

    def test_parse_failure_is_fatal_v001(self, shop_schema):
        report = lint_vql_text("DRAW ME A CHART", shop_schema)
        assert codes(report) == {"V001"}
        assert report.diagnostics[0].fatal
        assert report.output is None

    def test_sql_diagnostics_fold_in(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE BAR SELECT mystery, COUNT(*) FROM products "
            "GROUP BY mystery",
            shop_schema,
        )
        assert any(d.code.startswith("E") for d in report.diagnostics)
        assert not report.ok

    def test_obs_counters(self, shop_schema):
        from repro.obs import metrics as obs_metrics

        lint_vql_text("nonsense", shop_schema)
        registry = obs_metrics.get_registry()
        assert registry.counter("repro.vis.lint.runs").value >= 1
        assert registry.counter("repro.vis.lint.diag.V001").value >= 1


class TestStructuralRules:
    def test_v011_arity(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE BAR SELECT category FROM products", shop_schema
        )
        assert "V011" in codes(report)

    def test_v012_extra_columns(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE BAR SELECT category, price, name FROM products",
            shop_schema,
        )
        assert "V012" in codes(report)

    def test_v013_bin_column_missing(self, dated_schema):
        report = lint_vql_text(
            "VISUALIZE LINE SELECT topic, words FROM entries "
            "BIN written_on BY year",
            dated_schema,
        )
        assert "V013" in codes(report)


class TestTypeRules:
    def test_v101_v102_scatter_axes(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE SCATTER SELECT category, name FROM products",
            shop_schema,
        )
        assert {"V101", "V102"} <= codes(report)

    def test_v103_bar_measure(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE BAR SELECT category, name FROM products", shop_schema
        )
        assert "V103" in codes(report)

    def test_v104_bin_not_temporal(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE LINE SELECT quarter, SUM(quantity) FROM sales "
            "GROUP BY quarter BIN quarter BY year",
            shop_schema,
        )
        assert "V104" in codes(report)

    def test_temporal_bin_is_clean(self, dated_schema):
        report = lint_vql_text(
            "VISUALIZE LINE SELECT written_on, COUNT(*) FROM entries "
            "GROUP BY written_on BIN written_on BY month",
            dated_schema,
        )
        assert report.ok

    def test_v105_line_over_text_axis(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE LINE SELECT category, COUNT(*) FROM products "
            "GROUP BY category",
            shop_schema,
        )
        assert "V105" in codes(report)

    def test_unknown_types_stay_silent(self, shop_schema):
        # unresolvable column: the typer says UNKNOWN, so no V1xx claims
        report = lint_vql_text(
            "VISUALIZE SCATTER SELECT mystery, price FROM products",
            shop_schema,
        )
        assert "V101" not in codes(report)


class TestSemanticRules:
    def test_v201_pie_slices_need_db(self, sales_db):
        vql = "VISUALIZE PIE SELECT name, price FROM products"
        without_db = lint_vql_text(vql, sales_db.schema)
        assert "V201" not in codes(without_db)
        with_db = lint_vql_text(vql, sales_db.schema, db=sales_db)
        assert "V201" in codes(with_db)

    def test_v201_respects_limit(self, sales_db):
        report = lint_vql_text(
            "VISUALIZE PIE SELECT name, price FROM products LIMIT 5",
            sales_db.schema,
            db=sales_db,
        )
        assert "V201" not in codes(report)

    def test_v202_duplicate_axes(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE BAR SELECT price, price FROM products", shop_schema
        )
        assert "V202" in codes(report)

    def test_v203_swapped_axes(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE BAR SELECT COUNT(*), category FROM products "
            "GROUP BY category",
            shop_schema,
        )
        assert "V203" in codes(report)

    def test_v204_bin_names_non_x_column(self, dated_schema):
        report = lint_vql_text(
            "VISUALIZE LINE SELECT words, written_on FROM entries "
            "BIN written_on BY year",
            dated_schema,
        )
        assert "V204" in codes(report)


class TestStyleRules:
    def test_v301_bar_over_temporal(self, dated_schema):
        report = lint_vql_text(
            "VISUALIZE BAR SELECT written_on, COUNT(*) FROM entries "
            "GROUP BY written_on",
            dated_schema,
        )
        assert "V301" in codes(report)
        assert report.ok  # info severity only

    def test_v302_pie_of_raw_rows(self, shop_schema):
        report = lint_vql_text(
            "VISUALIZE PIE SELECT category, price FROM products", shop_schema
        )
        assert "V302" in codes(report)

    def test_v303_line_without_order(self, dated_schema):
        report = lint_vql_text(
            "VISUALIZE LINE SELECT written_on, words FROM entries",
            dated_schema,
        )
        assert "V303" in codes(report)
        ordered = lint_vql_text(
            "VISUALIZE LINE SELECT written_on, words FROM entries "
            "ORDER BY written_on",
            dated_schema,
        )
        assert "V303" not in codes(ordered)


class TestCatalog:
    def test_every_rule_has_code_range_and_doc(self):
        for code, rule in VIS_RULES.items():
            assert code.startswith("V") and len(code) == 4
            assert rule.doc, code
        severities = {
            code: rule.severity for code, rule in VIS_RULES.items()
        }
        assert severities["V011"] is Severity.ERROR
        assert severities["V201"] is Severity.WARNING
        assert severities["V301"] is Severity.INFO


class TestGate:
    GOOD = (
        "VISUALIZE BAR SELECT category, COUNT(*) FROM products "
        "GROUP BY category"
    )
    BAD = "VISUALIZE SCATTER SELECT category, name FROM products"

    def test_picks_clean_candidate(self, shop_schema):
        decision = VisLintGate().decide(
            [self.BAD, self.GOOD], shop_schema
        )
        assert decision.chosen == self.GOOD
        assert not decision.repaired
        assert len(decision.pruned) == 1

    def test_chart_repair_rewrites_chart_type(self, shop_schema):
        wrong_chart = (
            "VISUALIZE SCATTER SELECT category, COUNT(*) FROM products "
            "GROUP BY category"
        )
        decision = VisLintGate().decide([wrong_chart], shop_schema)
        assert decision.repaired
        assert decision.chosen is not None
        assert parse_vql(decision.chosen).chart_type != "scatter"

    def test_repair_can_be_disabled(self, shop_schema):
        wrong_chart = (
            "VISUALIZE SCATTER SELECT category, COUNT(*) FROM products "
            "GROUP BY category"
        )
        decision = VisLintGate(repair_chart=False).decide(
            [wrong_chart], shop_schema
        )
        assert decision.chosen is None

    def test_no_repair_for_broken_sql(self, shop_schema):
        decision = VisLintGate().decide(["total nonsense"], shop_schema)
        assert decision.chosen is None
        assert not decision.repaired

    def test_gate_counters(self, shop_schema):
        from repro.obs import metrics as obs_metrics

        VisLintGate().decide([self.BAD, self.GOOD], shop_schema)
        registry = obs_metrics.get_registry()
        assert registry.counter("repro.vis.gate.decisions").value >= 1
        assert registry.counter("repro.vis.gate.pruned").value >= 1


class TestWiring:
    def test_interface_lint_inserts_vis_gate_stage(self, sales_db):
        from repro import NaturalLanguageInterface

        nli = NaturalLanguageInterface(sales_db, lint=True)
        answer = nli.ask(
            "Draw a bar chart of the number of orders per quarter?"
        )
        assert answer.chart is not None
        assert "lint" in [s.stage for s in answer.trace.stages]

    def test_chat2vis_candidate_sampling_with_gate(self, sales_db):
        from repro.parsers.base import ParseRequest
        from repro.parsers.vis.llm import Chat2VisParser

        parser = Chat2VisParser(n_candidates=3, lint_gate=VisLintGate())
        vql = parser.parse_vis(
            ParseRequest(
                question="Draw a bar chart of the number of products "
                "per category?",
                schema=sales_db.schema,
                db=sales_db,
            )
        )
        assert vql is None or parse_vql(vql) is not None

    def test_rgvisnet_gated_path(self, tiny_nvbench):
        from repro.parsers.base import ParseRequest
        from repro.parsers.vis.retrieval import RGVisNetParser

        train = tiny_nvbench.split("train").examples
        databases = {
            db_id: tiny_nvbench.database(db_id)
            for db_id in {e.db_id for e in tiny_nvbench.examples}
        }
        parser = RGVisNetParser(seed=3, lint_gate=VisLintGate())
        parser.train(train, databases)
        example = tiny_nvbench.split("dev").examples[0]
        db = tiny_nvbench.database(example.db_id)
        vql = parser.parse_vis(
            ParseRequest(
                question=example.question, schema=db.schema, db=db
            )
        )
        assert vql is None or parse_vql(vql) is not None


class TestGoldAudit:
    """Every gold VQL of the generated corpora must lint error-free."""

    def test_nvbench_gold_has_no_errors(self, tiny_nvbench):
        assert tiny_nvbench.examples
        for example in tiny_nvbench.examples:
            db = tiny_nvbench.database(example.db_id)
            report = lint_vql_text(example.vql, db.schema, db=db)
            assert not report.errors, (
                example.vql,
                [d.render() for d in report.errors],
            )

    def test_multiturn_gold_has_no_errors(self):
        from repro.datasets import build_dataset

        dataset = build_dataset("dial_nvbench_like", scale=0.01, seed=9)
        checked = 0
        for example in dataset.examples:
            if not example.is_vis:
                continue
            checked += 1
            db = dataset.database(example.db_id)
            report = lint_vql_text(example.vql, db.schema, db=db)
            assert not report.errors, example.vql
        assert checked > 0


class TestCLI:
    def test_rules_listing(self, capsys):
        from repro.vis.lint.cli import main

        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        assert "V011" in out and "V303" in out

    def test_single_vql_exit_codes(self):
        from repro.vis.lint.cli import main

        clean = main(
            ["--vql", "VISUALIZE BAR SELECT name, price FROM products"]
        )
        assert clean == 0
        broken = main(
            ["--vql", "VISUALIZE SCATTER SELECT name, price FROM products"]
        )
        assert broken == 1

    def test_dataset_mode(self, capsys):
        from repro.vis.lint.cli import main

        assert main(["--dataset", "nvbench_like", "--scale", "0.005"]) == 0
        assert "gold VQL" in capsys.readouterr().out

    def test_no_arguments_is_usage_error(self, capsys):
        from repro.vis.lint.cli import main

        assert main([]) == 2
