"""Serving-layer tests: envelopes, admission, fair scheduling, the
concurrent server (FIFO/fairness/coalescing/deadlines/lifecycle), the
chaos never-raise property, and the serve/loadgen CLIs."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import (
    Coalescer,
    Request,
    Response,
    ServeConfig,
    Server,
    ShedReason,
    Ticket,
)
from repro.serve.scheduler import FairScheduler
from repro.serve.sessions import ServeSession
from repro.sql.executor import Result
from repro.systems.base import NLISystem, SystemResponse


class ScriptedSystem(NLISystem):
    """Answers instantly (optionally after a delay), recording calls."""

    name = "scripted"
    architecture = "test"

    def __init__(self, delay: float = 0.0, fail_on: str | None = None):
        self.delay = delay
        self.fail_on = fail_on
        self.calls: list[str] = []  # list.append is atomic under the GIL

    def answer(self, question, db, knowledge=None, history=None):
        self.calls.append(question)
        if self.delay:
            time.sleep(self.delay)
        if self.fail_on is not None and self.fail_on in question:
            from repro.errors import SQLError

            raise SQLError(f"scripted failure for {question!r}")
        return SystemResponse(
            question=question,
            kind="data",
            sql=f"-- {question}",
            result=Result(columns=["q"], rows=[(question,)]),
        )


def make_server(db, system=None, **config_kwargs) -> Server:
    defaults = dict(workers=2, session_ttl=None)
    defaults.update(config_kwargs)
    return Server(
        db, system=system or ScriptedSystem(), config=ServeConfig(**defaults)
    )


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
class TestEnvelope:
    def test_request_ids_are_unique_and_increasing(self):
        a, b = Request(question="x"), Request(question="y")
        assert b.request_id > a.request_id

    def test_ticket_resolves_exactly_once(self):
        ticket = Ticket(Request(question="x"))
        assert not ticket.done()
        first = Response(request_id=1, session_id="s")
        ticket._resolve(first)
        ticket._resolve(Response(request_id=1, session_id="s", status="error"))
        assert ticket.done()
        assert ticket.result(timeout=1) is first

    def test_ticket_timeout(self):
        ticket = Ticket(Request(question="x"))
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)

    def test_ticket_callbacks_fire_on_resolve_and_late_add(self):
        ticket = Ticket(Request(question="x"))
        seen: list[str] = []
        ticket.add_done_callback(lambda r: seen.append("early"))
        ticket._resolve(Response(request_id=1, session_id="s"))
        ticket.add_done_callback(lambda r: seen.append("late"))
        assert seen == ["early", "late"]

    def test_response_properties_and_describe(self):
        shed = Response(
            request_id=3,
            session_id="s",
            status="shed",
            shed_reason=ShedReason.QUEUE_FULL,
        )
        assert shed.shed and not shed.ok
        assert "queue-full" in shed.describe()
        ok = Response(
            request_id=4,
            session_id="s",
            kind="data",
            sql="SELECT 1",
            result=Result(columns=["a"], rows=[(1,)]),
            queue_seconds=0.25,
            service_seconds=0.5,
        )
        assert ok.rows == [(1,)] and ok.columns == ["a"]
        assert ok.total_seconds == pytest.approx(0.75)
        assert "1 row(s)" in ok.describe()


# ----------------------------------------------------------------------
# fair scheduler (pure, no threads)
# ----------------------------------------------------------------------
def _session(name: str, weight: float) -> ServeSession:
    session = ServeSession(name, "db", None, weight, now=0.0)
    return session


class TestFairScheduler:
    def _drain(self, sched, sessions, turns):
        """Pop *turns* dispatches, re-pushing sessions that stay ready."""
        order = []
        for _ in range(turns):
            session = sched.pop()
            assert session is not None
            order.append(session.session_id)
            session.queue.popleft()
            if session.queue:
                sched.push(session)
        return order

    def test_single_session_is_fifo(self):
        sched = FairScheduler()
        a = _session("a", 1.0)
        a.queue.extend(range(5))
        sched.push(a)
        assert self._drain(sched, [a], 5) == ["a"] * 5

    def test_equal_weights_interleave(self):
        sched = FairScheduler()
        a, b = _session("a", 1.0), _session("b", 1.0)
        a.queue.extend(range(4))
        b.queue.extend(range(4))
        sched.push(a)
        sched.push(b)
        order = self._drain(sched, [a, b], 8)
        # alternation: within any adjacent pair, both sessions appear
        for i in range(0, 8, 2):
            assert set(order[i : i + 2]) == {"a", "b"}

    def test_weighted_shares(self):
        sched = FairScheduler()
        a, b = _session("a", 1.0), _session("b", 3.0)
        a.queue.extend(range(8))
        b.queue.extend(range(8))
        sched.push(a)
        sched.push(b)
        order = self._drain(sched, [a, b], 8)
        assert order.count("b") >= 5  # ~3x the turns of a

    def test_stale_entries_are_skipped(self):
        sched = FairScheduler()
        a, b = _session("a", 1.0), _session("b", 1.0)
        a.queue.append(0)
        b.queue.append(0)
        sched.push(a)
        sched.push(b)
        a.queue.clear()  # a drained out from under its heap entry
        popped = sched.pop()
        assert popped is b
        b.queue.popleft()
        assert sched.pop() is None

    def test_idle_session_reenters_at_current_virtual_time(self):
        sched = FairScheduler()
        a, b = _session("a", 1.0), _session("b", 1.0)
        a.queue.extend(range(10))
        sched.push(a)
        self._drain(sched, [a], 6)
        # b arrives late: it must not get 6 catch-up turns
        b.queue.extend(range(4))
        sched.push(b)
        a_remaining = len(a.queue)
        order = self._drain(sched, [a, b], a_remaining + 4)
        head = order[:4]
        assert head.count("b") <= 2


# ----------------------------------------------------------------------
# server lifecycle and admission (deterministic: start=False)
# ----------------------------------------------------------------------
class TestAdmissionAndLifecycle:
    def test_queue_full_shed_is_immediate_and_typed(self, sales_db):
        server = Server(
            sales_db,
            system=ScriptedSystem(),
            config=ServeConfig(workers=1, max_pending=1, session_ttl=None),
            start=False,
        )
        first = server.submit("q1")
        second = server.submit("q2", session_id="other")
        assert not first.done()
        assert second.done()
        response = second.result(timeout=1)
        assert response.shed_reason is ShedReason.QUEUE_FULL
        assert response.backpressure == 1.0
        server.shutdown(drain=False)
        # the queued-but-never-served request flushes as a SHUTDOWN shed
        assert first.result(timeout=1).shed_reason is ShedReason.SHUTDOWN

    def test_session_queue_full_shed(self, sales_db):
        server = Server(
            sales_db,
            system=ScriptedSystem(),
            config=ServeConfig(
                workers=1, max_session_pending=1, session_ttl=None
            ),
            start=False,
        )
        server.submit("q1", session_id="s")
        shed = server.submit("q2", session_id="s").result(timeout=1)
        assert shed.shed_reason is ShedReason.SESSION_QUEUE_FULL
        # a different session still has room
        assert not server.submit("q3", session_id="t").done()
        server.shutdown(drain=False)

    def test_session_limit_shed_and_idle_eviction_valve(self, sales_db):
        server = Server(
            sales_db,
            system=ScriptedSystem(),
            config=ServeConfig(workers=1, max_sessions=1, session_ttl=None),
            start=False,
        )
        server.submit("q1", session_id="a")
        # "a" has queued work, so it is not evictable: "b" is refused
        shed = server.submit("q2", session_id="b").result(timeout=1)
        assert shed.shed_reason is ShedReason.SESSION_LIMIT
        server.shutdown(drain=False)

    def test_session_limit_evicts_idle_lru(self, sales_db):
        server = make_server(sales_db, workers=1, max_sessions=1)
        assert server.ask("q1", session_id="a").ok
        server.drain(timeout=5)
        server.resume()
        # "a" is now idle, so a new session evicts it instead of shedding
        assert server.ask("q2", session_id="b").ok
        stats = server.stats()
        assert [s["session_id"] for s in stats["sessions"]] == ["b"]
        server.shutdown()

    def test_draining_sheds_then_resume_admits(self, sales_db):
        server = make_server(sales_db, workers=1)
        assert server.drain(timeout=5)
        shed = server.submit("q").result(timeout=1)
        assert shed.shed_reason is ShedReason.DRAINING
        server.resume()
        assert server.ask("q").ok
        server.shutdown()

    def test_shutdown_is_idempotent_and_sheds_new_submits(self, sales_db):
        server = make_server(sales_db, workers=1)
        server.shutdown()
        server.shutdown()
        shed = server.submit("late").result(timeout=1)
        assert shed.shed_reason is ShedReason.SHUTDOWN

    def test_close_session_flushes_queue_and_allows_reopen(self, sales_db):
        server = Server(
            sales_db,
            system=ScriptedSystem(),
            config=ServeConfig(workers=1, session_ttl=None),
            start=False,
        )
        t1 = server.submit("q1", session_id="gone")
        t2 = server.submit("q2", session_id="gone")
        assert server.close_session("gone") == 2
        assert t1.result(timeout=1).shed_reason is ShedReason.SESSION_CLOSED
        assert t2.result(timeout=1).shed_reason is ShedReason.SESSION_CLOSED
        server.start()
        # same id after close = a fresh conversation
        assert server.ask("q3", session_id="gone").ok
        server.shutdown()

    def test_unknown_db_id_raises(self, sales_db):
        server = make_server(sales_db, workers=1)
        with pytest.raises(KeyError):
            server.submit("q", db_id="nope")
        server.shutdown()

    def test_idle_ttl_eviction_with_fake_clock(self, sales_db):
        now = [0.0]
        server = Server(
            sales_db,
            system=ScriptedSystem(),
            config=ServeConfig(
                workers=1, session_ttl=10.0, clock=lambda: now[0]
            ),
        )
        assert server.ask("q", session_id="old").ok
        now[0] = 5.0
        assert server.sweep_idle_sessions() == 0
        now[0] = 20.0
        assert server.sweep_idle_sessions() == 1
        assert server.stats()["sessions"] == []
        server.shutdown()


# ----------------------------------------------------------------------
# concurrent serving properties
# ----------------------------------------------------------------------
class TestConcurrentServing:
    def test_per_session_fifo_under_mixed_storm(self, sales_db):
        server = make_server(sales_db, ScriptedSystem(delay=0.001), workers=4)
        sessions = [f"s{i}" for i in range(6)]
        tickets: dict[str, list] = {sid: [] for sid in sessions}
        for i in range(180):
            sid = sessions[i % len(sessions)]
            tickets[sid].append(server.submit(f"q{i}", session_id=sid))
        for sid in sessions:
            responses = [t.result(timeout=30) for t in tickets[sid]]
            seqs = [r.session_seq for r in responses]
            assert seqs == list(range(1, len(responses) + 1))
            completions = [r.completion_index for r in responses]
            assert completions == sorted(completions)  # FIFO: no reorder
        assert server.unhandled_errors() == []
        server.shutdown()

    def test_weighted_fairness_under_contention(self, sales_db):
        server = Server(
            sales_db,
            system=ScriptedSystem(),
            config=ServeConfig(workers=1, session_ttl=None),
            start=False,
        )
        a_tickets = [
            server.submit("qa", session_id="a", weight=1.0) for _ in range(8)
        ]
        b_tickets = [
            server.submit("qb", session_id="b", weight=3.0) for _ in range(8)
        ]
        server.start()
        responses = [t.result(timeout=10) for t in a_tickets + b_tickets]
        assert all(r.ok for r in responses)
        first_eight = sorted(responses, key=lambda r: r.completion_index)[:8]
        b_share = sum(1 for r in first_eight if r.session_id == "b")
        assert b_share >= 5  # ~3x weight => ~3/4 of early turns
        server.shutdown()

    def test_identical_concurrent_requests_coalesce(self, sales_db):
        system = ScriptedSystem(delay=0.03)
        server = make_server(
            sales_db, system, workers=4, coalesce_window=0.01
        )
        tickets = [
            server.submit("same question", session_id=f"c{i}")
            for i in range(8)
        ]
        responses = [t.result(timeout=30) for t in tickets]
        assert all(r.ok for r in responses)
        assert all(r.rows == [("same question",)] for r in responses)
        assert len(system.calls) < 8  # at least one execution was saved
        assert any(r.coalesced for r in responses)
        server.shutdown()

    def test_coalescing_disabled_runs_every_turn(self, sales_db):
        system = ScriptedSystem(delay=0.01)
        server = make_server(sales_db, system, workers=4, coalesce=False)
        tickets = [
            server.submit("same question", session_id=f"c{i}")
            for i in range(6)
        ]
        responses = [t.result(timeout=30) for t in tickets]
        assert all(r.ok and not r.coalesced for r in responses)
        assert len(system.calls) == 6
        server.shutdown()

    def test_failed_leader_does_not_poison_followers(self, sales_db):
        system = ScriptedSystem(delay=0.02, fail_on="boom")
        server = make_server(sales_db, system, workers=3)
        tickets = [
            server.submit("boom now", session_id=f"f{i}") for i in range(3)
        ]
        responses = [t.result(timeout=30) for t in tickets]
        assert all(r.status == "error" for r in responses)
        assert all("scripted failure" in r.error for r in responses)
        assert server.unhandled_errors() == []
        server.shutdown()

    def test_deadline_expired_in_queue_sheds(self, sales_db):
        server = make_server(sales_db, ScriptedSystem(delay=0.1), workers=1)
        blocker = server.submit("slow one")
        shed = server.submit(
            "too late", session_id="other", deadline=0.01
        ).result(timeout=10)
        assert shed.shed_reason is ShedReason.DEADLINE
        assert blocker.result(timeout=10).ok
        server.shutdown()

    def test_responses_match_direct_session_path(self, sales_db):
        """Zero contention => byte-identical answers vs the direct path."""
        from repro.systems.architectures import PipelineSystem
        from repro.systems.session import InteractiveSession

        questions = [
            "how many products are there",
            "show the name of products whose price is above 500",
            "how many are there",
            "draw a bar chart of the number of products per category",
        ]
        direct = InteractiveSession(system=PipelineSystem(), db=sales_db)
        expected = [direct.ask(q) for q in questions]

        server = Server(
            sales_db, config=ServeConfig(workers=1, session_ttl=None)
        )
        served = [server.ask(q, session_id="mirror") for q in questions]
        server.shutdown()

        for want, got in zip(expected, served):
            assert got.ok == want.answered
            assert got.sql == want.sql
            assert got.vql == want.vql
            if want.result is not None:
                assert got.rows == want.result.rows
                assert got.columns == want.result.columns
            if want.chart is not None:
                assert got.chart.to_ascii() == want.chart.to_ascii()

    def test_chaos_storm_never_raises_and_stays_typed(self, sales_db):
        from repro.resilience import install_faults

        install_faults(
            "translate:error:p=0.3;execute:error:p=0.3;"
            "render:error:p=0.3;execute:latency:p=0.2:delay=0.001",
            seed=13,
        )
        server = Server(
            sales_db,
            config=ServeConfig(workers=4, session_ttl=None),
        )
        questions = [
            "how many products are there",
            "draw a bar chart of the number of products per category",
            "show the name of products whose price is above 500",
        ]
        tickets = [
            server.submit(
                questions[i % len(questions)], session_id=f"s{i % 5}"
            )
            for i in range(60)
        ]
        responses = [t.result(timeout=60) for t in tickets]
        assert server.unhandled_errors() == []
        for response in responses:
            assert response.status in ("ok", "error", "shed")
            if response.shed:
                assert response.shed_reason is not None
        assert any(r.ok for r in responses)
        server.shutdown()

    def test_gauges_and_counters_registered(self, sales_db):
        from repro.obs import metrics as obs_metrics

        server = make_server(sales_db, workers=2)
        assert server.ask("q").ok
        registry = obs_metrics.get_registry()
        snap = registry.snapshot()
        assert snap["repro.serve.admitted"] >= 1
        assert snap["repro.serve.responses"] >= 1
        assert snap["repro.serve.queue.seconds"]["count"] >= 1
        assert snap["repro.serve.sessions.active"] == 1
        server.shutdown()
        assert registry.gauge("repro.serve.queue.depth").value == 0


# ----------------------------------------------------------------------
# coalescer unit behaviour
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_bypasses_under_active_faults(self, sales_db):
        from repro.resilience import clear_faults, install_faults

        system = ScriptedSystem()
        coalescer = Coalescer(system)
        install_faults("execute:error:p=0.5", seed=1)
        try:
            coalescer.begin_request()
            response = coalescer.answer("q", sales_db)
            assert response.question == "q"
            assert not coalescer.was_coalesced()
        finally:
            clear_faults()

    def test_follower_gets_a_copy_not_the_same_object(self, sales_db):
        system = ScriptedSystem(delay=0.05)
        coalescer = Coalescer(system)
        out: list[SystemResponse] = []

        def run():
            coalescer.begin_request()
            out.append(coalescer.answer("dup", sales_db))

        threads = [threading.Thread(target=run) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(out) == 3
        assert len(system.calls) < 3
        rows = [tuple(r.result.rows) for r in out]
        assert len(set(rows)) == 1
        assert len({id(r.result) for r in out}) == 3  # no shared aliases


# ----------------------------------------------------------------------
# loadgen + CLIs
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_percentile_nearest_rank(self):
        from repro.serve.loadgen import percentile

        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile([], 50) == 0.0

    def test_build_workload_is_seeded(self):
        from repro.serve.loadgen import build_workload

        _, a = build_workload("spider_like", 1, 3, 40, 4, 0.5)
        _, b = build_workload("spider_like", 1, 3, 40, 4, 0.5)
        _, c = build_workload("spider_like", 1, 4, 40, 4, 0.5)
        assert a == b
        assert a != c
        assert len(a) == 40
        # a session always stays on one database
        bindings: dict[str, str] = {}
        for session_id, db_id, _, _ in a:
            assert bindings.setdefault(session_id, db_id) == db_id

    def test_closed_loop_run_and_summary(self, sales_db):
        from repro.serve.loadgen import run_loadgen, summarize

        server = make_server(sales_db, ScriptedSystem(), workers=2)
        script = [
            (f"s{i % 3}", sales_db.db_id, f"q{i % 5}", None)
            for i in range(30)
        ]
        responses = run_loadgen(server, script, clients=3)
        report = summarize(responses, 0.5, server)
        server.shutdown()
        assert report["requests"] == 30
        assert report["ok"] == 30
        assert report["shed"] == 0
        assert report["unhandled_errors"] == []
        assert report["latency_p99_ms"] >= report["latency_p50_ms"]

    def test_open_loop_run(self, sales_db):
        from repro.serve.loadgen import run_loadgen

        server = make_server(sales_db, ScriptedSystem(), workers=2)
        script = [
            (f"s{i % 2}", sales_db.db_id, f"q{i}", None) for i in range(10)
        ]
        responses = run_loadgen(server, script, rps=500.0)
        server.shutdown()
        assert len(responses) == 10
        assert all(r.ok for r in responses)

    def test_loadgen_cli_json(self, capsys):
        import json

        from repro.serve.loadgen import main

        rc = main(
            [
                "--dataset",
                "spider_like",
                "--scale",
                "1",
                "--requests",
                "30",
                "--sessions",
                "4",
                "--workers",
                "2",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["requests"] == 30
        assert payload["unhandled_errors"] == []
        assert set(payload["config"]) >= {"dataset", "mode", "workers"}

    def test_serve_cli_demo(self, capsys):
        from repro.serve.cli import main

        rc = main(["--demo", "--workers", "2", "--seed", "7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "@alice" in out
        assert "row(s)" in out or "chart" in out

    def test_main_dispatches_serve_and_loadgen(self, capsys):
        from repro.__main__ import main

        rc = main(["loadgen", "--requests", "10", "--scale", "1",
                   "--sessions", "2", "--workers", "1", "--json"])
        assert rc == 0
        capsys.readouterr()


class TestResolveWorkers:
    def test_env_default_resolution(self, monkeypatch):
        from repro.eval.parallel import WORKERS_ENV, resolve_workers

        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(3) == 3
        assert resolve_workers(None, default=2) == 2
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None, default=2) == 5
        assert resolve_workers(7) == 7  # explicit beats env
        monkeypatch.setenv(WORKERS_ENV, "not-a-number")
        assert resolve_workers(None, default=2) == 2  # malformed => ignored
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers(None) == 1  # clamped

    def test_eval_report_honors_env(self, monkeypatch, tiny_spider):
        from repro.eval.parallel import WORKERS_ENV
        from repro.metrics import evaluate_parser
        from repro.parsers import KeywordRuleParser

        parser = KeywordRuleParser()
        parser.train(
            tiny_spider.split("train").examples, tiny_spider.databases
        )
        monkeypatch.setenv(WORKERS_ENV, "2")
        report = evaluate_parser(parser, tiny_spider, limit=20)
        assert report.total > 0
