"""Versioned result cache + semantic canonicalizer tests.

Three layers: the canonicalizer contract (idempotent; canonical-equal
queries are result-identical), the cache proper (hits, version-stamped
invalidation, cost-aware eviction, error caching, defensive copies), and
the consumers that ride it (metric gold caches, pipeline turn memo,
interactive sessions).  The staleness property test interleaves mutations
with cached reads across all three engines against the uncached reference
oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.data.database import Database
from repro.errors import SQLError
from repro.sql import rescache
from repro.sql.executor import execute, execute_reference
from repro.sql.normalize import canonical_cache_key, canonical_sql
from repro.sql.parser import parse_sql
from repro.sql.plan import (
    clear_plan_caches,
    configure_caches,
    explain,
    plan_for,
)
from repro.sql.unparser import to_sql
from repro.sql.vector import set_vector_enabled


def _key(sql: str) -> tuple:
    return canonical_cache_key(parse_sql(sql))


def _snap(result):
    return (tuple(result.columns), tuple(result.rows), result.ordered)


@pytest.fixture
def small_budget():
    """Shrink the cache budget for a test; restore afterwards."""
    before = rescache.rescache_stats()["max_bytes"]

    def set_budget(n: int) -> None:
        rescache.configure_result_cache(n)

    yield set_budget
    rescache.configure_result_cache(before)
    rescache.clear_result_cache()


# ----------------------------------------------------------------------
# canonicalizer
# ----------------------------------------------------------------------
EQUIVALENT_PAIRS = [
    # whitespace / keyword case
    ("select name from products", "SELECT   name\nFROM products"),
    # commuted equality and flipped comparison
    (
        "SELECT name FROM products WHERE price > 5",
        "SELECT name FROM products WHERE 5 < price",
    ),
    # commutative AND reordering (safe operands only)
    (
        "SELECT name FROM products WHERE price > 5 AND category = 'tools'",
        "SELECT name FROM products WHERE category = 'tools' AND price > 5",
    ),
    # IN-list sorting + dedupe
    (
        "SELECT name FROM products WHERE category IN ('tools', 'food')",
        "SELECT name FROM products WHERE category IN ('food', 'tools', 'food')",
    ),
    # alias renaming (output name pinned: unaliased qualified refs keep
    # the qualifier in the result's column name, so renaming those is
    # correctly NOT key-equal — see DISTINCT_PAIRS)
    (
        "SELECT p.name AS name FROM products AS p WHERE p.price > 5",
        "SELECT q.name AS name FROM products AS q WHERE q.price > 5",
    ),
    # alias renaming in a join, plus commuted join condition
    (
        "SELECT a.name AS name FROM products AS a JOIN sales AS b "
        "ON a.id = b.product_id",
        "SELECT x.name AS name FROM products AS x JOIN sales "
        "ON sales.product_id = x.id",
    ),
]

DISTINCT_PAIRS = [
    # output column names differ (alias vs none)
    ("SELECT name AS n FROM products", "SELECT name FROM products"),
    # ASC vs DESC
    (
        "SELECT name FROM products ORDER BY price",
        "SELECT name FROM products ORDER BY price DESC",
    ),
    # different literals
    (
        "SELECT name FROM products WHERE price > 5",
        "SELECT name FROM products WHERE price > 6",
    ),
    # OR is not AND
    (
        "SELECT name FROM products WHERE price > 5 AND category = 'tools'",
        "SELECT name FROM products WHERE price > 5 OR category = 'tools'",
    ),
    # unaliased qualified refs name the output column "p.name"/"q.name";
    # renaming the binding changes the result's column names
    (
        "SELECT p.name FROM products AS p",
        "SELECT q.name FROM products AS q",
    ),
]

# alias "y" above resolves the bare table name; join test uses sales

IDEMPOTENCE_QUERIES = [pair[0] for pair in EQUIVALENT_PAIRS] + [
    "SELECT category, COUNT(*) AS c FROM products GROUP BY category "
    "HAVING COUNT(*) > 1 ORDER BY c DESC LIMIT 2",
    "SELECT DISTINCT quarter FROM sales WHERE quantity BETWEEN 1 AND 5",
    "SELECT name FROM products WHERE id IN "
    "(SELECT product_id FROM sales WHERE quantity > 2)",
    "SELECT name FROM products UNION SELECT quarter FROM sales",
    "SELECT p.name, s.quantity FROM products AS p "
    "LEFT JOIN sales AS s ON p.id = s.product_id WHERE s.quantity IS NULL",
]


class TestCanonicalizer:
    @pytest.mark.parametrize("sql", IDEMPOTENCE_QUERIES)
    def test_idempotent(self, sql):
        once = canonical_sql(sql)
        assert canonical_sql(once) == once

    @pytest.mark.parametrize("a,b", EQUIVALENT_PAIRS)
    def test_equivalent_spellings_share_key(self, a, b, shop_db):
        assert _key(a) == _key(b)
        ra = execute_reference(parse_sql(a), shop_db)
        rb = execute_reference(parse_sql(b), shop_db)
        assert _snap(ra) == _snap(rb)

    @pytest.mark.parametrize("a,b", DISTINCT_PAIRS)
    def test_distinct_queries_do_not_collide(self, a, b):
        assert _key(a) != _key(b)

    def test_unsafe_operands_keep_source_order(self):
        # division can raise data-dependently; AND must not commute it
        # past the guard that makes it safe
        sql = (
            "SELECT name FROM products "
            "WHERE price > 0 AND 10 / price > 1"
        )
        text, _ = _key(sql)
        assert text.index("0 < price") < text.index("10 / price")

    def test_canonical_query_is_result_identical_on_corpus(self, tiny_spider):
        """Strong soundness check over corpus gold queries.

        The canonical *text* may rename bindings (changing the surface
        names of unaliased qualified output columns — the signature half
        of the key restores that sensitivity), so the guarantee is: rows
        and ordering always identical, and full-key equality implies
        byte-identical results including column names.
        """
        checked = 0
        for example in tiny_spider.examples[:60]:
            db = tiny_spider.database(example.db_id)
            query = parse_sql(example.sql)
            canonical = parse_sql(canonical_sql(example.sql))
            try:
                original = execute_reference(query, db)
            except SQLError as exc:
                with pytest.raises(type(exc)):
                    execute_reference(canonical, db)
                continue
            replay = execute_reference(canonical, db)
            assert tuple(replay.rows) == tuple(original.rows)
            assert replay.ordered == original.ordered
            if _key(example.sql) == _key(canonical_sql(example.sql)):
                assert replay.columns == original.columns
            checked += 1
        assert checked > 20

    def test_corpus_idempotence(self, tiny_wikisql):
        for example in tiny_wikisql.examples[:60]:
            once = canonical_sql(example.sql)
            assert canonical_sql(once) == once

    def test_explain_surfaces_canonical_key(self, shop_db):
        text = explain(
            "SELECT p.name FROM products AS p WHERE 5 < p.price", shop_db
        )
        assert "result cache canonical key:" in text
        assert "5 < t1.price" in text
        assert "result cache name signature:" in text


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------
class TestResultCache:
    def test_repeat_hits(self, shop_db):
        q = parse_sql("SELECT name FROM products WHERE price > 5")
        first = execute(q, shop_db)
        second = execute(q, shop_db)
        assert _snap(first) == _snap(second)
        stats = rescache.rescache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_semantic_spelling_hits(self, shop_db):
        execute(parse_sql("SELECT name FROM products WHERE price > 5"), shop_db)
        r = execute(
            parse_sql("select   name from products where 5 < price"), shop_db
        )
        stats = rescache.rescache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert r.rows

    def test_hit_returns_defensive_copy(self, shop_db):
        q = parse_sql("SELECT name FROM products")
        first = execute(q, shop_db)
        first.rows.clear()
        first.columns.append("junk")
        second = execute(q, shop_db)
        assert second.rows and second.columns == ["name"]

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda db: db.table("products").append((9, "new", "tools", 2.0)),
            lambda db: db.table("products").replace_rows(
                list(db.table("products").rows[:-1])
            ),
            lambda db: db.table("products").invalidate_caches(),
        ],
        ids=["append", "replace_rows", "invalidate_caches"],
    )
    def test_mutation_misses(self, shop_db, mutate):
        q = parse_sql("SELECT COUNT(*) FROM products")
        execute(q, shop_db)
        mutate(shop_db)
        fresh = execute(q, shop_db)
        stats = rescache.rescache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 2
        assert _snap(fresh) == _snap(execute_reference(q, shop_db))

    def test_distinct_databases_do_not_share(self, shop_db):
        twin = shop_db.copy()
        q = parse_sql("SELECT name FROM products")
        execute(q, shop_db)
        execute(q, twin)
        stats = rescache.rescache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_errors_cache_and_reraise(self, shop_db):
        q = parse_sql("SELECT id + name FROM products")
        with pytest.raises(SQLError) as first:
            execute(q, shop_db)
        with pytest.raises(SQLError) as second:
            execute(q, shop_db)
        assert str(first.value) == str(second.value)
        stats = rescache.rescache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_missing_table_bypasses_cache(self, shop_db):
        q = parse_sql("SELECT x FROM nonexistent")
        for _ in range(2):
            with pytest.raises(SQLError):
                execute(q, shop_db)
        stats = rescache.rescache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_missing_table_returns_error_value(self, shop_db):
        # execute_or_error must never raise — the metric gold paths rely
        # on failures (including missing-table analysis errors, which
        # bypass the cache) coming back as values
        q = parse_sql("SELECT x FROM nonexistent")
        value, hit = rescache.execute_or_error(q, shop_db)
        assert isinstance(value, SQLError) and not hit
        assert rescache.rescache_stats()["entries"] == 0

    def test_cached_errors_are_distinct_instances(self, shop_db):
        # every hit re-raises a fresh clone: raising a shared instance
        # would rewrite its __traceback__ across threads and pin the
        # original execution frames in the cache
        q = parse_sql("SELECT id + name FROM products")
        with pytest.raises(SQLError) as first:
            execute(q, shop_db)
        with pytest.raises(SQLError) as second:
            execute(q, shop_db)
        with pytest.raises(SQLError) as third:
            execute(q, shop_db)
        assert second.value is not first.value
        assert third.value is not second.value
        assert type(second.value) is type(first.value)
        assert second.value.args == first.value.args

    def test_disable_toggle(self, shop_db):
        q = parse_sql("SELECT name FROM products")
        previous = rescache.set_rescache_enabled(False)
        try:
            execute(q, shop_db)
            execute(q, shop_db)
            stats = rescache.rescache_stats()
            assert stats["hits"] == 0 and stats["misses"] == 0
        finally:
            rescache.set_rescache_enabled(previous)

    def test_tracing_bypasses_cache(self, shop_db):
        from repro.obs import trace as obs_trace

        q = parse_sql("SELECT name FROM products")
        with obs_trace.tracing():
            execute(q, shop_db)
            execute(q, shop_db)
        stats = rescache.rescache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_eviction_under_budget(self, shop_db, small_budget):
        small_budget(2000)
        for i in range(20):
            execute(
                parse_sql(f"SELECT name, price FROM products WHERE id <> {i}"),
                shop_db,
            )
        stats = rescache.rescache_stats()
        assert stats["bytes"] <= stats["max_bytes"]
        assert stats["evictions"] > 0
        assert 0 < stats["entries"] < 20

    def test_oversize_result_returned_not_stored(self, shop_db, small_budget):
        small_budget(32)
        result = execute(parse_sql("SELECT * FROM products"), shop_db)
        assert result.rows
        stats = rescache.rescache_stats()
        assert stats["oversize"] == 1 and stats["entries"] == 0

    def test_clear_plan_caches_covers_result_cache(self, shop_db):
        execute(parse_sql("SELECT name FROM products"), shop_db)
        assert rescache.rescache_stats()["entries"] == 1
        clear_plan_caches()
        assert rescache.rescache_stats()["entries"] == 0

    def test_configure_caches_routes_budget(self, shop_db, small_budget):
        small_budget(10_000)  # register restore
        configure_caches(result_bytes=4321)
        assert rescache.rescache_stats()["max_bytes"] == 4321

    def test_engine_toggles_key_entries(self, shop_db):
        q = parse_sql("SELECT name FROM products WHERE price > 5")
        previous = set_vector_enabled(True)
        try:
            execute(q, shop_db)
            set_vector_enabled(False)
            execute(q, shop_db)
        finally:
            set_vector_enabled(previous)
        stats = rescache.rescache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 0


# ----------------------------------------------------------------------
# consumers
# ----------------------------------------------------------------------
class TestConsumers:
    def test_gold_cache_rides_rescache(self, shop_db):
        from repro.metrics.execution import execution_match

        gold = "SELECT name FROM products WHERE price > 5"
        for predicted in (
            "SELECT name FROM products WHERE 5 < price",
            "SELECT name FROM products WHERE price > 5.0",
            gold,
        ):
            assert execution_match(predicted, gold, shop_db)
        from repro.obs import metrics as obs_metrics

        snapshot = obs_metrics.get_registry().snapshot()
        assert snapshot["repro.metrics.execution.gold_cache.hits"] >= 2
        assert rescache.rescache_stats()["hits"] >= 2

    def test_test_suite_match_still_correct(self, shop_db):
        from repro.metrics.test_suite import test_suite_match

        gold = "SELECT name FROM products WHERE price > 5"
        assert test_suite_match(gold, gold, shop_db, num_variants=4)
        assert not test_suite_match(
            "SELECT name FROM products WHERE price > 500", gold, shop_db,
            num_variants=4,
        )

    def test_pipeline_turn_memo(self, shop_db):
        from repro import NaturalLanguageInterface

        pipeline = NaturalLanguageInterface(shop_db).pipeline
        question = "Show the name of products?"
        first = pipeline.run(question, shop_db)
        second = pipeline.run(question, shop_db)
        assert first.succeeded and second.succeeded
        assert not first.cached and second.cached
        assert _snap(second.result) == _snap(first.result)
        # caller mutation cannot poison the memo
        second.result.rows.clear()
        third = pipeline.run(question, shop_db)
        assert third.cached and third.result.rows
        # a mutation retires the memo entry
        shop_db.table("products").append((9, "new", "tools", 2.0))
        fourth = pipeline.run(question, shop_db)
        assert not fourth.cached

    def test_pipeline_memo_off_under_tracing(self, shop_db):
        from repro import NaturalLanguageInterface
        from repro.obs import trace as obs_trace

        pipeline = NaturalLanguageInterface(shop_db).pipeline
        with obs_trace.tracing():
            first = pipeline.run("Show the name of products?", shop_db)
            second = pipeline.run("Show the name of products?", shop_db)
        assert not first.cached and not second.cached

    def test_session_replays_after_reset(self, sales_db):
        from repro.obs import metrics as obs_metrics
        from repro.systems import ParsingBasedSystem
        from repro.systems.session import InteractiveSession

        session = InteractiveSession(system=ParsingBasedSystem(), db=sales_db)
        question = "Show the name of products?"
        first = session.ask(question)
        session.reset()
        second = session.ask(question)
        assert first.answered and second.answered
        assert second.sql == first.sql
        snapshot = obs_metrics.get_registry().snapshot()
        assert snapshot["repro.session.turn_cache.hits"] == 1
        assert len(session.transcript) == 1 and len(session.history) == 1

    def test_gold_missing_table_scores_false(self, shop_db):
        # a gold referencing an absent table used to crash evaluation
        # through the rescache path; it must score False, never raise
        from repro.metrics.execution import execution_match

        gold = "SELECT x FROM nonexistent"
        predicted = "SELECT name FROM products"
        assert execution_match(predicted, gold, shop_db) is False
        assert execution_match(predicted, gold, shop_db) is False

    def test_pipeline_chart_memo_not_poisoned(self, sales_db):
        from repro import NaturalLanguageInterface

        pipeline = NaturalLanguageInterface(sales_db).pipeline
        question = "Draw a bar chart of the number of orders per quarter?"
        first = pipeline.run(question, sales_db)
        second = pipeline.run(question, sales_db)
        assert first.succeeded and second.cached and second.chart is not None
        # mutating a replayed chart or stage record must not leak into
        # the memo or other replays
        second.chart.points.clear()
        second.chart.spec.clear()
        second.stages[0].output = "tampered"
        third = pipeline.run(question, sales_db)
        assert third.cached and third.chart.points and third.chart.spec
        assert third.stages[0].output != "tampered"
        assert third.chart is not second.chart

    def test_session_memo_not_poisoned(self, sales_db):
        from repro.systems import ParsingBasedSystem
        from repro.systems.session import InteractiveSession

        session = InteractiveSession(system=ParsingBasedSystem(), db=sales_db)
        question = "Show the name of products?"
        first = session.ask(question)
        session.reset()
        second = session.ask(question)
        assert second.result is not None
        # the replay is a fresh object sharing no mutable state with the
        # memo entry or the first transcript entry
        assert second is not first and second.result is not first.result
        second.result.rows.clear()
        session.reset()
        third = session.ask(question)
        assert third.result.rows and first.result.rows

    def test_session_chart_memo_not_poisoned(self, sales_db):
        from repro.systems import ParsingBasedSystem
        from repro.systems.session import InteractiveSession

        session = InteractiveSession(system=ParsingBasedSystem(), db=sales_db)
        question = "Draw a bar chart of the number of orders per quarter?"
        first = session.ask(question)
        assert first.chart is not None
        session.reset()
        second = session.ask(question)
        assert second.chart is not first.chart
        second.chart.points.clear()
        session.reset()
        third = session.ask(question)
        assert third.chart.points

    def test_session_memo_respects_history(self, sales_db):
        from repro.obs import metrics as obs_metrics
        from repro.systems import ParsingBasedSystem
        from repro.systems.session import InteractiveSession

        session = InteractiveSession(system=ParsingBasedSystem(), db=sales_db)
        question = "Show the name of products?"
        session.ask(question)
        session.ask(question)  # history grew: different conversation state
        snapshot = obs_metrics.get_registry().snapshot()
        assert snapshot["repro.session.turn_cache.hits"] == 0


# ----------------------------------------------------------------------
# staleness property test (the mutation-storm differential)
# ----------------------------------------------------------------------
STORM_QUERIES = [
    "SELECT name FROM products WHERE price > 5",
    "SELECT name FROM products WHERE 5 < price",
    "SELECT COUNT(*) FROM products",
    "SELECT category, COUNT(*) FROM products GROUP BY category",
    "SELECT p.name, s.quantity FROM products AS p "
    "JOIN sales AS s ON p.id = s.product_id WHERE s.quantity > 1",
    "SELECT name FROM products ORDER BY price DESC LIMIT 3",
    "SELECT DISTINCT quarter FROM sales",
]


class TestStalenessProperty:
    @pytest.mark.parametrize("vector", [False, True], ids=["row", "vector"])
    def test_interleaved_mutations_never_serve_stale(self, shop_db, vector):
        """Random mutation/read interleaving: every cached read must be
        byte-identical to the uncached reference oracle."""
        rng = random.Random(20260808 + vector)
        queries = [parse_sql(sql) for sql in STORM_QUERIES]
        previous = set_vector_enabled(vector)
        try:
            for step in range(120):
                roll = rng.random()
                if roll < 0.15:
                    db_table = shop_db.table("products")
                    db_table.append(
                        (100 + step, f"p{step}", "tools", float(step % 7))
                    )
                elif roll < 0.25:
                    table = shop_db.table(rng.choice(("products", "sales")))
                    rows = list(table.rows)
                    rng.shuffle(rows)
                    table.replace_rows(rows[: max(1, len(rows) - 1)])
                elif roll < 0.3:
                    shop_db.table("sales").invalidate_caches()
                query = rng.choice(queries)
                cached = execute(query, shop_db)
                oracle = execute_reference(query, shop_db)
                assert _snap(cached) == _snap(oracle), (
                    f"stale result at step {step} for {to_sql(query)}"
                )
        finally:
            set_vector_enabled(previous)
        stats = rescache.rescache_stats()
        assert stats["hits"] > 0  # the storm actually exercised the cache


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCacheCLI:
    def test_stats_json(self, capsys, shop_db):
        import json

        from repro.sql.cache_cli import main

        execute(parse_sql("SELECT name FROM products"), shop_db)
        assert main(["stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1 and payload["enabled"] is True

    def test_clear(self, capsys, shop_db):
        from repro.sql.cache_cli import main

        execute(parse_sql("SELECT name FROM products"), shop_db)
        assert main(["clear"]) == 0
        assert rescache.rescache_stats()["entries"] == 0

    def test_budget(self, capsys, small_budget):
        from repro.sql.cache_cli import main

        small_budget(10_000)  # register restore
        assert main(["budget", "12345"]) == 0
        assert rescache.rescache_stats()["max_bytes"] == 12345
        assert main(["budget", "-1"]) == 1

    def test_key(self, capsys):
        from repro.sql.cache_cli import main

        assert main(["key", "SELECT name FROM products WHERE 5 < price"]) == 0
        out = capsys.readouterr().out
        assert "canonical: SELECT name FROM products AS t1 WHERE 5 < price" in out
        assert main(["key", "SELECT FROM"]) == 1

    def test_dispatch_from_main_module(self, capsys):
        from repro.__main__ import main

        assert main(["cache", "stats"]) == 0
        assert "result cache" in capsys.readouterr().out


class TestObservabilityGauges:
    def test_rescache_gauges_in_snapshot(self, shop_db):
        from repro.obs import metrics as obs_metrics

        execute(parse_sql("SELECT name FROM products"), shop_db)
        snapshot = obs_metrics.get_registry().snapshot()
        assert snapshot["repro.sql.rescache.entries"] == 1
        assert snapshot["repro.sql.rescache.bytes"] > 0

    def test_like_and_batch_gauges_registered(self):
        from repro.obs import metrics as obs_metrics

        snapshot = obs_metrics.get_registry().snapshot()
        assert "repro.sql.like_cache.size" in snapshot
        assert "repro.sql.vector.batch_cache.entries" in snapshot


# ----------------------------------------------------------------------
# concurrent access (the serving layer's workers share one cache)
# ----------------------------------------------------------------------
class TestConcurrentAccess:
    """N threads racing hit / store / invalidate on the same canonical
    key: no reader may ever observe a stale or partially-stored result.

    The database flips between exactly two states (4 products and 5),
    so every COUNT(*) a reader gets back must be 4 or 5 — a torn store,
    a result served across an invalidation boundary, or a row-level data
    race would surface as any other value (or an exception)."""

    THREADS = 6
    ITERATIONS = 300

    def test_racing_hit_store_invalidate_never_serves_stale(self, shop_db):
        import threading

        query = parse_sql("SELECT COUNT(*) FROM products")
        table = shop_db.table("products")
        base_rows = list(table.rows)
        valid = {len(base_rows), len(base_rows) + 1}
        extra = (99, "extra", "tools", 1.0)

        errors: list[str] = []
        barrier = threading.Barrier(self.THREADS + 2)
        stop = threading.Event()

        def reader():
            barrier.wait()
            for _ in range(self.ITERATIONS):
                result = rescache.cached_execute(query, shop_db)
                count = result.rows[0][0]
                if count not in valid:
                    errors.append(f"stale/torn count {count!r}")
                peeked = rescache.peek(query, shop_db)
                if peeked is not None and not isinstance(peeked, Exception):
                    if peeked.rows[0][0] not in valid:
                        errors.append(f"stale peek {peeked.rows[0][0]!r}")

        def writer():
            barrier.wait()
            while not stop.is_set():
                table.append(extra)
                table.replace_rows(list(base_rows))

        def invalidator():
            barrier.wait()
            while not stop.is_set():
                rescache.clear_result_cache()

        threads = [
            threading.Thread(target=reader) for _ in range(self.THREADS)
        ]
        threads.append(threading.Thread(target=writer))
        threads.append(threading.Thread(target=invalidator))
        for t in threads:
            t.start()
        for t in threads[: self.THREADS]:
            t.join(timeout=120)
        stop.set()
        for t in threads[self.THREADS :]:
            t.join(timeout=30)

        assert errors == []
        # quiescent: the cache must agree with the settled database state
        final = rescache.cached_execute(query, shop_db)
        assert final.rows[0][0] == len(table.rows)

    def test_racing_hits_share_one_store(self, shop_db):
        """Pure read contention: every thread gets the right rows and the
        returned results are defensive copies, never shared aliases."""
        import threading

        query = parse_sql("SELECT name FROM products ORDER BY name")
        expected = tuple(
            rescache.cached_execute(query, shop_db).rows
        )
        out: list = []
        lock = threading.Lock()
        barrier = threading.Barrier(self.THREADS)

        def reader():
            barrier.wait()
            for _ in range(self.ITERATIONS):
                result = rescache.cached_execute(query, shop_db)
                if tuple(result.rows) != expected:
                    with lock:
                        out.append(("wrong", result.rows))
            with lock:
                out.append(("obj", result))  # keep alive for the id check

        threads = [
            threading.Thread(target=reader) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        wrong = [entry for entry in out if entry[0] == "wrong"]
        finals = [entry[1] for entry in out if entry[0] == "obj"]
        assert wrong == []
        # one private copy per caller, never shared aliases
        assert len({id(result) for result in finals}) == self.THREADS
