"""Unit tests for table statistics, selectivity estimation, and indexes.

Selectivity estimates feed the cost-based optimizer in ``repro.sql.plan``;
they only influence plan shape, never results, so these tests pin the
estimators to sane error bounds on generated data rather than exact
values.  The index tests pin the semantics the planner relies on: NULL
keys never match, and scans come back in base row order.
"""

from __future__ import annotations

import random

import pytest

from repro.data.database import Database, Table
from repro.data.schema import Column, ColumnType, Schema, TableSchema
from repro.sql import index as sqlindex
from repro.sql import stats as sqlstats
from repro.sql.stats import collect_column_stats, table_stats

NUM = ColumnType.NUMBER
TXT = ColumnType.TEXT


def _table(values, name="t", column="x"):
    schema = TableSchema(name, (Column(column, NUM),))
    return Table(schema=schema, rows=[(v,) for v in values])


def _actual_fraction(values, predicate):
    if not values:
        return 0.0
    return sum(1 for v in values if v is not None and predicate(v)) / len(values)


class TestColumnStats:
    def test_exact_counts_and_bounds(self):
        stats = collect_column_stats([3, 1, None, 2, 2, None])
        assert stats.count == 6
        assert stats.nulls == 2
        assert stats.ndv == 3
        assert stats.null_fraction == pytest.approx(2 / 6)
        assert stats.min_key == sqlstats.sort_key(1)
        assert stats.max_key == sqlstats.sort_key(3)

    def test_empty_and_all_null_columns(self):
        empty = collect_column_stats([])
        assert empty.ndv == 0 and empty.eq_selectivity(1) == 0.0
        nulls = collect_column_stats([None, None])
        assert nulls.ndv == 0
        assert nulls.null_fraction == 1.0
        assert nulls.eq_selectivity(1) == 0.0
        assert nulls.range_selectivity("<", 5) == 0.0
        assert nulls.null_selectivity() == 1.0

    def test_histogram_bounds_are_sorted_quantiles(self):
        stats = collect_column_stats(list(range(100)))
        assert list(stats.bounds) == sorted(stats.bounds)
        assert stats.bounds[0] == stats.min_key
        assert stats.bounds[-1] == stats.max_key
        assert len(stats.bounds) == sqlstats.HISTOGRAM_BUCKETS + 1

    def test_ndv_equality_estimate_uniform(self):
        # 10 distinct values, 100 rows: a point lookup should estimate ~10%
        values = [i % 10 for i in range(100)]
        stats = collect_column_stats(values)
        assert stats.ndv == 10
        assert stats.eq_selectivity(3) == pytest.approx(0.1)

    def test_equality_outside_bounds_is_zero(self):
        stats = collect_column_stats([5, 6, 7, 8])
        assert stats.eq_selectivity(100) == 0.0
        assert stats.eq_selectivity(-1) == 0.0
        assert stats.eq_selectivity(6) > 0.0

    def test_range_estimates_within_bounds_on_uniform_data(self):
        rng = random.Random(42)
        values = [rng.randrange(0, 1000) for _ in range(2000)]
        stats = collect_column_stats(values)
        for op, pred in (
            ("<", lambda v, c: v < c),
            ("<=", lambda v, c: v <= c),
            (">", lambda v, c: v > c),
            (">=", lambda v, c: v >= c),
        ):
            for cut in (100, 250, 500, 900):
                est = stats.range_selectivity(op, cut)
                actual = _actual_fraction(values, lambda v: pred(v, cut))
                assert abs(est - actual) < 0.1, (op, cut, est, actual)

    def test_range_estimates_with_nulls_and_skew(self):
        rng = random.Random(7)
        values = [rng.choice((None, 1, 1, 1, 50, 100)) for _ in range(1000)]
        stats = collect_column_stats(values)
        est = stats.range_selectivity("<=", 1)
        actual = _actual_fraction(values, lambda v: v <= 1)
        assert abs(est - actual) < 0.15

    def test_between_selectivity(self):
        values = list(range(100))
        stats = collect_column_stats(values)
        est = stats.between_selectivity(20, 39)
        assert abs(est - 0.2) < 0.1
        assert stats.between_selectivity(None, 5) == 0.0

    def test_in_selectivity_dedupes_and_caps(self):
        values = [i % 4 for i in range(40)]
        stats = collect_column_stats(values)
        single = stats.eq_selectivity(1)
        assert stats.in_selectivity((1, 1, None)) == pytest.approx(single)
        assert stats.in_selectivity(tuple(range(100))) <= 1.0


class TestStatsCache:
    def test_cached_until_mutation(self):
        table = _table([1, 2, 3])
        first = table_stats(table)
        assert table_stats(table) is first
        table.append((4,))
        second = table_stats(table)
        assert second is not first
        assert second.row_count == 4

    def test_replace_rows_invalidates(self):
        table = _table([1, 2, 3])
        before = table_stats(table).column("x")
        table.replace_rows([(9,)] * 5)
        after = table_stats(table).column("x")
        assert before.count == 3 and after.count == 5


class TestHashIndex:
    def test_null_keys_never_match(self):
        rows = [(1, "a"), (None, "b"), (1, "c"), (2, "d")]
        idx = sqlindex.HashIndex(rows, (0,))
        assert idx.lookup(None) == []
        assert idx.lookup(1) == [(1, "a"), (1, "c")]
        assert None not in idx.buckets

    def test_numeric_unification(self):
        # SQL equality unifies 1, 1.0 and TRUE; Python hashing agrees
        rows = [(1,), (1.0,), (True,), (2,)]
        idx = sqlindex.HashIndex(rows, (0,))
        assert len(idx.lookup(1)) == 3

    def test_lookup_many_preserves_row_order_and_dedupes(self):
        rows = [(3,), (1,), (2,), (1,)]
        idx = sqlindex.HashIndex(rows, (0,))
        got = idx.lookup_many(rows, (2, 1, 1, None))
        assert got == [(1,), (2,), (1,)]  # base row order, no duplicates

    def test_multi_column_keys_skip_partial_nulls(self):
        rows = [(1, 2), (1, None), (1, 2)]
        idx = sqlindex.HashIndex(rows, (0, 1))
        assert idx.lookup((1, 2)) == [(1, 2), (1, 2)]
        assert (1, None) not in idx.buckets


class TestSortedIndex:
    def test_range_positions_exclude_nulls(self):
        rows = [(5,), (None,), (1,), (3,), (None,)]
        idx = sqlindex.SortedIndex(rows, 0)
        assert idx.null_count == 2
        assert idx.range_positions(1, 5, True, True) == [0, 2, 3]
        assert idx.range_positions(None, None, True, True) == [0, 2, 3]
        assert idx.range_positions(2, None, True, True) == [0, 3]
        assert idx.range_positions(1, 3, False, False) == []
        assert idx.range_positions(10, 1, True, True) == []

    def test_desc_is_stable_not_reversed(self):
        rows = [(1,), (2,), (1,), (2,)]
        idx = sqlindex.SortedIndex(rows, 0)
        # equal keys must keep base row order in BOTH directions,
        # matching the executor's stable sorts
        assert idx.asc == [0, 2, 1, 3]
        assert idx.desc == [1, 3, 0, 2]

    def test_mixed_types_follow_sort_key_order(self):
        rows = [("b",), (2,), ("a",), (1,), (None,)]
        idx = sqlindex.SortedIndex(rows, 0)
        # numbers sort before text, NULLs first
        assert idx.asc == [4, 3, 1, 2, 0]
        assert idx.range_positions("a", "b", True, True) == [0, 2]


class TestIndexCache:
    def test_cached_until_mutation(self):
        schema = Schema(
            db_id="d",
            tables=(TableSchema("t", (Column("x", NUM),), primary_key="x"),),
        )
        db = Database(schema=schema)
        for i in range(5):
            db.insert("t", (i,))
        table = db.table("t")
        first = sqlindex.hash_index(table, ("x",))
        assert sqlindex.hash_index(table, ("x",)) is first
        db.insert("t", (99,))
        second = sqlindex.hash_index(table, ("x",))
        assert second is not first
        assert second.lookup(99) == [(99,)]
