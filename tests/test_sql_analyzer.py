"""Analyzer tests: validation and schema-linking ground truth."""

import pytest

from repro.errors import AnalysisError
from repro.sql.analyzer import analyze, is_valid
from repro.sql.parser import parse_sql


def check(schema, sql):
    return analyze(parse_sql(sql), schema)


class TestValidation:
    def test_valid_simple(self, shop_schema):
        assert is_valid(parse_sql("SELECT name FROM products"), shop_schema)

    def test_unknown_table(self, shop_schema):
        with pytest.raises(AnalysisError):
            check(shop_schema, "SELECT a FROM missing")

    def test_unknown_column(self, shop_schema):
        with pytest.raises(AnalysisError):
            check(shop_schema, "SELECT missing FROM products")

    def test_unknown_qualified_column(self, shop_schema):
        with pytest.raises(AnalysisError):
            check(shop_schema, "SELECT products.missing FROM products")

    def test_unknown_binding(self, shop_schema):
        with pytest.raises(AnalysisError):
            check(shop_schema, "SELECT x.name FROM products")

    def test_alias_binding_resolves(self, shop_schema):
        assert is_valid(
            parse_sql("SELECT p.name FROM products AS p"), shop_schema
        )

    def test_original_name_hidden_by_alias(self, shop_schema):
        with pytest.raises(AnalysisError):
            check(shop_schema, "SELECT products.name FROM products AS p")

    def test_ambiguous_unqualified_column(self, shop_schema):
        with pytest.raises(AnalysisError):
            check(
                shop_schema,
                "SELECT id FROM products JOIN sales ON "
                "sales.product_id = products.id",
            )

    def test_duplicate_binding(self, shop_schema):
        with pytest.raises(AnalysisError):
            check(shop_schema, "SELECT name FROM products, products")

    def test_set_op_arity_mismatch(self, shop_schema):
        with pytest.raises(AnalysisError):
            check(
                shop_schema,
                "SELECT name, price FROM products UNION "
                "SELECT quarter FROM sales",
            )

    def test_negative_limit(self, shop_schema):
        from repro.sql.ast import Select

        query = parse_sql("SELECT name FROM products LIMIT 1")
        from dataclasses import replace

        bad = replace(query, limit=-1)
        with pytest.raises(AnalysisError):
            analyze(bad, shop_schema)

    def test_order_by_projection_alias_allowed(self, shop_schema):
        assert is_valid(
            parse_sql(
                "SELECT quarter, COUNT(*) AS n FROM sales GROUP BY quarter "
                "ORDER BY n DESC"
            ),
            shop_schema,
        )

    def test_star_only_in_projection_and_count(self, shop_schema):
        assert is_valid(parse_sql("SELECT COUNT(*) FROM sales"), shop_schema)
        with pytest.raises(AnalysisError):
            check(shop_schema, "SELECT SUM(*) FROM sales")

    def test_correlated_subquery_sees_outer_binding(self, shop_schema):
        sql = (
            "SELECT name FROM products AS p WHERE EXISTS "
            "(SELECT * FROM sales AS s WHERE s.product_id = p.id)"
        )
        assert is_valid(parse_sql(sql), shop_schema)


class TestEdgeCases:
    """Edge cases pinning the wrapper's parity with the lint engine."""

    def test_ambiguous_column_inside_subquery_scope(self, shop_schema):
        # the subquery joins both tables, so its unqualified 'id' is
        # ambiguous even though the outer scope has only 'products'
        with pytest.raises(AnalysisError, match="ambiguous"):
            check(
                shop_schema,
                "SELECT name FROM products WHERE id IN "
                "(SELECT id FROM sales JOIN products ON "
                "sales.product_id = products.id)",
            )

    def test_unqualified_column_unique_across_join(self, shop_schema):
        # 'quarter' exists only in sales — unambiguous despite the join
        assert is_valid(
            parse_sql(
                "SELECT quarter FROM products JOIN sales ON "
                "sales.product_id = products.id"
            ),
            shop_schema,
        )

    def test_nested_aggregate_accepted_by_analyzer(self, shop_schema):
        # the legacy analyzer never rejected nested aggregates; the
        # wrapper must preserve that (the linter flags it as E309)
        analysis = check(shop_schema, "SELECT SUM(MAX(price)) FROM products")
        assert ("products", "price") in analysis.columns

        from repro.sql.lint import lint_sql

        report = lint_sql("SELECT SUM(MAX(price)) FROM products", shop_schema)
        assert "E309" in report.codes()

    def test_wrapper_reports_first_error_only(self, shop_schema):
        # multiple problems: analyze() raises on the *first* in traversal
        # order, exactly as the pre-lint analyzer did
        with pytest.raises(AnalysisError, match="alpha"):
            check(shop_schema, "SELECT alpha, beta FROM products")

    def test_analysis_class_is_shared_with_engine(self):
        from repro.sql.analyzer import Analysis as WrapperAnalysis
        from repro.sql.lint.engine import Analysis as EngineAnalysis

        assert WrapperAnalysis is EngineAnalysis


class TestLinkingGroundTruth:
    def test_tables_and_columns_collected(self, shop_schema):
        analysis = check(
            shop_schema,
            "SELECT p.name FROM sales AS s JOIN products AS p ON "
            "s.product_id = p.id WHERE s.quarter = 'Q1'",
        )
        assert analysis.tables == {"sales", "products"}
        assert ("products", "name") in analysis.columns
        assert ("sales", "quarter") in analysis.columns

    def test_values_collected(self, shop_schema):
        analysis = check(
            shop_schema,
            "SELECT name FROM products WHERE price > 5 AND category = 'food'",
        )
        assert 5 in analysis.values
        assert "food" in analysis.values

    def test_subquery_elements_collected(self, shop_schema):
        analysis = check(
            shop_schema,
            "SELECT name FROM products WHERE id IN "
            "(SELECT product_id FROM sales)",
        )
        assert analysis.tables == {"products", "sales"}
        assert ("sales", "product_id") in analysis.columns

    def test_merge(self, shop_schema):
        from repro.sql.analyzer import Analysis

        a = Analysis(tables={"x"}, columns={("x", "a")}, values={1})
        b = Analysis(tables={"y"}, columns={("y", "b")}, values={2})
        a.merge(b)
        assert a.tables == {"x", "y"} and a.values == {1, 2}
