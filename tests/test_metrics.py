"""Metric battery tests (survey Section 5): behaviour of every metric."""

import pytest

from repro.metrics import test_suite_match as suite_match
from repro.metrics import (
    bleu,
    component_match,
    evaluate_parser,
    exact_string_match,
    execution_match,
    fuzzy_match,
    make_database_variants,
    partial_match,
    strict_string_match,
    vis_component_match,
    vis_exact_match,
)


class TestStringMatch:
    def test_strict_requires_identical(self):
        assert strict_string_match("SELECT a FROM t", "SELECT  a  FROM t")
        assert not strict_string_match("select a from t", "SELECT a FROM t")

    def test_exact_forgives_case_and_alias(self):
        assert exact_string_match(
            "select P.name from products p", "SELECT name FROM products"
        )

    def test_exact_rejects_different_structure(self):
        assert not exact_string_match(
            "SELECT a FROM t", "SELECT a FROM t WHERE x = 1"
        )

    def test_exact_false_negative_on_equivalent_rewrites(self):
        """The documented blindness: IN-subquery vs JOIN equivalents."""
        assert not exact_string_match(
            "SELECT name FROM products WHERE id IN "
            "(SELECT product_id FROM sales)",
            "SELECT p.name FROM products p JOIN sales s ON "
            "s.product_id = p.id",
        )

    def test_unparseable_prediction_fails(self):
        assert not exact_string_match("SELECT FROM", "SELECT a FROM t")


class TestBleu:
    def test_identical_scores_one(self):
        assert bleu("SELECT a FROM t", "SELECT a FROM t") == pytest.approx(
            1.0, abs=0.15
        )

    def test_bounds(self):
        score = bleu("SELECT a FROM t WHERE x = 1", "SELECT b FROM u")
        assert 0.0 <= score <= 1.0

    def test_empty_is_zero(self):
        assert bleu("", "SELECT a FROM t") == 0.0

    def test_fuzzy_accepts_single_token_slip(self):
        assert fuzzy_match(
            "SELECT name FROM products WHERE price > 6",
            "SELECT name FROM products WHERE price > 5",
        )

    def test_fuzzy_rejects_structurally_different(self):
        assert not fuzzy_match(
            "SELECT COUNT(*) FROM sales",
            "SELECT name, price FROM products WHERE category = 'x' "
            "ORDER BY price DESC LIMIT 3",
        )

    def test_fuzzy_leniency_is_a_false_positive_source(self):
        """Fuzzy match accepts a wrong-column prediction exact match rejects."""
        gold = "SELECT name FROM products WHERE price > 5"
        wrong = "SELECT category FROM products WHERE price > 5"
        assert not exact_string_match(wrong, gold)
        assert fuzzy_match(wrong, gold)


class TestComponentMatch:
    def test_condition_order_forgiven(self):
        assert component_match(
            "SELECT a FROM t WHERE x = 1 AND y = 2",
            "SELECT a FROM t WHERE y = 2 AND x = 1",
        )

    def test_partial_scores_clause_level(self):
        scores = partial_match(
            "SELECT a FROM t WHERE x = 1 ORDER BY a ASC",
            "SELECT a FROM t WHERE x = 1 ORDER BY a DESC",
        )
        assert scores["select"] and scores["where"]
        assert not scores["order_by"]

    def test_unparseable_gives_all_false(self):
        scores = partial_match("garbage(", "SELECT a FROM t")
        assert not any(scores.values())


class TestExecutionMatch:
    def test_syntactically_different_equivalents_match(self, shop_db):
        assert execution_match(
            "SELECT name FROM products WHERE price > 5",
            "SELECT name FROM products WHERE price > 5.0",
            shop_db,
        )

    def test_semantically_different_fail(self, shop_db):
        assert not execution_match(
            "SELECT name FROM products WHERE price > 5",
            "SELECT name FROM products WHERE price > 10",
            shop_db,
        )

    def test_order_sensitive_only_with_gold_order(self, shop_db):
        # unordered gold: row order is irrelevant
        assert execution_match(
            "SELECT name FROM products ORDER BY name",
            "SELECT name FROM products",
            shop_db,
        )
        # ordered gold: order matters
        assert not execution_match(
            "SELECT name FROM products ORDER BY price ASC",
            "SELECT name FROM products ORDER BY price DESC",
            shop_db,
        )

    def test_known_false_positive_on_coincidence(self, shop_db):
        """Both categories have 2 products: COUNT collides — the naive
        execution match false positive the survey documents."""
        assert execution_match(
            "SELECT COUNT(*) FROM products WHERE category = 'tools'",
            "SELECT COUNT(*) FROM products WHERE category = 'food'",
            shop_db,
        )

    def test_invalid_prediction_fails(self, shop_db):
        assert not execution_match(
            "SELECT missing FROM products", "SELECT name FROM products",
            shop_db,
        )


class TestTestSuiteMatch:
    def test_variants_generated(self, shop_db):
        variants = make_database_variants(shop_db, count=5, seed=1)
        assert len(variants) == 5
        assert variants[0] is shop_db  # original kept
        assert any(
            v.table("products").rows != shop_db.table("products").rows
            for v in variants[1:]
        )

    def test_equivalent_queries_survive_variants(self, shop_db):
        assert suite_match(
            "SELECT name FROM products WHERE price >= 5",
            "SELECT name FROM products WHERE price >= 5.0",
            shop_db,
        )

    def test_kills_coincidental_execution_match(self, shop_db):
        """The false positive above dies under content fuzzing."""
        assert not suite_match(
            "SELECT COUNT(*) FROM products WHERE category = 'tools'",
            "SELECT COUNT(*) FROM products WHERE category = 'food'",
            shop_db,
        )

    def test_self_match_always_passes(self, shop_db):
        sql = "SELECT category, COUNT(*) FROM products GROUP BY category"
        assert suite_match(sql, sql, shop_db)

    def test_fuzzing_never_empties_a_table(self, shop_db):
        # a variant fuzzed to zero rows makes most query pairs vacuously
        # agree; the minimum-keep floor guarantees at least a quarter of
        # the original rows survive in every variant
        for seed in range(25):
            for variant in make_database_variants(shop_db, count=8, seed=seed):
                for name, table in variant.tables.items():
                    original = len(shop_db.table(name).rows)
                    floor = max(1, original // 4)
                    assert len(table.rows) >= floor, (seed, name)


class TestVisMetrics:
    GOLD = "VISUALIZE BAR SELECT category, COUNT(*) FROM products GROUP BY category"

    def test_exact_match_canonicalizes(self):
        assert vis_exact_match(
            "visualize bar select category, count(*) from products "
            "group by category",
            self.GOLD,
        )

    def test_chart_type_mismatch_fails_exact(self):
        assert not vis_exact_match(
            self.GOLD.replace("BAR", "PIE"), self.GOLD
        )

    def test_component_flags(self, shop_db):
        flags = vis_component_match(
            self.GOLD.replace("BAR", "PIE"), self.GOLD, shop_db
        )
        assert not flags["chart_type"]
        assert flags["data"] and flags["axes"]

    def test_wrong_data_detected(self, shop_db):
        flags = vis_component_match(
            "VISUALIZE BAR SELECT quarter, COUNT(*) FROM sales "
            "GROUP BY quarter",
            self.GOLD,
            shop_db,
        )
        assert flags["chart_type"]
        assert not flags["data"]

    def test_unparseable_prediction_all_false(self, shop_db):
        flags = vis_component_match("nonsense", self.GOLD, shop_db)
        assert not any(flags.values())

    def test_set_operation_axes_follow_left_branch(self, shop_db):
        # the axes comparison walks the parsed AST down to the leftmost
        # SELECT, the branch whose columns name the chart's axes
        gold = (
            "VISUALIZE BAR SELECT category, COUNT(*) FROM products "
            "GROUP BY category UNION SELECT quarter, COUNT(*) FROM sales "
            "GROUP BY quarter"
        )
        flags = vis_component_match(gold, gold, shop_db)
        assert all(flags.values())
        swapped = (
            "VISUALIZE BAR SELECT quarter, COUNT(*) FROM sales "
            "GROUP BY quarter UNION SELECT category, COUNT(*) FROM products "
            "GROUP BY category"
        )
        flags = vis_component_match(swapped, gold, shop_db)
        assert flags["chart_type"]
        assert not flags["axes"]


class TestEvaluationLoop:
    def test_report_shape(self, tiny_wikisql):
        from repro.parsers.semantic import GrammarSemanticParser

        report = evaluate_parser(
            GrammarSemanticParser(), tiny_wikisql, limit=25
        )
        assert report.total == 25
        assert 0 <= report.accuracy("execution_match") <= 1
        data = report.as_dict()
        assert data["parser"] == "grammar semantic parser"
        assert set(report.hardness_accuracy()) <= {
            "easy", "medium", "hard", "extra",
        }

    def test_with_test_suite_metric(self, tiny_wikisql):
        from repro.parsers.semantic import GrammarSemanticParser

        report = evaluate_parser(
            GrammarSemanticParser(), tiny_wikisql, with_test_suite=True,
            limit=10,
        )
        assert "test_suite_match" in report.metric_hits or report.total == 10

    def test_metric_ordering_invariant(self, tiny_wikisql):
        """exact ⊆ component and exact ⊆ execution, always."""
        from repro.parsers.semantic import GrammarSemanticParser

        report = evaluate_parser(GrammarSemanticParser(), tiny_wikisql)
        exact = report.metric_hits.get("exact_match", 0)
        assert exact <= report.metric_hits.get("component_match", 0)
        assert exact <= report.metric_hits.get("execution_match", 0)
