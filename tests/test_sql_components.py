"""Component decomposition and hardness classification tests."""

import pytest

from repro.sql.components import classify_hardness, decompose
from repro.sql.parser import parse_sql


def match(a, b):
    return decompose(parse_sql(a)).matches(decompose(parse_sql(b)))


class TestExactSetMatch:
    def test_identical(self):
        assert match("SELECT a FROM t", "SELECT a FROM t")

    def test_condition_order_irrelevant(self):
        assert match(
            "SELECT a FROM t WHERE x = 1 AND y = 2",
            "SELECT a FROM t WHERE y = 2 AND x = 1",
        )

    def test_alias_irrelevant(self):
        assert match(
            "SELECT p.a FROM t p JOIN u q ON p.i = q.i",
            "SELECT x.a FROM t x JOIN u y ON x.i = y.i",
        )

    def test_different_projection_fails(self):
        assert not match("SELECT a FROM t", "SELECT b FROM t")

    def test_missing_condition_fails(self):
        assert not match(
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 1 AND y = 2",
        )

    def test_order_by_sequence_matters(self):
        assert not match(
            "SELECT a FROM t ORDER BY a ASC",
            "SELECT a FROM t ORDER BY a DESC",
        )

    def test_limit_matters(self):
        assert not match(
            "SELECT a FROM t LIMIT 1", "SELECT a FROM t LIMIT 2"
        )

    def test_distinct_matters(self):
        assert not match("SELECT DISTINCT a FROM t", "SELECT a FROM t")

    def test_nested_subqueries_match_recursively(self):
        assert match(
            "SELECT a FROM t WHERE i IN (SELECT j FROM u WHERE x = 1 AND y = 2)",
            "SELECT a FROM t WHERE i IN (SELECT j FROM u WHERE y = 2 AND x = 1)",
        )

    def test_nested_subquery_difference_detected(self):
        assert not match(
            "SELECT a FROM t WHERE i IN (SELECT j FROM u WHERE x = 1)",
            "SELECT a FROM t WHERE i IN (SELECT j FROM u WHERE x = 2)",
        )

    def test_set_op_matters(self):
        assert not match(
            "SELECT a FROM t UNION SELECT a FROM u",
            "SELECT a FROM t EXCEPT SELECT a FROM u",
        )

    def test_partial_scores(self):
        scores = decompose(
            parse_sql("SELECT a FROM t WHERE x = 1")
        ).partial_scores(decompose(parse_sql("SELECT b FROM t WHERE x = 1")))
        assert scores["from"] and scores["where"]
        assert not scores["select"]


class TestHardness:
    @pytest.mark.parametrize(
        "sql,expected",
        [
            ("SELECT a FROM t", "easy"),
            ("SELECT a FROM t WHERE x = 1", "easy"),
            ("SELECT COUNT(*) FROM t WHERE x = 1", "easy"),
            ("SELECT a, b FROM t WHERE x = 1 AND y = 2", "medium"),
            (
                "SELECT a FROM t JOIN u ON t.i = u.i WHERE u.x = 1",
                "medium",
            ),
            (
                "SELECT g, COUNT(*) FROM t GROUP BY g "
                "ORDER BY COUNT(*) DESC LIMIT 3",
                "hard",
            ),
            (
                "SELECT a FROM t WHERE i IN (SELECT j FROM u WHERE x = 1)",
                "hard",
            ),
            (
                "SELECT a FROM t WHERE x = 1 UNION SELECT a FROM t "
                "WHERE y = 2",
                "extra",
            ),
        ],
    )
    def test_levels(self, sql, expected):
        assert classify_hardness(parse_sql(sql)) == expected

    def test_all_levels_reachable(self, tiny_spider):
        levels = {e.hardness for e in tiny_spider.examples}
        assert {"easy", "medium"} <= levels
        assert levels <= {"easy", "medium", "hard", "extra"}
