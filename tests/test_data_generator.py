"""Generator and domain-library tests."""

import pytest

from repro.data.domains import all_domains, domain_by_name, domain_names
from repro.data.generator import DatabaseGenerator, GeneratorConfig


class TestDomains:
    def test_ten_domains(self):
        assert len(all_domains()) == 10
        assert len(set(domain_names())) == 10

    def test_all_schemas_validate(self):
        for domain in all_domains():
            domain.schema.validate()

    def test_lookup_by_name(self):
        assert domain_by_name("sales").name == "sales"
        with pytest.raises(KeyError):
            domain_by_name("nonexistent")

    def test_every_domain_has_foreign_keys(self):
        for domain in all_domains():
            assert domain.schema.foreign_keys, domain.name

    def test_every_domain_has_synonyms_somewhere(self):
        for domain in all_domains():
            has_synonym = any(
                column.synonyms
                for table in domain.schema.tables
                for column in table.columns
            )
            assert has_synonym, domain.name


class TestGenerator:
    def test_deterministic_per_seed(self):
        domain = domain_by_name("sales")
        a = DatabaseGenerator(seed=3).populate(domain, rows_per_table=8)
        b = DatabaseGenerator(seed=3).populate(domain, rows_per_table=8)
        for name in a.tables:
            assert a.tables[name].rows == b.tables[name].rows

    def test_different_seeds_differ(self):
        domain = domain_by_name("sales")
        a = DatabaseGenerator(seed=1).populate(domain, rows_per_table=12)
        b = DatabaseGenerator(seed=2).populate(domain, rows_per_table=12)
        assert any(
            a.tables[name].rows != b.tables[name].rows for name in a.tables
        )

    def test_primary_keys_unique(self):
        for domain in all_domains():
            db = DatabaseGenerator(seed=5).populate(domain, rows_per_table=15)
            for table in db.tables.values():
                pk = table.schema.primary_key
                if pk is None:
                    continue
                values = table.column_values(pk)
                assert len(values) == len(set(values))

    def test_foreign_keys_reference_parents(self):
        for domain in all_domains():
            db = DatabaseGenerator(seed=5).populate(domain, rows_per_table=15)
            for fk in domain.schema.foreign_keys:
                parents = set(
                    db.table(fk.ref_table).column_values(fk.ref_column)
                )
                for value in db.table(fk.table).column_values(fk.column):
                    if value is not None:
                        assert value in parents

    def test_null_fraction_zero_gives_no_nulls(self):
        config = GeneratorConfig(null_fraction=0.0)
        db = DatabaseGenerator(seed=5, config=config).populate(
            domain_by_name("sales"), rows_per_table=20
        )
        for table in db.tables.values():
            for row in table.rows:
                assert all(v is not None for v in row)

    def test_dirty_fraction_produces_dirty_text(self):
        config = GeneratorConfig(dirty_fraction=0.9, null_fraction=0.0)
        db = DatabaseGenerator(seed=5, config=config).populate(
            domain_by_name("sales"), rows_per_table=30
        )
        cells = [
            value
            for table in db.tables.values()
            for row in table.rows
            for value in row
            if isinstance(value, str)
        ]
        dirty = [
            c
            for c in cells
            if c != c.strip() or c.isupper() or c.endswith(".")
        ]
        assert dirty

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(rows_per_table=-1)
        with pytest.raises(ValueError):
            GeneratorConfig(null_fraction=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(dirty_fraction=-0.1)

    def test_rows_per_table_respected(self):
        db = DatabaseGenerator(seed=1).populate(
            domain_by_name("movies"), rows_per_table=7
        )
        for table in db.tables.values():
            assert len(table) == 7
