"""Static output-schema typer tests: units plus the runtime differential."""

from __future__ import annotations

import pytest

from repro.sql.executor import execute
from repro.sql.parser import parse_sql
from repro.sql.typer import ColType, infer_output_schema
from repro.sql.unparser import to_sql
from repro.vis.spec import field_type


def infer(sql: str, schema):
    return infer_output_schema(parse_sql(sql), schema)


class TestNames:
    def test_plain_columns(self, shop_schema):
        out = infer("SELECT name, price FROM products", shop_schema)
        assert out.names() == ("name", "price")

    def test_alias_kept_verbatim(self, shop_schema):
        out = infer("SELECT price AS Cost FROM products", shop_schema)
        assert out.names() == ("Cost",)

    def test_expression_name_is_lowered_sql(self, shop_schema):
        out = infer("SELECT Price * 2 FROM products", shop_schema)
        assert out.names() == ("price * 2",)

    def test_star_expands_to_binding_column(self, shop_schema):
        out = infer("SELECT * FROM products", shop_schema)
        assert out.names() == (
            "products.id",
            "products.name",
            "products.category",
            "products.price",
        )
        assert not out.incomplete

    def test_unknown_table_star_is_incomplete(self, shop_schema):
        out = infer("SELECT * FROM mystery", shop_schema)
        assert out.incomplete
        assert out.arity == 0

    def test_set_operation_takes_left_names(self, shop_schema):
        out = infer(
            "SELECT name FROM products UNION "
            "SELECT quarter FROM sales",
            shop_schema,
        )
        assert out.names() == ("name",)


class TestTypes:
    def test_column_types(self, shop_schema):
        out = infer("SELECT name, price FROM products", shop_schema)
        assert out.columns[0].type is ColType.TEXT
        assert out.columns[1].type is ColType.NUMBER

    def test_primary_key_not_nullable(self, shop_schema):
        out = infer("SELECT id, price FROM products", shop_schema)
        assert not out.columns[0].nullable
        assert out.columns[1].nullable

    def test_count_is_non_null_number(self, shop_schema):
        out = infer("SELECT COUNT(*) FROM products", shop_schema)
        assert out.columns[0].type is ColType.NUMBER
        assert not out.columns[0].nullable

    def test_sum_and_avg_are_nullable(self, shop_schema):
        out = infer("SELECT SUM(price), AVG(price) FROM products", shop_schema)
        assert all(c.type is ColType.NUMBER for c in out.columns)
        assert all(c.nullable for c in out.columns)

    def test_min_max_propagate_argument_type(self, shop_schema):
        out = infer("SELECT MIN(name), MAX(price) FROM products", shop_schema)
        assert out.columns[0].type is ColType.TEXT
        assert out.columns[1].type is ColType.NUMBER

    def test_arithmetic_is_number(self, shop_schema):
        out = infer("SELECT price + 1 FROM products", shop_schema)
        assert out.columns[0].type is ColType.NUMBER

    def test_literal_types(self, shop_schema):
        out = infer(
            "SELECT 1, 'word', '2024-03-01', NULL FROM products",
            shop_schema,
        )
        assert [c.type for c in out.columns] == [
            ColType.NUMBER,
            ColType.TEXT,
            ColType.TEMPORAL,
            ColType.NULL,
        ]

    def test_left_join_pads_right_side_nullable(self, shop_schema):
        out = infer(
            "SELECT products.id, sales.id FROM products "
            "LEFT JOIN sales ON products.id = sales.product_id",
            shop_schema,
        )
        # both are primary keys, but the padded side can surface NULL
        assert not out.columns[0].nullable
        assert out.columns[1].nullable

    def test_scalar_subquery_takes_inner_type(self, shop_schema):
        out = infer(
            "SELECT (SELECT MAX(price) FROM products) FROM sales",
            shop_schema,
        )
        assert out.columns[0].type is ColType.NUMBER
        assert out.columns[0].nullable

    def test_set_operation_unifies_types(self, shop_schema):
        same = infer(
            "SELECT name FROM products UNION SELECT category FROM products",
            shop_schema,
        )
        assert same.columns[0].type is ColType.TEXT
        mixed = infer(
            "SELECT price FROM products UNION SELECT name FROM products",
            shop_schema,
        )
        assert mixed.columns[0].type is ColType.UNKNOWN

    def test_set_operation_null_branch_defers(self, shop_schema):
        out = infer(
            "SELECT NULL FROM products UNION SELECT price FROM products",
            shop_schema,
        )
        assert out.columns[0].type is ColType.NUMBER

    def test_unresolvable_column_is_unknown(self, shop_schema):
        out = infer("SELECT mystery FROM products", shop_schema)
        assert out.columns[0].type is ColType.UNKNOWN

    def test_vega_mapping(self):
        assert ColType.NUMBER.vega == "quantitative"
        assert ColType.TEMPORAL.vega == "temporal"
        assert ColType.TEXT.vega == "nominal"
        assert ColType.BOOL.vega == "nominal"
        assert ColType.NULL.vega == "nominal"
        assert ColType.UNKNOWN.vega is None


class TestRuntimeDifferential:
    """Static inference must agree with what execution actually produces.

    For every gold query of the generated corpora: output-column names
    must match the executor's exactly; every statically typed column must
    classify to the same Vega-Lite field type the runtime
    :func:`repro.vis.spec.field_type` assigns (skipping UNKNOWN columns
    and columns with no non-null values, where the runtime defaults to
    nominal without evidence); and a column inferred non-nullable must
    never contain NULL.
    """

    def check(self, query, db) -> None:
        inferred = infer_output_schema(query, db.schema)
        result = execute(query, db)
        if inferred.incomplete:
            return
        assert list(result.columns) == list(inferred.names()), to_sql(query)
        for index, column in enumerate(inferred.columns):
            values = [row[index] for row in result.rows]
            if column.type.vega is None:
                continue
            if not column.nullable:
                assert all(v is not None for v in values), to_sql(query)
            if not any(v is not None for v in values):
                continue
            assert field_type(values) == column.type.vega, (
                to_sql(query),
                column,
            )

    def test_spider_corpus(self, tiny_spider):
        for example in tiny_spider.examples:
            db = tiny_spider.database(example.db_id)
            self.check(parse_sql(example.sql), db)

    def test_wikisql_corpus(self, tiny_wikisql):
        for example in tiny_wikisql.examples:
            db = tiny_wikisql.database(example.db_id)
            self.check(parse_sql(example.sql), db)

    def test_nvbench_corpus(self, tiny_nvbench):
        from repro.vis.vql import parse_vql

        assert tiny_nvbench.examples
        for example in tiny_nvbench.examples:
            db = tiny_nvbench.database(example.db_id)
            self.check(parse_vql(example.vql).query, db)
