"""Tests for the parallel evaluation driver (repro.eval.parallel).

The invariant under test everywhere: parallel execution is an
implementation detail — verdicts, reports, and orderings are identical
to the serial path for the same seeds.
"""

from __future__ import annotations

import pytest

from repro.eval import parallel_map, resolve_workers
from repro.eval.parallel import _chunk_bounds


def _square(x):  # module-level: picklable for the process pool
    return x * x


def _boom(x):
    if x == 13:
        raise ValueError("unlucky")
    return x


class TestParallelMap:
    def test_serial_when_one_worker(self):
        assert parallel_map(_square, range(10), max_workers=1) == [
            x * x for x in range(10)
        ]

    def test_serial_when_tiny(self):
        # below MIN_PARALLEL_ITEMS no pool is spun up
        assert parallel_map(_square, range(3), max_workers=8) == [0, 1, 4]

    def test_process_pool_preserves_order(self):
        items = list(range(50))
        assert parallel_map(_square, items, max_workers=4) == [
            x * x for x in items
        ]

    def test_explicit_chunk_size(self):
        assert parallel_map(
            _square, range(20), max_workers=2, chunk_size=3
        ) == [x * x for x in range(20)]

    def test_unpicklable_fn_falls_back_to_threads(self):
        from repro.eval import parallel as par

        before = par._FALLBACKS.value
        got = parallel_map(lambda x: x + 1, list(range(20)), max_workers=4)
        assert got == list(range(1, 21))
        assert par._FALLBACKS.value == before + 1

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="unlucky"):
            parallel_map(_boom, range(20), max_workers=2)

    def test_resolve_workers(self):
        assert resolve_workers(4) == 4
        assert resolve_workers(0) == 1
        assert resolve_workers(None) >= 1

    def test_chunk_bounds_cover_range(self):
        for n, workers, size in ((1, 2, None), (100, 4, None), (7, 3, 2)):
            bounds = _chunk_bounds(n, workers, size)
            flat = [i for lo, hi in bounds for i in range(lo, hi)]
            assert flat == list(range(n))


class TestMetricWrappers:
    def test_execution_match_many_matches_serial(self, tiny_spider):
        from repro.metrics import execution_match_many

        examples = tiny_spider.split("dev").examples[:30]
        jobs = [
            (e.sql, e.sql, tiny_spider.database(e.db_id)) for e in examples
        ]
        serial = execution_match_many(jobs, max_workers=1)
        parallel = execution_match_many(jobs, max_workers=4)
        assert parallel == serial
        assert all(serial)  # gold vs gold always matches

    def test_test_suite_match_many_matches_serial(self, tiny_spider):
        from repro.metrics import test_suite_match_many

        examples = tiny_spider.split("dev").examples[:16]
        jobs = [
            (e.sql, e.sql, tiny_spider.database(e.db_id)) for e in examples
        ]
        serial = test_suite_match_many(jobs, num_variants=4, max_workers=1)
        parallel = test_suite_match_many(jobs, num_variants=4, max_workers=4)
        assert parallel == serial


class TestEvaluateParserParallel:
    @pytest.fixture(scope="class")
    def trained(self, tiny_spider):
        from repro.parsers import GrammarSemanticParser

        parser = GrammarSemanticParser()
        parser.train(
            tiny_spider.split("train").examples, tiny_spider.databases
        )
        return parser

    def test_parallel_report_equals_serial(self, trained, tiny_spider):
        from repro.metrics import evaluate_parser

        serial = evaluate_parser(
            trained, tiny_spider, with_test_suite=True, limit=30
        )
        parallel = evaluate_parser(
            trained,
            tiny_spider,
            with_test_suite=True,
            limit=30,
            max_workers=4,
        )
        for attr in (
            "total",
            "metric_hits",
            "hardness_totals",
            "hardness_hits",
            "parse_failures",
            "example_hits",
        ):
            assert getattr(parallel, attr) == getattr(serial, attr), attr

    def test_parallel_report_without_test_suite(self, trained, tiny_spider):
        from repro.metrics import evaluate_parser

        serial = evaluate_parser(trained, tiny_spider, limit=25)
        parallel = evaluate_parser(
            trained, tiny_spider, limit=25, max_workers=2
        )
        assert parallel.example_hits == serial.example_hits
        assert parallel.metric_hits == serial.metric_hits
        assert "test_suite_match" not in parallel.example_hits
