"""Schema model tests: lookups, graph, join paths, validation."""

import pytest

from repro.data.schema import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.errors import AnalysisError


class TestLookups:
    def test_table_case_insensitive(self, shop_schema):
        assert shop_schema.table("PRODUCTS").name == "products"

    def test_missing_table_raises(self, shop_schema):
        with pytest.raises(AnalysisError):
            shop_schema.table("nope")

    def test_column_case_insensitive(self, shop_schema):
        assert shop_schema.table("products").column("PRICE").name == "price"

    def test_missing_column_raises(self, shop_schema):
        with pytest.raises(AnalysisError):
            shop_schema.table("products").column("nope")

    def test_all_columns_order(self, shop_schema):
        pairs = shop_schema.all_columns()
        assert pairs[0] == ("products", shop_schema.table("products").columns[0])
        assert len(pairs) == 8

    def test_mentions_include_synonyms(self):
        column = Column("unit_price", ColumnType.NUMBER, synonyms=("cost",))
        assert column.mentions() == ("unit price", "cost")


class TestForeignKeys:
    def test_between_either_direction(self, shop_schema):
        assert shop_schema.foreign_keys_between("products", "sales")
        assert shop_schema.foreign_keys_between("sales", "products")
        assert not shop_schema.foreign_keys_between("products", "products")

    def test_join_path_direct(self, shop_schema):
        assert shop_schema.join_path("sales", "products") == [
            "sales", "products",
        ]

    def test_join_path_multi_hop(self):
        schema = Schema(
            db_id="hop",
            tables=(
                TableSchema("a", (Column("id"),), primary_key="id"),
                TableSchema("b", (Column("id"), Column("a_id"))),
                TableSchema("c", (Column("id"), Column("b_id"))),
            ),
            foreign_keys=(
                ForeignKey("b", "a_id", "a", "id"),
                ForeignKey("c", "b_id", "b", "id"),
            ),
        )
        assert schema.join_path("c", "a") == ["c", "b", "a"]

    def test_join_path_disconnected_raises(self):
        schema = Schema(
            db_id="dis",
            tables=(
                TableSchema("a", (Column("id"),)),
                TableSchema("b", (Column("id"),)),
            ),
        )
        with pytest.raises(AnalysisError):
            schema.join_path("a", "b")


class TestGraph:
    def test_graph_structure(self, shop_schema):
        graph = shop_schema.graph()
        assert graph.has_node("table:products")
        assert graph.has_node("column:products.price")
        assert graph.has_edge("table:products", "column:products.price")
        # FK edge between column nodes
        assert graph.has_edge(
            "column:sales.product_id", "column:products.id"
        )

    def test_primary_key_edge_kind(self, shop_schema):
        graph = shop_schema.graph()
        edge = graph.edges["table:products", "column:products.id"]
        assert edge["kind"] == "primary"


class TestValidation:
    def test_valid_schema_passes(self, shop_schema):
        shop_schema.validate()

    def test_duplicate_table_rejected(self):
        schema = Schema(
            db_id="dup",
            tables=(
                TableSchema("t", (Column("a"),)),
                TableSchema("T", (Column("b"),)),
            ),
        )
        with pytest.raises(AnalysisError):
            schema.validate()

    def test_duplicate_column_rejected(self):
        schema = Schema(
            db_id="dup",
            tables=(TableSchema("t", (Column("a"), Column("A"))),),
        )
        with pytest.raises(AnalysisError):
            schema.validate()

    def test_missing_primary_key_rejected(self):
        schema = Schema(
            db_id="pk",
            tables=(TableSchema("t", (Column("a"),), primary_key="nope"),),
        )
        with pytest.raises(AnalysisError):
            schema.validate()

    def test_dangling_foreign_key_rejected(self):
        schema = Schema(
            db_id="fk",
            tables=(TableSchema("t", (Column("a"),)),),
            foreign_keys=(ForeignKey("t", "a", "u", "id"),),
        )
        with pytest.raises(AnalysisError):
            schema.validate()

    def test_column_type_family(self):
        assert ColumnType.NUMBER.family == "number"
        assert ColumnType.BOOLEAN.family == "number"
        assert ColumnType.TEXT.family == "text"
        assert ColumnType.DATE.family == "text"
