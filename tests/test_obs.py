"""The observability subsystem: spans, metrics, and engine instrumentation."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sql.executor import execute
from repro.sql.parser import parse_sql
from repro.sql.plan import compile_sql, plan_for


class FakeClock:
    """A deterministic clock: every reading advances by *step* seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.t
        self.t += self.step
        return value


@pytest.fixture
def clock():
    fake = FakeClock()
    previous = obs_trace.set_clock(fake)
    yield fake
    obs_trace.set_clock(previous)


# ----------------------------------------------------------------------
# span trees
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_null_singleton(self):
        assert not obs_trace.enabled()
        assert obs_trace.span("anything", key=1) is obs_trace.NULL_SPAN
        with obs_trace.span("nested") as s:
            assert s is obs_trace.NULL_SPAN
            s.set_attr("x", 1).incr("y")  # all no-ops, chainable
        assert obs_trace.take_roots() == []

    def test_nesting_builds_parent_child_tree(self):
        obs_trace.enable()
        with obs_trace.span("root") as root:
            with obs_trace.span("child-a"):
                with obs_trace.span("grandchild"):
                    pass
            with obs_trace.span("child-b"):
                pass
        roots = obs_trace.take_roots()
        assert roots == [root]
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert [s.name for s in root.walk()] == [
            "root", "child-a", "grandchild", "child-b",
        ]

    def test_exception_closes_span_with_error(self):
        obs_trace.enable()
        with pytest.raises(ValueError):
            with obs_trace.span("root"):
                with obs_trace.span("failing"):
                    raise ValueError("boom")
        (root,) = obs_trace.take_roots()
        assert root.error is True
        failing = root.children[0]
        assert failing.error is True
        assert failing.attrs["error_type"] == "ValueError"
        assert failing.duration is not None  # closed despite the raise
        # the stack fully unwound: new spans are fresh roots
        with obs_trace.span("after"):
            pass
        assert [s.name for s in obs_trace.take_roots()] == ["after"]

    def test_injectable_clock_gives_exact_durations(self, clock):
        obs_trace.enable()
        with obs_trace.span("outer"):
            with obs_trace.span("inner"):
                pass
        (outer,) = obs_trace.take_roots()
        inner = outer.children[0]
        # enter/exit order: outer@0, inner@1, inner-exit@2, outer-exit@3
        assert inner.duration == pytest.approx(1.0)
        assert outer.duration == pytest.approx(3.0)

    def test_attrs_counters_and_annotate(self):
        obs_trace.enable()
        with obs_trace.span("work", stage="x") as s:
            assert obs_trace.current_span() is s
            obs_trace.annotate(rows=7)
            s.incr("probes").incr("probes")
        assert s.attrs == {"stage": "x", "rows": 7}
        assert s.counters == {"probes": 2}
        assert obs_trace.current_span() is None

    def test_to_dict_is_json_safe(self):
        obs_trace.enable()
        with obs_trace.span("root", q=parse_sql("SELECT 1"), n=3) as s:
            pass
        payload = s.to_dict()
        text = json.dumps(payload)  # must not raise
        assert payload["attrs"]["n"] == 3
        assert isinstance(payload["attrs"]["q"], str)  # repr'd
        assert "duration_ms" in payload
        assert "root" in text

    def test_render_tree_shape(self, clock):
        obs_trace.enable()
        with obs_trace.span("root") as root:
            with obs_trace.span("child", rows=2):
                pass
        lines = root.render().splitlines()
        assert lines[0].startswith("root (")
        assert lines[1].startswith("  child (")
        assert "rows=2" in lines[1]

    def test_tracing_contextmanager_collects_and_restores(self):
        assert not obs_trace.enabled()
        with obs_trace.tracing() as roots:
            assert obs_trace.enabled()
            with obs_trace.span("inside"):
                pass
            assert roots == []  # populated only at block exit
        assert not obs_trace.enabled()
        assert [s.name for s in roots] == ["inside"]

    def test_root_ring_is_bounded(self):
        obs_trace.enable()
        for i in range(obs_trace._MAX_ROOTS + 10):
            with obs_trace.span(f"s{i}"):
                pass
        roots = obs_trace.take_roots()
        assert len(roots) == obs_trace._MAX_ROOTS
        assert roots[0].name == "s10"  # oldest were evicted


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_fetch_or_create(self):
        registry = obs_metrics.MetricsRegistry()
        c = registry.counter("repro.test.hits")
        c.inc()
        c.inc(4)
        assert registry.counter("repro.test.hits") is c
        assert c.snapshot() == 5

    def test_kind_mismatch_raises(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("repro.test.thing")
        with pytest.raises(TypeError):
            registry.gauge("repro.test.thing")
        with pytest.raises(TypeError):
            registry.histogram("repro.test.thing")

    def test_gauge_explicit_and_callback(self):
        registry = obs_metrics.MetricsRegistry()
        g = registry.gauge("repro.test.depth")
        g.set(3)
        assert g.value == 3
        backing = {"v": 10}
        fn_gauge = registry.gauge("repro.test.live", fn=lambda: backing["v"])
        assert fn_gauge.value == 10
        backing["v"] = 11
        assert fn_gauge.value == 11
        registry.reset()
        assert g.value == 0  # explicit gauge zeroed
        assert fn_gauge.value == 11  # callback gauge keeps its source

    def test_histogram_bucket_edges(self):
        h = obs_metrics.Histogram("repro.test.lat", boundaries=(1.0, 2.0, 5.0))
        h.observe(0.5)   # below first edge  -> bucket le_1
        h.observe(1.0)   # exactly on edge   -> bucket le_1 (le semantics)
        h.observe(1.5)   # between           -> bucket le_2
        h.observe(5.0)   # on the last edge  -> bucket le_5
        h.observe(99.0)  # above everything  -> overflow
        snap = h.snapshot()
        assert snap["buckets"] == {"le_1": 2, "le_2": 1, "le_5": 1, "le_inf": 1}
        assert snap["count"] == 5
        assert snap["mean"] == pytest.approx((0.5 + 1.0 + 1.5 + 5.0 + 99.0) / 5)

    def test_histogram_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            obs_metrics.Histogram("h", boundaries=())
        with pytest.raises(ValueError):
            obs_metrics.Histogram("h", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            obs_metrics.Histogram("h", boundaries=(1.0, 1.0))

    def test_registry_snapshot_and_reset(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("repro.test.a").inc(2)
        registry.histogram("repro.test.b", boundaries=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["repro.test.a"] == 2
        assert snap["repro.test.b"]["count"] == 1
        registry.reset()
        snap = registry.snapshot()
        assert snap["repro.test.a"] == 0
        assert snap["repro.test.b"]["count"] == 0

    def test_default_registry_carries_cache_gauges(self, shop_db):
        compile_sql("SELECT name FROM products", shop_db.schema, shop_db)
        snap = obs_metrics.get_registry().snapshot()
        assert "repro.sql.plan.cache.hits" in snap
        assert "repro.sql.parse.cache.misses" in snap


# ----------------------------------------------------------------------
# engine instrumentation
# ----------------------------------------------------------------------
QUERIES = [
    "SELECT name, price FROM products WHERE price > 5 ORDER BY price DESC",
    "SELECT category, COUNT(*) FROM products GROUP BY category",
    "SELECT p.name, SUM(s.quantity) FROM products AS p JOIN sales AS s "
    "ON p.id = s.product_id GROUP BY p.name",
    "SELECT name FROM products WHERE id IN "
    "(SELECT product_id FROM sales WHERE quantity > 2)",
]


class TestEngineInstrumentation:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_tracing_does_not_change_results(self, shop_db, sql):
        query = parse_sql(sql)
        plain = execute(query, shop_db)
        with obs_trace.tracing():
            traced = execute(query, shop_db)
        assert traced.columns == plain.columns
        assert traced.rows == plain.rows
        assert traced.ordered == plain.ordered

    def test_execute_span_tree_matches_explain_actuals(self, shop_db):
        sql = QUERIES[2]
        plan = compile_sql(sql, shop_db.schema, shop_db)
        with obs_trace.tracing() as roots:
            result = execute(parse_sql(sql), shop_db)
        (root,) = [s for s in roots if s.name == "repro.sql.execute"]
        assert root.attrs["rows"] == len(result.rows)
        op_rows = [
            s.attrs["actual_rows"]
            for s in root.walk()
            if s.name.startswith("sql.op.") and "actual_rows" in s.attrs
        ]
        assert op_rows  # operator subtree exists with recorded actuals
        explain_text = plan.explain(shop_db)
        for actual in op_rows:
            assert f"actual_rows={actual}" in explain_text

    def test_run_traced_matches_run(self, shop_db):
        plan = compile_sql(QUERIES[0], shop_db.schema, shop_db)
        expected = plan.run(shop_db)
        result, state = plan.run_traced(shop_db)
        assert result.rows == expected.rows
        assert state.timings[plan.root.nid] >= 0.0
        assert state.actuals  # per-operator row counts recorded

    def test_pipeline_trace_carries_span(self, sales_db):
        from repro import NaturalLanguageInterface

        nli = NaturalLanguageInterface(sales_db)
        answer = nli.ask("How many products are there?")
        assert answer.trace.span is None  # tracing off: no span
        with obs_trace.tracing():
            answer = nli.ask("How many customers are there?")
        span = answer.trace.span
        assert span is not None and span.name == "repro.pipeline.run"
        stage_names = [c.name for c in span.children]
        assert "repro.pipeline.stage.translate" in stage_names
        assert "repro.pipeline.stage.execute" in stage_names

    def test_pipeline_metrics_accumulate(self, sales_db):
        from repro import NaturalLanguageInterface

        registry = obs_metrics.get_registry()
        runs = registry.counter("repro.pipeline.runs")
        before = runs.snapshot()
        NaturalLanguageInterface(sales_db).ask("How many products are there?")
        assert runs.snapshot() == before + 1
        hist = registry.histogram("repro.pipeline.stage.execute.seconds")
        assert hist.count >= 1

    def test_metric_counters_for_evaluation(self, shop_db):
        from repro.metrics.execution import execution_match
        from repro.metrics.test_suite import test_suite_match

        registry = obs_metrics.get_registry()
        gold = "SELECT name FROM products WHERE price > 5"
        assert execution_match(gold, gold, shop_db)
        assert registry.counter("repro.metrics.execution.matches").snapshot() >= 1
        assert test_suite_match(gold, gold, shop_db, num_variants=3)
        assert (
            registry.counter("repro.metrics.test_suite.accepted").snapshot() >= 1
        )

    def test_session_turn_counter(self, sales_db):
        from repro.systems.architectures import ParsingBasedSystem
        from repro.systems.session import InteractiveSession

        registry = obs_metrics.get_registry()
        turns = registry.counter("repro.session.turns")
        before = turns.snapshot()
        session = InteractiveSession(system=ParsingBasedSystem(), db=sales_db)
        session.ask("How many products are there?")
        assert turns.snapshot() == before + 1


# ----------------------------------------------------------------------
# trace CLI
# ----------------------------------------------------------------------
class TestTraceCLI:
    def test_trace_cli_prints_span_tree(self, capsys):
        from repro.obs.trace_cli import main

        rc = main(["SELECT name FROM products WHERE price > 500"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro.sql.query" in out
        assert "repro.sql.execute" in out
        assert "sql.op." in out
        assert "actual_rows=" in out

    def test_trace_cli_rows_match_explain(self, capsys):
        import re

        from repro.obs.trace_cli import main as trace_main
        from repro.sql.explain_cli import main as explain_main

        sql = "SELECT name FROM products WHERE price > 500"
        trace_main([sql])
        trace_out = capsys.readouterr().out
        explain_main([sql])
        explain_out = capsys.readouterr().out
        trace_rows = set(re.findall(r"actual_rows=(\d+)", trace_out))
        explain_rows = set(re.findall(r"actual_rows=(\d+)", explain_out))
        assert trace_rows and trace_rows == explain_rows

    def test_trace_cli_json_and_error(self, capsys):
        from repro.obs.trace_cli import main

        rc = main(["SELECT name FROM products", "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("[") :])
        assert payload[0]["name"] == "repro.sql.query"

        rc = main(["SELECT nope FROM nothing"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "trace:" in captured.err

    def test_trace_cli_leaves_tracing_disabled(self):
        from repro.obs.trace_cli import main

        main(["SELECT name FROM products"])
        assert not obs_trace.enabled()


# ----------------------------------------------------------------------
# thread safety under concurrent serving workers
# ----------------------------------------------------------------------
class TestMetricsThreadSafety:
    """The serving layer increments shared instruments from many worker
    threads; the += read-modify-writes must not drop updates."""

    THREADS = 8
    ITERATIONS = 10_000

    def _hammer(self, fn):
        import threading

        barrier = threading.Barrier(self.THREADS)

        def worker():
            barrier.wait()  # maximal contention: everyone starts together
            for _ in range(self.ITERATIONS):
                fn()

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

    def test_counter_increments_are_exact(self):
        registry = obs_metrics.MetricsRegistry()
        counter = registry.counter("repro.test.hammer")
        self._hammer(counter.inc)
        assert counter.snapshot() == self.THREADS * self.ITERATIONS

    def test_histogram_observations_are_exact_and_consistent(self):
        registry = obs_metrics.MetricsRegistry()
        histogram = registry.histogram(
            "repro.test.hammer.seconds", boundaries=(0.001, 0.01, 0.1)
        )
        values = [0.0005, 0.005, 0.05, 0.5]
        state = {"i": 0}

        def observe():
            state["i"] += 1  # GIL-atomic enough for a test driver
            histogram.observe(values[state["i"] % len(values)])

        self._hammer(observe)
        expected = self.THREADS * self.ITERATIONS
        snap = histogram.snapshot()
        assert snap["count"] == expected
        # internal consistency: buckets account for every observation
        assert sum(snap["buckets"].values()) == expected
        assert snap["sum"] == pytest.approx(
            sum(values) / len(values) * expected, rel=1e-6
        )

    def test_callback_gauge_snapshot_during_mutation(self):
        import threading

        registry = obs_metrics.MetricsRegistry()
        box = {"v": 0}
        gauge = registry.gauge("repro.test.hammer.depth", fn=lambda: box["v"])
        stop = threading.Event()
        seen: list[float] = []

        def reader():
            while not stop.is_set():
                seen.append(gauge.value)

        thread = threading.Thread(target=reader)
        thread.start()
        for i in range(5000):
            box["v"] = i
        stop.set()
        thread.join(timeout=30)
        assert seen and all(0 <= v < 5000 for v in seen)
