"""Dataset builder tests across all Table 1 families."""

import pytest

from repro.datasets.base import Dataset, Example, Split
from repro.datasets.knowledge import build_bird_like
from repro.datasets.multilingual import translate_dataset
from repro.datasets.multiturn import build_dial_vis_like, build_sparc_like
from repro.datasets.robustness import make_dr_spider_suite
from repro.datasets.sql import build_single_domain
from repro.errors import DatasetError
from repro.sql.analyzer import analyze
from repro.sql.executor import execute
from repro.sql.parser import parse_sql


def assert_gold_valid(dataset: Dataset, sample: int = 40):
    for example in dataset.examples[:sample]:
        db = dataset.database(example.db_id)
        query = parse_sql(example.sql)
        analyze(query, db.schema)
        execute(query, db)


class TestCrossDomain:
    def test_statistics(self, tiny_spider):
        stats = tiny_spider.statistics()
        assert stats.num_queries == 120
        assert stats.num_domains == 10
        assert stats.num_databases == 20
        assert stats.feature == "Cross Domain"

    def test_gold_valid(self, tiny_spider):
        assert_gold_valid(tiny_spider)

    def test_dev_databases_held_out(self, tiny_spider):
        train_dbs = {e.db_id for e in tiny_spider.split("train").examples}
        dev_dbs = {e.db_id for e in tiny_spider.split("dev").examples}
        assert not train_dbs & dev_dbs

    def test_deterministic(self):
        from repro.datasets.sql import build_cross_domain

        a = build_cross_domain(num_examples=40, seed=9)
        b = build_cross_domain(num_examples=40, seed=9)
        assert [e.sql for e in a.examples] == [e.sql for e in b.examples]
        assert [e.question for e in a.examples] == [
            e.question for e in b.examples
        ]


class TestWikiSQLLike:
    def test_single_table_databases(self, tiny_wikisql):
        for db in tiny_wikisql.databases.values():
            assert len(db.schema.tables) == 1

    def test_simple_queries_only(self, tiny_wikisql):
        for example in tiny_wikisql.examples:
            assert "JOIN" not in example.sql
            assert "GROUP BY" not in example.sql

    def test_gold_valid(self, tiny_wikisql):
        assert_gold_valid(tiny_wikisql)


class TestSingleDomain:
    def test_one_database(self):
        ds = build_single_domain("geography", num_examples=40, seed=2)
        assert len(ds.databases) == 1
        assert ds.feature == "Single Domain"
        assert_gold_valid(ds)


class TestMultiTurn:
    def test_dialogue_structure(self):
        ds = build_sparc_like(num_dialogues=20, seed=3)
        assert ds.dialogues
        for dialogue in ds.dialogues:
            assert len(dialogue.turns) >= 2
            for index, turn in enumerate(dialogue.turns):
                assert turn.turn_index == index
                assert turn.dialogue_id == dialogue.dialogue_id
        assert_gold_valid(ds)

    def test_later_turns_refine_earlier(self):
        ds = build_sparc_like(num_dialogues=20, seed=3)
        refined = 0
        for dialogue in ds.dialogues:
            first = dialogue.turns[0].sql
            for turn in dialogue.turns[1:]:
                if turn.sql != first:
                    refined += 1
        assert refined > 0

    def test_dialogue_turn_order_enforced(self):
        from repro.datasets.base import Dialogue

        with pytest.raises(DatasetError):
            Dialogue(
                dialogue_id="d",
                db_id="x",
                turns=[
                    Example(question="q", db_id="x", sql="SELECT 1",
                            turn_index=1)
                ],
            )

    def test_vis_dialogues_restyle(self):
        ds = build_dial_vis_like(num_dialogues=10, seed=4)
        for dialogue in ds.dialogues:
            first = dialogue.turns[0]
            second = dialogue.turns[1]
            assert first.vql is not None and second.vql is not None
            assert first.vql.split()[1] != second.vql.split()[1]  # chart type
            assert first.sql == second.sql  # same data query


class TestMultilingual:
    def test_translate_dataset(self, tiny_spider):
        zh = translate_dataset(tiny_spider, "zh")
        assert zh.language == "zh"
        assert zh.feature == "Multilingual"
        pairs = zip(tiny_spider.examples, zh.examples)
        changed = sum(a.question != b.question for a, b in pairs)
        assert changed > len(tiny_spider.examples) * 0.9
        # gold untouched
        assert [e.sql for e in zh.examples] == [
            e.sql for e in tiny_spider.examples
        ]

    def test_unsupported_language(self, tiny_spider):
        with pytest.raises(KeyError):
            translate_dataset(tiny_spider, "de")


class TestRobustness:
    def test_suite_has_three_dimensions(self, tiny_spider):
        suite = make_dr_spider_suite(tiny_spider)
        assert set(suite) == {"synonym", "realistic", "typo"}
        for variant in suite.values():
            assert variant.feature == "Robustness"
            # dev perturbed, train untouched
            assert [e.sql for e in variant.split("dev").examples] == [
                e.sql for e in tiny_spider.split("dev").examples
            ]

    def test_dev_questions_perturbed(self, tiny_spider):
        suite = make_dr_spider_suite(tiny_spider)
        base_dev = [e.question for e in tiny_spider.split("dev").examples]
        for name, variant in suite.items():
            dev = [e.question for e in variant.split("dev").examples]
            changed = sum(a != b for a, b in zip(base_dev, dev))
            assert changed > 0, name

    def test_train_untouched(self, tiny_spider):
        suite = make_dr_spider_suite(tiny_spider)
        base = [e.question for e in tiny_spider.split("train").examples]
        for variant in suite.values():
            assert [
                e.question for e in variant.split("train").examples
            ] == base


class TestKnowledge:
    def test_examples_carry_knowledge(self):
        ds = build_bird_like(num_examples=40, seed=5)
        assert ds.feature == "Knowledge Grounding"
        for example in ds.examples:
            assert example.knowledge
            assert " are " in example.knowledge
        assert_gold_valid(ds)

    def test_alias_not_resolvable_without_knowledge(self):
        """The alias adjective must not literally appear in the schema."""
        ds = build_bird_like(num_examples=20, seed=6)
        for example in ds.examples[:10]:
            schema = ds.database(example.db_id).schema
            adjective = example.knowledge.split()[0].lower()
            for table in schema.tables:
                assert adjective not in table.mentions()


class TestDatasetInvariants:
    def test_examples_reference_known_databases(self):
        with pytest.raises(DatasetError):
            Dataset(
                name="bad",
                task="sql",
                feature="Single Domain",
                databases={},
                splits={
                    "dev": Split(
                        "dev",
                        [Example(question="q", db_id="ghost", sql="SELECT 1")],
                    )
                },
            )

    def test_unknown_task_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(
                name="bad",
                task="audio",
                feature="Single Domain",
                databases={},
                splits={},
            )

    def test_split_lookup(self, tiny_spider):
        assert tiny_spider.split("dev").name == "dev"
        with pytest.raises(DatasetError):
            tiny_spider.split("test")
