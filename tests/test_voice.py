"""Voice channel tests: simulated ASR and the voice interface."""

import pytest

from repro.systems import ParsingBasedSystem, RuleBasedSystem
from repro.systems.voice import SimulatedASR, VoiceInterface


class TestSimulatedASR:
    def test_zero_noise_is_identity(self):
        asr = SimulatedASR(noise=0.0)
        utterance = "Show the name of products whose price is above 500?"
        transcript = asr.transcribe(utterance)
        assert transcript.text == utterance
        assert transcript.word_error_rate == 0.0

    def test_noise_corrupts_function_words_only(self):
        asr = SimulatedASR(noise=1.0, seed=3)
        transcript = asr.transcribe(
            "Show the sum of price for products whose name is Widget?"
        )
        assert transcript.word_error_rate > 0
        # schema words survive; function words may be homophones/dropped
        assert "products" in transcript.text
        assert "price" in transcript.text
        assert "Widget" in transcript.text

    def test_deterministic_per_seed(self):
        utterance = "Show the name of products whose price is above 500?"
        a = SimulatedASR(noise=0.5, seed=1).transcribe(utterance)
        b = SimulatedASR(noise=0.5, seed=1).transcribe(utterance)
        c = SimulatedASR(noise=0.5, seed=2).transcribe(utterance)
        assert a.text == b.text
        assert a.text != c.text or a.word_error_rate == 0

    def test_noise_bounds_validated(self):
        with pytest.raises(ValueError):
            SimulatedASR(noise=1.5)


class TestVoiceInterface:
    def test_clean_voice_query_answers(self, sales_db):
        voice = VoiceInterface(
            ParsingBasedSystem(), SimulatedASR(noise=0.0)
        )
        result = voice.say(
            "What is the average price of products?", sales_db
        )
        assert result.response.kind == "data"
        assert result.transcript.word_error_rate == 0.0

    def test_mild_noise_mostly_survivable(self, sales_db):
        """The parsing-based system answers most mildly-noisy utterances."""
        voice = VoiceInterface(
            ParsingBasedSystem(), SimulatedASR(noise=0.3, seed=5)
        )
        utterances = [
            "Show the name of products whose price is above 500?",
            "What is the average price of products?",
            "How many orders?",
            "Show the city of customers?",
            "What is the number of orders for each quarter?",
        ]
        answered = sum(
            voice.say(u, sales_db).response.kind == "data"
            for u in utterances
        )
        assert answered >= 4

    def test_parsing_system_beats_rules_under_noise(self, sales_db):
        """The Table 4 robustness ordering holds on the voice channel —
        measured by *correct* answers, since a system that misheard
        "whose" may still answer (wrongly)."""
        from repro.metrics import execution_match

        pairs = [
            ("Show the name of products whose price is above 500?",
             "SELECT name FROM products WHERE price > 500"),
            ("What is the average price of products?",
             "SELECT AVG(price) FROM products"),
            ("How many orders?", "SELECT COUNT(*) FROM orders"),
            ("What is the number of orders for each quarter?",
             "SELECT quarter, COUNT(*) FROM orders GROUP BY quarter"),
            ("Show the quantity of orders whose quantity is less than 5?",
             "SELECT quantity FROM orders WHERE quantity < 5"),
        ]

        def correct(system, seed) -> int:
            voice = VoiceInterface(system, SimulatedASR(noise=0.5, seed=seed))
            hits = 0
            for utterance, gold in pairs:
                response = voice.say(utterance, sales_db).response
                if response.sql and execution_match(
                    response.sql, gold, sales_db
                ):
                    hits += 1
            return hits

        rule_total = sum(correct(RuleBasedSystem(), s) for s in (1, 2, 3))
        parsing_total = sum(
            correct(ParsingBasedSystem(), s) for s in (1, 2, 3)
        )
        assert parsing_total > rule_total

    def test_voice_chart_request(self, sales_db):
        voice = VoiceInterface(
            ParsingBasedSystem(), SimulatedASR(noise=0.1, seed=2)
        )
        result = voice.say(
            "Draw a bar chart of the number of orders per quarter?",
            sales_db,
        )
        assert result.response.kind == "chart"
