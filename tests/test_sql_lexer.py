"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)][:-1]  # drop EOF


class TestBasicTokens:
    def test_keywords_are_lowercased(self):
        assert values("SELECT FROM Where") == ["select", "from", "where"]

    def test_identifier_keeps_case(self):
        assert values("MyTable") == ["MyTable"]
        assert tokenize("MyTable")[0].type is TokenType.IDENTIFIER

    def test_integer_and_float(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == "42"
        assert tokens[1].value == "3.14"
        assert all(t.type is TokenType.NUMBER for t in tokens[:2])

    def test_leading_dot_number(self):
        assert values(".5") == [".5"]

    def test_number_stops_at_non_digit_dot(self):
        tokens = tokenize("1.x")
        assert tokens[0].value == "1"
        assert tokens[1].value == "."
        assert tokens[2].value == "x"

    def test_string_single_quotes(self):
        token = tokenize("'hello world'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello world"

    def test_string_doubled_quote_escape(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_double_quoted_string(self):
        assert tokenize('"abc"')[0].value == "abc"

    def test_operators_two_char(self):
        assert values("<= >= <> !=") == ["<=", ">=", "<>", "<>"]

    def test_operators_one_char(self):
        assert values("= < > + - * / %") == list("=<>+-*/%")

    def test_punctuation(self):
        assert values("( ) , . ;") == ["(", ")", ",", ".", ";"]

    def test_underscored_identifier(self):
        assert values("order_date") == ["order_date"]

    def test_eof_token_terminates(self):
        tokens = tokenize("select")
        assert tokens[-1].type is TokenType.EOF
        assert tokens[-1].position == len("select")


class TestErrors:
    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'never closed")

    def test_unknown_character_raises(self):
        with pytest.raises(LexError) as exc:
            tokenize("select #")
        assert exc.value.position == 7


class TestTokenMatches:
    def test_matches_type_and_value(self):
        token = Token(TokenType.KEYWORD, "select", 0)
        assert token.matches(TokenType.KEYWORD, "select")
        assert token.matches(TokenType.KEYWORD)
        assert not token.matches(TokenType.KEYWORD, "from")
        assert not token.matches(TokenType.IDENTIFIER)

    def test_positions_recorded(self):
        tokens = tokenize("a = 1")
        assert [t.position for t in tokens[:-1]] == [0, 2, 4]
