"""Schema linker tests: exact, world-knowledge, and fuzzy linking."""

import pytest

from repro.data.domains import domain_by_name
from repro.parsers.linker import SchemaLinker, _edit_distance_at_most_one


@pytest.fixture
def sales_schema():
    return domain_by_name("sales").schema


class TestExactLinking:
    def test_links_table(self, sales_schema):
        linker = SchemaLinker(sales_schema)
        assert linker.tables_in("show all products please") == ["products"]

    def test_links_plural_variants(self, sales_schema):
        linker = SchemaLinker(sales_schema)
        assert linker.tables_in("the product with id 1") == ["products"]

    def test_links_column_with_table(self, sales_schema):
        linker = SchemaLinker(sales_schema)
        columns = linker.columns_in("the price of products")
        assert ("products", "price") in columns

    def test_links_declared_synonyms(self, sales_schema):
        linker = SchemaLinker(sales_schema)
        # "clients" is a declared synonym of customers
        assert "customers" in linker.tables_in("how many clients are there")

    def test_longest_match_wins(self, sales_schema):
        linker = SchemaLinker(sales_schema)
        mentions = linker.link("the order date of orders")
        assert any(
            m.kind == "column" and m.column == "order_date" for m in mentions
        )

    def test_unknown_words_not_linked(self, sales_schema):
        linker = SchemaLinker(sales_schema)
        assert linker.link("completely unrelated zebra words") == []

    def test_column_candidates_multi_table(self, sales_schema):
        linker = SchemaLinker(sales_schema)
        candidates = linker.column_candidates("name")
        tables = {t for t, _ in candidates}
        assert {"products", "customers"} <= tables

    def test_link_phrase_prefers_columns(self, sales_schema):
        linker = SchemaLinker(sales_schema)
        mention = linker.link_phrase("customers city")
        assert mention is not None and mention.kind == "column"
        assert mention.column == "city"


class TestWorldKnowledge:
    def test_out_of_schema_synonyms_require_flag(self, sales_schema):
        exact = SchemaLinker(sales_schema)
        world = SchemaLinker(sales_schema, world_knowledge=True)
        question = "the amount charged of products"
        assert not any(
            m.column == "price" for m in exact.link(question)
        )
        assert any(m.column == "price" for m in world.link(question))


class TestFuzzy:
    def test_edit_distance_helper(self):
        assert _edit_distance_at_most_one("price", "price")
        assert _edit_distance_at_most_one("price", "prics")
        assert _edit_distance_at_most_one("price", "prce")
        assert _edit_distance_at_most_one("price", "pricey")
        assert not _edit_distance_at_most_one("price", "quantity")

    def test_fuzzy_links_typos(self, sales_schema):
        fuzzy = SchemaLinker(sales_schema, fuzzy=True)
        exact = SchemaLinker(sales_schema)
        question = "the prics of products"
        assert any(m.column == "price" for m in fuzzy.link(question))
        assert not any(m.column == "price" for m in exact.link(question))

    def test_fuzzy_ignores_short_words(self, sales_schema):
        fuzzy = SchemaLinker(sales_schema, fuzzy=True)
        assert not any(
            m.kind == "column" and m.column == "city"
            for m in fuzzy.link("the cit")
        )
