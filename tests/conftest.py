"""Shared fixtures: a small hand-built shop database plus generated ones."""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.data.domains import domain_by_name
from repro.data.generator import DatabaseGenerator
from repro.data.schema import Column, ColumnType, ForeignKey, Schema, TableSchema

NUM = ColumnType.NUMBER
TXT = ColumnType.TEXT


@pytest.fixture(autouse=True)
def _obs_reset():
    """Leave the observability subsystem clean after every test.

    Metric values accumulate process-wide and tracing is a module-level
    flag, so a test that enables tracing or asserts on counter deltas must
    not leak into its neighbours.  The shared SQL result cache is cleared
    too: session-scoped databases stay alive across tests, so cached
    results would otherwise survive (and hit) between tests.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.resilience import clear_faults, reset_breakers
    from repro.sql import rescache

    yield
    obs_trace.disable()
    obs_trace.clear()
    rescache.clear_result_cache()
    clear_faults()
    reset_breakers()
    obs_metrics.get_registry().reset()


@pytest.fixture
def shop_schema() -> Schema:
    return Schema(
        db_id="shop",
        tables=(
            TableSchema(
                "products",
                (
                    Column("id", NUM),
                    Column("name", TXT),
                    Column("category", TXT),
                    Column("price", NUM),
                ),
                primary_key="id",
            ),
            TableSchema(
                "sales",
                (
                    Column("id", NUM),
                    Column("product_id", NUM),
                    Column("quantity", NUM),
                    Column("quarter", TXT),
                ),
                primary_key="id",
            ),
        ),
        foreign_keys=(ForeignKey("sales", "product_id", "products", "id"),),
    )


@pytest.fixture
def shop_db(shop_schema) -> Database:
    db = Database(schema=shop_schema)
    for row in (
        (1, "widget", "tools", 9.5),
        (2, "gadget", "tools", 19.0),
        (3, "apple", "food", 1.0),
        (4, "bread", "food", None),
    ):
        db.insert("products", row)
    for row in (
        (1, 1, 3, "Q1"),
        (2, 2, 1, "Q1"),
        (3, 3, 10, "Q2"),
        (4, 1, 2, "Q2"),
        (5, 4, 5, "Q2"),
    ):
        db.insert("sales", row)
    return db


@pytest.fixture(scope="session")
def sales_db() -> Database:
    return DatabaseGenerator(seed=7).populate(domain_by_name("sales"))


@pytest.fixture(scope="session")
def tiny_spider():
    from repro.datasets.sql import build_cross_domain

    return build_cross_domain(num_examples=120, seed=5)


@pytest.fixture(scope="session")
def tiny_wikisql():
    from repro.datasets.sql import build_wikisql_like

    return build_wikisql_like(num_examples=160, num_databases=30, seed=5)


@pytest.fixture(scope="session")
def tiny_nvbench():
    from repro.datasets.vis import build_nvbench_like

    return build_nvbench_like(num_examples=120, seed=5)
