"""Value-domain tests, including hypothesis properties of the ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.data.values import (
    coerce_value,
    compare_values,
    render_value,
    sort_key,
    value_type_of,
)


class TestTypeOf:
    def test_families(self):
        assert value_type_of(None) == "null"
        assert value_type_of(True) == "number"
        assert value_type_of(3) == "number"
        assert value_type_of(2.5) == "number"
        assert value_type_of("x") == "text"


class TestCompare:
    def test_null_is_unknown(self):
        assert compare_values(None, 1) is None
        assert compare_values("x", None) is None
        assert compare_values(None, None) is None

    def test_numbers(self):
        assert compare_values(1, 2) < 0
        assert compare_values(2, 2) == 0
        assert compare_values(3, 2) > 0
        assert compare_values(2, 2.0) == 0

    def test_strings(self):
        assert compare_values("a", "b") < 0
        assert compare_values("b", "b") == 0

    def test_cross_type_is_total(self):
        assert compare_values(5, "a") < 0  # numbers before text
        assert compare_values("a", 5) > 0

    def test_bool_compares_as_number(self):
        assert compare_values(True, 1) == 0
        assert compare_values(False, 1) < 0


value_strategy = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=16),
    st.text(max_size=8),
)


@given(a=value_strategy, b=value_strategy)
def test_compare_antisymmetric(a, b):
    ab = compare_values(a, b)
    ba = compare_values(b, a)
    if ab is None:
        assert ba is None
    else:
        assert (ab > 0) == (ba < 0)
        assert (ab == 0) == (ba == 0)


@given(a=value_strategy, b=value_strategy)
def test_sort_key_consistent_with_compare(a, b):
    cmp = compare_values(a, b)
    if cmp is None:
        return  # NULL ordering handled by sort_key's rank 0
    if cmp < 0:
        assert sort_key(a) < sort_key(b)
    elif cmp > 0:
        assert sort_key(a) > sort_key(b)


class TestCoercion:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("42", 42),
            ("3.5", 3.5),
            ("hello", "hello"),
            ("", None),
            ("NULL", None),
            ("null", None),
            ("  7  ", 7),
            (None, None),
        ],
    )
    def test_coerce(self, text, expected):
        assert coerce_value(text) == expected

    @given(value=st.one_of(st.integers(-99, 99), st.text(
        alphabet="abcdefg", min_size=1, max_size=6)))
    def test_render_coerce_roundtrip(self, value):
        assert coerce_value(render_value(value)) == value

    def test_render_null_and_bool(self):
        assert render_value(None) == "NULL"
        assert render_value(True) == "1"
        assert render_value(False) == "0"
