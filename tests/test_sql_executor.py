"""Executor semantics tests: SQL behaviour on the shop database.

Every query here runs on BOTH engines — the compiled plan engine behind
``execute`` and the reference interpreter ``execute_reference`` — and the
helper asserts they agree (same result, or same error type and message)
before handing the compiled result to the test.  Each assertion below is
therefore also a differential test.
"""

import pytest

from repro.errors import ExecutionError, SQLError
from repro.sql.executor import execute, execute_reference
from repro.sql.parser import parse_sql


def run(db, sql):
    query = parse_sql(sql)
    try:
        compiled = execute(query, db)
    except SQLError as exc:
        with pytest.raises(type(exc)) as ref_info:
            execute_reference(query, db)
        assert str(ref_info.value) == str(exc)
        raise
    reference = execute_reference(query, db)
    assert compiled.columns == reference.columns
    assert compiled.rows == reference.rows
    assert compiled.ordered == reference.ordered
    return compiled


class TestProjectionAndFilter:
    def test_select_column(self, shop_db):
        result = run(shop_db, "SELECT name FROM products")
        assert result.rows == [
            ("widget",), ("gadget",), ("apple",), ("bread",),
        ]

    def test_select_star_expands(self, shop_db):
        result = run(shop_db, "SELECT * FROM products")
        assert len(result.columns) == 4
        assert result.rows[0] == (1, "widget", "tools", 9.5)

    def test_where_filters(self, shop_db):
        result = run(shop_db, "SELECT name FROM products WHERE price > 5")
        assert result.rows == [("widget",), ("gadget",)]

    def test_where_string_equality(self, shop_db):
        result = run(
            shop_db, "SELECT name FROM products WHERE category = 'food'"
        )
        assert result.rows == [("apple",), ("bread",)]

    def test_like_case_insensitive(self, shop_db):
        result = run(shop_db, "SELECT name FROM products WHERE name LIKE '%GET%'")
        assert result.rows == [("widget",), ("gadget",)]

    def test_between(self, shop_db):
        result = run(
            shop_db, "SELECT name FROM products WHERE price BETWEEN 1 AND 10"
        )
        assert result.rows == [("widget",), ("apple",)]

    def test_in_list(self, shop_db):
        result = run(
            shop_db,
            "SELECT name FROM products WHERE category IN ('tools', 'toys')",
        )
        assert result.rows == [("widget",), ("gadget",)]

    def test_arithmetic_in_projection(self, shop_db):
        result = run(shop_db, "SELECT price * 2 FROM products WHERE id = 1")
        assert result.rows == [(19.0,)]

    def test_distinct(self, shop_db):
        result = run(shop_db, "SELECT DISTINCT category FROM products")
        assert result.rows == [("tools",), ("food",)]

    def test_limit(self, shop_db):
        result = run(shop_db, "SELECT name FROM products LIMIT 2")
        assert len(result.rows) == 2


class TestNullSemantics:
    def test_null_comparison_filters_out(self, shop_db):
        # bread has NULL price: excluded by both > and <=
        above = run(shop_db, "SELECT name FROM products WHERE price > 0")
        below = run(shop_db, "SELECT name FROM products WHERE price <= 0")
        names = {r[0] for r in above.rows} | {r[0] for r in below.rows}
        assert "bread" not in names

    def test_is_null(self, shop_db):
        result = run(shop_db, "SELECT name FROM products WHERE price IS NULL")
        assert result.rows == [("bread",)]

    def test_is_not_null(self, shop_db):
        result = run(
            shop_db, "SELECT COUNT(*) FROM products WHERE price IS NOT NULL"
        )
        assert result.rows == [(3,)]

    def test_count_column_skips_nulls(self, shop_db):
        result = run(shop_db, "SELECT COUNT(price), COUNT(*) FROM products")
        assert result.rows == [(3, 4)]

    def test_aggregate_skips_nulls(self, shop_db):
        result = run(shop_db, "SELECT AVG(price) FROM products")
        assert result.rows[0][0] == pytest.approx((9.5 + 19.0 + 1.0) / 3)

    def test_sum_of_empty_group_is_null(self, shop_db):
        result = run(
            shop_db, "SELECT SUM(price) FROM products WHERE id > 100"
        )
        assert result.rows == [(None,)]

    def test_count_of_empty_group_is_zero(self, shop_db):
        result = run(shop_db, "SELECT COUNT(*) FROM products WHERE id > 100")
        assert result.rows == [(0,)]

    def test_nulls_sort_first_ascending(self, shop_db):
        result = run(shop_db, "SELECT name, price FROM products ORDER BY price")
        assert result.rows[0] == ("bread", None)

    def test_division_by_zero_is_null(self, shop_db):
        result = run(shop_db, "SELECT 1 / 0")
        assert result.rows == [(None,)]

    def test_not_null_is_null(self, shop_db):
        result = run(
            shop_db, "SELECT name FROM products WHERE NOT price > 0"
        )
        assert result.rows == []  # NULL stays NULL under NOT


class TestAggregation:
    def test_group_by_count(self, shop_db):
        result = run(
            shop_db,
            "SELECT category, COUNT(*) FROM products GROUP BY category",
        )
        assert result.rows == [("tools", 2), ("food", 2)]

    def test_group_by_preserves_first_seen_order(self, shop_db):
        result = run(
            shop_db, "SELECT quarter, COUNT(*) FROM sales GROUP BY quarter"
        )
        assert result.rows == [("Q1", 2), ("Q2", 3)]

    def test_having(self, shop_db):
        result = run(
            shop_db,
            "SELECT quarter, COUNT(*) FROM sales GROUP BY quarter "
            "HAVING COUNT(*) > 2",
        )
        assert result.rows == [("Q2", 3)]

    def test_min_max(self, shop_db):
        result = run(shop_db, "SELECT MIN(price), MAX(price) FROM products")
        assert result.rows == [(1.0, 19.0)]

    def test_count_distinct(self, shop_db):
        result = run(shop_db, "SELECT COUNT(DISTINCT category) FROM products")
        assert result.rows == [(2,)]

    def test_aggregate_without_group_on_whole_table(self, shop_db):
        result = run(shop_db, "SELECT SUM(quantity) FROM sales")
        assert result.rows == [(21,)]

    def test_group_ordering_by_aggregate_alias(self, shop_db):
        result = run(
            shop_db,
            "SELECT quarter, COUNT(*) AS n FROM sales GROUP BY quarter "
            "ORDER BY n DESC",
        )
        assert result.rows == [("Q2", 3), ("Q1", 2)]


class TestJoins:
    def test_inner_join(self, shop_db):
        result = run(
            shop_db,
            "SELECT p.name, s.quantity FROM sales AS s JOIN products AS p "
            "ON s.product_id = p.id WHERE s.quarter = 'Q1'",
        )
        assert result.rows == [("widget", 3), ("gadget", 1)]

    def test_left_join_keeps_unmatched(self, shop_schema):
        from repro.data.database import Database

        db = Database(schema=shop_schema)
        db.insert("products", (1, "lonely", "misc", 5.0))
        result = run(
            db,
            "SELECT p.name, s.quantity FROM products AS p LEFT JOIN sales "
            "AS s ON s.product_id = p.id",
        )
        assert result.rows == [("lonely", None)]

    def test_left_join_empty_right_table_null_pads_full_schema(
        self, shop_schema
    ):
        # Regression: the null pad must come from the right table's schema,
        # not from a sample row — an empty right table has no sample row.
        from repro.data.database import Database

        db = Database(schema=shop_schema)
        db.insert("products", (1, "lonely", "misc", 5.0))
        db.insert("products", (2, "solo", "misc", 7.0))
        result = run(
            db,
            "SELECT * FROM products AS p LEFT JOIN sales AS s "
            "ON s.product_id = p.id",
        )
        sales_width = len(shop_schema.table("sales").columns)
        products_width = len(shop_schema.table("products").columns)
        assert result.columns[products_width:] == [
            f"s.{c.name}" for c in shop_schema.table("sales").columns
        ]
        assert result.rows == [
            (1, "lonely", "misc", 5.0) + (None,) * sales_width,
            (2, "solo", "misc", 7.0) + (None,) * sales_width,
        ]

    def test_join_aggregate(self, shop_db):
        result = run(
            shop_db,
            "SELECT p.category, SUM(s.quantity) FROM sales AS s JOIN "
            "products AS p ON s.product_id = p.id GROUP BY p.category",
        )
        assert dict(result.rows) == {"tools": 6, "food": 15}

    def test_ambiguous_column_raises(self, shop_db):
        with pytest.raises(ExecutionError):
            run(
                shop_db,
                "SELECT id FROM sales JOIN products ON "
                "sales.product_id = products.id",
            )


class TestSubqueries:
    def test_in_subquery(self, shop_db):
        result = run(
            shop_db,
            "SELECT name FROM products WHERE id IN "
            "(SELECT product_id FROM sales WHERE quantity > 4)",
        )
        assert result.rows == [("apple",), ("bread",)]

    def test_correlated_exists(self, shop_db):
        result = run(
            shop_db,
            "SELECT name FROM products AS p WHERE EXISTS "
            "(SELECT * FROM sales AS s WHERE s.product_id = p.id "
            "AND s.quantity > 4)",
        )
        assert result.rows == [("apple",), ("bread",)]

    def test_scalar_subquery_average(self, shop_db):
        result = run(
            shop_db,
            "SELECT name FROM products WHERE price > "
            "(SELECT AVG(price) FROM products)",
        )
        assert result.rows == [("gadget",)]

    def test_in_subquery_with_null_no_match_is_unknown(self, shop_schema):
        from repro.data.database import Database

        db = Database(schema=shop_schema)
        db.insert("products", (1, "a", "x", 1.0))
        db.insert("sales", (1, None, 2, "Q1"))
        result = run(
            db,
            "SELECT name FROM products WHERE id NOT IN "
            "(SELECT product_id FROM sales)",
        )
        assert result.rows == []  # NOT IN over a NULL-containing set


class TestSetOperations:
    def test_union_distinct(self, shop_db):
        result = run(
            shop_db,
            "SELECT category FROM products UNION SELECT category "
            "FROM products",
        )
        assert result.rows == [("tools",), ("food",)]

    def test_union_all_keeps_duplicates(self, shop_db):
        result = run(
            shop_db,
            "SELECT category FROM products UNION ALL SELECT category "
            "FROM products",
        )
        assert len(result.rows) == 8

    def test_intersect(self, shop_db):
        result = run(
            shop_db,
            "SELECT name FROM products WHERE price > 5 INTERSECT "
            "SELECT name FROM products WHERE category = 'tools'",
        )
        assert result.rows == [("widget",), ("gadget",)]

    def test_except(self, shop_db):
        result = run(
            shop_db,
            "SELECT name FROM products EXCEPT SELECT name FROM products "
            "WHERE category = 'food'",
        )
        assert result.rows == [("widget",), ("gadget",)]

    def test_arity_mismatch_raises(self, shop_db):
        with pytest.raises(ExecutionError):
            run(shop_db, "SELECT a, b FROM products UNION SELECT name FROM products")


class TestOrdering:
    def test_order_desc_limit(self, shop_db):
        result = run(
            shop_db, "SELECT name FROM products ORDER BY price DESC LIMIT 2"
        )
        assert result.rows == [("gadget",), ("widget",)]

    def test_multi_key_sort_stable(self, shop_db):
        result = run(
            shop_db,
            "SELECT category, name FROM products ORDER BY category ASC, "
            "name ASC",
        )
        assert result.rows == [
            ("food", "apple"), ("food", "bread"),
            ("tools", "gadget"), ("tools", "widget"),
        ]

    def test_result_ordered_flag(self, shop_db):
        assert run(shop_db, "SELECT name FROM products ORDER BY name").ordered
        assert not run(shop_db, "SELECT name FROM products").ordered


class TestScalarFunctions:
    def test_upper_lower_length(self, shop_db):
        result = run(
            shop_db,
            "SELECT upper(name), lower(category), length(name) "
            "FROM products WHERE id = 1",
        )
        assert result.rows == [("WIDGET", "tools", 6)]

    def test_abs_round(self, shop_db):
        result = run(shop_db, "SELECT abs(-3), round(2.567, 1)")
        assert result.rows == [(3, 2.6)]

    def test_unknown_function_raises(self, shop_db):
        with pytest.raises(ExecutionError):
            run(shop_db, "SELECT frobnicate(name) FROM products")


class TestErrors:
    def test_unknown_table(self, shop_db):
        from repro.errors import SQLError

        with pytest.raises(SQLError):
            run(shop_db, "SELECT a FROM missing")

    def test_unknown_column(self, shop_db):
        with pytest.raises(ExecutionError):
            run(shop_db, "SELECT missing FROM products")

    def test_aggregate_in_where_raises(self, shop_db):
        with pytest.raises(ExecutionError):
            run(shop_db, "SELECT name FROM products WHERE COUNT(*) > 1")
