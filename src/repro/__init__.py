"""repro — natural language interfaces for tabular data querying and
visualization.

A complete, self-contained implementation of the framework surveyed in
"Natural Language Interfaces for Tabular Data Querying and Visualization"
(ICDE 2025): the SQL and VQL substrates, synthetic counterparts of every
benchmark family, one working representative of every approach family
across the traditional / neural / foundation-model stages for both
Text-to-SQL and Text-to-Vis, the full evaluation-metric battery, and the
four system architectures.

Quickstart::

    from repro import NaturalLanguageInterface
    from repro.data.domains import domain_by_name
    from repro.data.generator import DatabaseGenerator

    db = DatabaseGenerator(seed=7).populate(domain_by_name("sales"))
    nli = NaturalLanguageInterface(db)
    print(nli.ask("Show the name of products whose price is above 500?").rows)
    print(nli.ask("Draw a bar chart of the number of orders per quarter?")
          .chart.to_ascii())
"""

from repro.core.interface import NaturalLanguageInterface
from repro.data.database import Database
from repro.data.schema import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.sql.executor import execute
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql
from repro.vis.charts import render_chart
from repro.vis.vql import parse_vql, to_vql

__version__ = "1.0.0"

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "ForeignKey",
    "NaturalLanguageInterface",
    "Schema",
    "TableSchema",
    "execute",
    "parse_sql",
    "parse_vql",
    "render_chart",
    "to_sql",
    "to_vql",
    "__version__",
]
