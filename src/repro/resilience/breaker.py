"""Per-component circuit breakers — see DESIGN.md §Resilience.

A :class:`CircuitBreaker` guards one flaky component (an LLM parser, the
vector engine, a renderer) with the classic three-state machine:

- **closed** — calls flow; consecutive failures are counted, and hitting
  ``failure_threshold`` trips the breaker **open**;
- **open** — calls are rejected immediately with
  :class:`~repro.errors.CircuitOpenError` (no budget is burned on a
  component that just failed N times in a row) until ``recovery_timeout``
  seconds pass on the injectable clock;
- **half-open** — after the timeout, a limited number of probe calls are
  admitted; ``success_threshold`` consecutive probe successes close the
  breaker, any probe failure re-opens it and restarts the timeout.

Success in the closed state zeroes the consecutive-failure count — the
breaker reacts to failure *streaks*, not lifetime totals, matching the
"component is down right now" condition it exists to detect.

Breakers live in a process-wide registry (:func:`breaker_for`) keyed by
component name, so the pipeline and tests observe the same instances;
``reset_breakers()`` restores a clean slate (wired into the test
fixture's observability reset).  Observability:
``repro.resilience.breaker.trips`` / ``.rejections`` / ``.probes``
counters plus one ``repro.resilience.breaker.<name>.state`` callback
gauge per breaker (0 closed, 1 half-open, 2 open).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import CircuitOpenError
from repro.obs import metrics as _obs_metrics

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "all_breakers",
    "breaker_for",
    "reset_breakers",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

_registry = _obs_metrics.get_registry()
_TRIPS = _registry.counter("repro.resilience.breaker.trips")
_REJECTIONS = _registry.counter("repro.resilience.breaker.rejections")
_PROBES = _registry.counter("repro.resilience.breaker.probes")


class CircuitBreaker:
    """One component's closed → open → half-open state machine."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        recovery_timeout: float = 5.0,
        success_threshold: int = 1,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if success_threshold < 1:
            raise ValueError("success_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.success_threshold = success_threshold
        self.clock = clock if clock is not None else time.monotonic
        self._state = CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at: float | None = None
        self._lock = threading.Lock()
        _registry.gauge(
            f"repro.resilience.breaker.{name}.state",
            fn=lambda: _STATE_CODES[self.state],
        )

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, transitioning open → half-open lazily on read."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self.clock() - self._opened_at >= self.recovery_timeout
        ):
            self._state = HALF_OPEN
            self._probe_successes = 0

    # -- the protocol --------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed right now (counts rejections)."""
        # lock-free fast path: a closed breaker admits everything, and a
        # concurrent trip at worst admits one extra call — breakers are
        # advisory back-pressure, not mutual exclusion
        if self._state == CLOSED:
            return True
        with self._lock:
            self._maybe_half_open()
            if self._state == OPEN:
                _REJECTIONS.inc()
                return False
            if self._state == HALF_OPEN:
                _PROBES.inc()
            return True

    def record_success(self) -> None:
        """Report a successful call through this breaker."""
        # lock-free fast path: success on a healthy closed breaker is the
        # steady state and changes nothing
        if self._state == CLOSED and self._consecutive_failures == 0:
            return
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.success_threshold:
                    self._state = CLOSED
                    self._consecutive_failures = 0
                    self._opened_at = None
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Report a failed call; may trip the breaker open."""
        with self._lock:
            if self._state == HALF_OPEN:
                # a failed probe re-opens and restarts the timeout
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self.clock()
        self._consecutive_failures = 0
        self._probe_successes = 0
        _TRIPS.inc()

    def call(self, fn: Callable, *args, **kwargs):
        """Guard one call: reject when open, else run and record outcome."""
        if not self.allow():
            raise CircuitOpenError(self.name)
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def reset(self) -> None:
        """Force the breaker back to a pristine closed state."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probe_successes = 0
            self._opened_at = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CircuitBreaker {self.name} {self._state}>"


# ----------------------------------------------------------------------
# process-wide breaker registry
# ----------------------------------------------------------------------
_BREAKERS: dict[str, CircuitBreaker] = {}
_BREAKERS_LOCK = threading.Lock()


def breaker_for(
    name: str,
    failure_threshold: int = 3,
    recovery_timeout: float = 5.0,
    success_threshold: int = 1,
    clock: Callable[[], float] | None = None,
) -> CircuitBreaker:
    """Fetch or create the process-wide breaker for component *name*.

    Configuration arguments apply only on first creation; subsequent
    fetches return the existing instance unchanged (one breaker per
    component, shared by every pipeline in the process).
    """
    # lock-free fast path: dict reads are atomic in CPython, and the
    # serving loop fetches its breakers on every guarded stage call
    breaker = _BREAKERS.get(name)
    if breaker is not None:
        return breaker
    with _BREAKERS_LOCK:
        breaker = _BREAKERS.get(name)
        if breaker is None:
            breaker = _BREAKERS[name] = CircuitBreaker(
                name,
                failure_threshold=failure_threshold,
                recovery_timeout=recovery_timeout,
                success_threshold=success_threshold,
                clock=clock,
            )
        return breaker


def all_breakers() -> dict[str, CircuitBreaker]:
    """A snapshot of the registry (name → breaker)."""
    with _BREAKERS_LOCK:
        return dict(_BREAKERS)


def reset_breakers() -> None:
    """Drop every registered breaker (test hygiene)."""
    with _BREAKERS_LOCK:
        _BREAKERS.clear()
