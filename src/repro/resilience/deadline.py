"""Cooperative deadlines — the time half of :mod:`repro.resilience`.

A :class:`Deadline` is a token carrying an absolute expiry instant on an
injectable clock.  Nothing preempts: code *cooperates* by calling
:meth:`Deadline.check` (or the module-level :func:`checkpoint`) at safe
points — the executor's row and vector loops, the lint gates' candidate
loops, the LLM parsers' completion loops — and a check past the expiry
raises :class:`~repro.errors.DeadlineExceeded`, which the resilient
pipeline catches and routes onto a degradation ladder.

Propagation is ambient: :func:`deadline_scope` (or the pipeline's
:func:`push_budget`/:func:`pop_budget` fast path) makes a deadline
ambient for the dynamic extent of a block, and a nested scope always
becomes the *tighter* of its own expiry and the enclosing one, so an
inner per-stage budget can only shrink the outer per-turn budget, never
extend it.  The ambient state is flat per-thread data — one expiry
float, one clock, one open-scope count — rather than a stack of
objects: each enclosing scope keeps the expiry it displaced in its own
frame and restores it on exit, so opening a scope allocates nothing on
the serving path.  Instrumented loops read one module global
(``_ACTIVE``, the count of open scopes across all threads) before doing
any work, so the disabled path costs a single integer truth test — the
same discipline as ``repro.obs.trace._ENABLED``, and held to the same
<5% budget by ``benchmarks/bench_resilience.py``.

The clock is injectable per deadline (tests pass a counter-backed clock
for exact, deterministic expiry), defaulting to ``time.monotonic``.
Scopes nested on one thread must share a clock lineage — the pipeline
threads its policy clock through every scope it opens — because the
tightening rule compares expiry instants across scopes.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Iterator

from repro.errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "checkpoint",
    "current_deadline",
    "deadline_scope",
    "guard_rows",
]

#: Count of deadline scopes currently open, process-wide.  Hot loops test
#: this single global before touching the thread-local state; zero means
#: the per-iteration cost of deadline support is one integer truth test.
_ACTIVE = 0

#: Per-thread ambient state: ``open`` (int, scopes open on this thread),
#: ``expires_at`` (float | None, the innermost effective expiry), and
#: ``clock`` (the innermost scope's clock).
_local = threading.local()

#: Sentinel marking "no enclosing scope" in a saved previous expiry.
_NO_SCOPE = object()

#: Row-loop polling stride: :func:`guard_rows` consults the clock once
#: every this many rows, bounding both the overshoot past an expiry and
#: the clock-call overhead while a deadline is active.
CHECK_STRIDE = 1024


class Deadline:
    """An absolute expiry instant on an injectable monotonic clock.

    Create with :meth:`after` (relative) or the constructor (absolute).
    ``None`` seconds means "no limit" — a deadline that never expires,
    which lets policy code treat "unbounded" uniformly.
    """

    __slots__ = ("expires_at", "clock")

    def __init__(
        self,
        expires_at: float | None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.expires_at = expires_at
        self.clock = clock if clock is not None else time.monotonic

    @classmethod
    def after(
        cls,
        seconds: float | None,
        clock: Callable[[], float] | None = None,
    ) -> "Deadline":
        """A deadline *seconds* from now on *clock* (``None`` = unbounded)."""
        clk = clock if clock is not None else time.monotonic
        expiry = None if seconds is None else clk() + seconds
        return cls(expiry, clk)

    def remaining(self) -> float | None:
        """Seconds until expiry (may be negative), ``None`` when unbounded."""
        if self.expires_at is None:
            return None
        return self.expires_at - self.clock()

    def expired(self) -> bool:
        """Whether the expiry instant has passed."""
        return (
            self.expires_at is not None and self.clock() >= self.expires_at
        )

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if expired; otherwise a no-op."""
        if self.expired():
            raise DeadlineExceeded(f"deadline exceeded during {what}")

    def tightened(self, seconds: float | None) -> "Deadline":
        """A child deadline: min(this expiry, now + *seconds*).

        This is the propagation rule — a stage budget can only shrink the
        enclosing turn budget.  ``None`` seconds inherits this deadline's
        expiry unchanged (sharing the clock).
        """
        if seconds is None:
            return Deadline(self.expires_at, self.clock)
        child = self.clock() + seconds
        if self.expires_at is not None:
            child = min(child, self.expires_at)
        return Deadline(child, self.clock)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.expires_at is None:
            return "<Deadline unbounded>"
        return f"<Deadline remaining={self.remaining():.4f}s>"


def current_deadline() -> Deadline | None:
    """A snapshot of the innermost ambient deadline, or ``None``.

    The returned :class:`Deadline` is a value view of the ambient state
    at the moment of the call — hold it, check it, but do not expect it
    to track scopes opened or closed afterwards.
    """
    if getattr(_local, "open", 0):
        return Deadline(_local.expires_at, _local.clock)
    return None


def push_budget(seconds: float, clock: Callable[[], float]):
    """Open a deadline scope ``seconds`` from now without the ceremony.

    The allocation-free fast path of ``deadline_scope(Deadline.after())``
    for the pipeline's per-stage and per-turn budgets: one clock read,
    one min against the enclosing expiry, three attribute writes.
    Returns an opaque token that MUST be handed back to
    :func:`pop_budget` in a ``finally``.  The clock must belong to the
    same lineage as any enclosing scope's (see the module docstring).
    """
    global _ACTIVE
    open_count = getattr(_local, "open", 0)
    expiry = clock() + seconds
    if open_count:
        prev = _local.expires_at
        if prev is not None and prev < expiry:
            expiry = prev
    else:
        prev = _NO_SCOPE
    _local.open = open_count + 1
    _local.expires_at = expiry
    _local.clock = clock
    _ACTIVE += 1
    return prev


def pop_budget(prev) -> None:
    """Close the innermost scope opened by :func:`push_budget`.

    *prev* is the token :func:`push_budget` returned for that scope.
    """
    global _ACTIVE
    if prev is _NO_SCOPE:
        _local.open = 0
    else:
        _local.open -= 1
        _local.expires_at = prev
    _ACTIVE -= 1


class deadline_scope:
    """Make a deadline ambient for the block (tightened by any outer scope).

    The effective deadline is ``min(deadline, enclosing)`` — see
    :meth:`Deadline.tightened` — so nested scopes monotonically shrink
    the budget.  ``__enter__`` returns the effective (possibly
    tightened) deadline.

    A hand-rolled context manager rather than ``@contextmanager``: the
    resilient pipeline opens several scopes per turn, and the
    generator-based protocol costs a few microseconds each that this
    class does not.  Unlike :func:`push_budget`, a scope saves and
    restores the enclosing clock too, so it composes with any clock
    mix.
    """

    __slots__ = ("deadline", "_prev_expires", "_prev_clock")

    def __init__(self, deadline: Deadline) -> None:
        self.deadline = deadline
        self._prev_expires = _NO_SCOPE
        self._prev_clock = None

    def __enter__(self) -> Deadline:
        global _ACTIVE
        open_count = getattr(_local, "open", 0)
        effective = self.deadline
        if open_count:
            outer_expires = self._prev_expires = _local.expires_at
            outer_clock = self._prev_clock = _local.clock
            if outer_expires is not None and (
                effective.expires_at is None
                or outer_expires < effective.expires_at
            ):
                effective = Deadline(outer_expires, outer_clock)
        else:
            self._prev_expires = _NO_SCOPE
        _local.open = open_count + 1
        _local.expires_at = effective.expires_at
        _local.clock = effective.clock
        _ACTIVE += 1
        return effective

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        if self._prev_expires is _NO_SCOPE:
            _local.open = 0
        else:
            _local.open -= 1
            _local.expires_at = self._prev_expires
            _local.clock = self._prev_clock
        _ACTIVE -= 1


def checkpoint(what: str = "operation") -> None:
    """Cooperative check against the ambient deadline, if any.

    Near-free when no deadline scope is open (one global truth test);
    instrumented call sites may additionally guard with
    ``if deadline._ACTIVE:`` to skip even the function call.
    """
    if not _ACTIVE:
        return
    if not getattr(_local, "open", 0):
        return
    expires_at = _local.expires_at
    if expires_at is not None and _local.clock() >= expires_at:
        raise DeadlineExceeded(f"deadline exceeded during {what}")


def guard_rows(rows: Iterable, what: str = "row scan") -> Iterable:
    """Guard a row iterable with strided deadline polls when one is active.

    Returns *rows* unchanged when no deadline scope is open — the
    executor's loops call this once per operator invocation, so the
    disabled path pays one global test and no per-row cost.  While a
    deadline is active, the clock is consulted every :data:`CHECK_STRIDE`
    rows, bounding overshoot without a per-row clock call.

    Sized sequences no longer than :data:`CHECK_STRIDE` are returned
    as-is after one upfront expiry check: the strided poll could never
    fire mid-scan for them, so wrapping would add per-row generator
    overhead without adding any safety.  Longer sequences are guarded in
    stride-sized slices; unsized iterators keep a lazy per-row wrapper
    (eager chunking could compute rows a short-circuiting consumer never
    asks for).
    """
    if not _ACTIVE:
        return rows
    if not getattr(_local, "open", 0):
        return rows
    expires_at = _local.expires_at
    if expires_at is None:
        return rows
    clock = _local.clock
    if clock() >= expires_at:
        raise DeadlineExceeded(f"deadline exceeded during {what}")
    try:
        length = len(rows)  # type: ignore[arg-type]
    except TypeError:
        return _checked_iter(rows, expires_at, clock, what)
    if length <= CHECK_STRIDE:
        return rows
    return _checked_seq(rows, expires_at, clock, what)


def _checked_seq(rows, expires_at: float, clock, what: str) -> Iterator:
    for start in range(0, len(rows), CHECK_STRIDE):
        if start and clock() >= expires_at:
            raise DeadlineExceeded(f"deadline exceeded during {what}")
        yield from rows[start : start + CHECK_STRIDE]


def _checked_iter(
    rows: Iterable, expires_at: float, clock, what: str
) -> Iterator:
    countdown = CHECK_STRIDE
    for row in rows:
        countdown -= 1
        if countdown <= 0:
            countdown = CHECK_STRIDE
            if clock() >= expires_at:
                raise DeadlineExceeded(f"deadline exceeded during {what}")
        yield row
