"""Resilience policy — the one knob object the pipeline takes.

:class:`ResiliencePolicy` bundles every fault-tolerance setting for one
pipeline: the per-turn and per-stage deadline budgets, the retry
schedule for flaky stages, and the breaker thresholds.  ``clock`` and
``sleep`` are injectable and flow into every Deadline/Retry/Breaker the
pipeline builds from the policy, so a single fake clock drives the whole
subsystem deterministically under test.

``ResiliencePolicy.default()`` is tuned for the in-process simulated
stack (tens of milliseconds per stage): generous enough that the
no-faults path never trips, tight enough that an injected latency storm
exercises the deadline ladders in a fast test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.resilience.retry import RetryPolicy

__all__ = ["ResiliencePolicy"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Every knob of the fault-tolerance subsystem, in one frozen object.

    ``turn_deadline`` bounds a whole :meth:`Pipeline.run` call;
    ``stage_deadlines`` maps stage names (``translate``, ``execute``,
    ``render``) to tighter per-stage budgets — a stage budget can only
    shrink the turn budget, never extend it (see
    :meth:`repro.resilience.Deadline.tightened`).  ``None`` anywhere
    means "unbounded".

    ``retry`` applies to the stages listed in ``retry_stages`` (the
    flaky, model-backed ones — deterministic stages are not retried:
    they fail the same way twice).  Breaker knobs apply to the
    per-component breakers the pipeline creates via
    :func:`repro.resilience.breaker_for`.
    """

    turn_deadline: float | None = 5.0
    stage_deadlines: dict[str, float] = field(
        default_factory=lambda: {
            "translate": 2.0,
            "execute": 2.0,
            "render": 2.0,
        }
    )
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=3, base_delay=0.0)
    )
    retry_stages: tuple[str, ...] = ("translate",)
    breaker_failure_threshold: int = 3
    breaker_recovery_timeout: float = 5.0
    breaker_success_threshold: int = 1
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep

    @classmethod
    def default(cls) -> "ResiliencePolicy":
        """The stock policy for the in-process simulated stack."""
        return cls()

    def stage_budget(self, stage: str) -> float | None:
        """The per-stage deadline for *stage*, or ``None`` if unbounded."""
        return self.stage_deadlines.get(stage)
