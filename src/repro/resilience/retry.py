"""Bounded retries with deterministic backoff — see DESIGN.md §Resilience.

:class:`Retry` wraps a flaky callable (LLM/neural parser calls, simulated
model completions) in a bounded-attempt loop: on a retryable exception it
sleeps an exponentially growing backoff with *seeded* jitter, then tries
again, re-raising the last failure when attempts are exhausted.  Both the
clock and the sleep function are injectable, so tests run the whole
schedule in virtual time, and the jitter RNG is seeded, so a given policy
produces the same delay sequence on every run — determinism is a repo
invariant and retry timing is no exception.

Retries cooperate with ambient deadlines: a backoff sleep that would
outlive :func:`repro.resilience.deadline.current_deadline` is not taken —
the last failure is re-raised immediately, because sleeping past the turn
budget would turn one slow failure into two.

Observability: every attempt feeds ``repro.resilience.retry.attempts``
and the ``repro.resilience.retry.attempt.seconds`` latency histogram;
``.retries`` counts the sleeps actually taken and ``.exhausted`` the
wrappers that gave up.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import DeadlineExceeded
from repro.obs import metrics as _obs_metrics
from repro.resilience import deadline as _deadline

__all__ = ["Retry", "RetryPolicy"]

_registry = _obs_metrics.get_registry()
_ATTEMPTS = _registry.counter("repro.resilience.retry.attempts")
_RETRIES = _registry.counter("repro.resilience.retry.retries")
_EXHAUSTED = _registry.counter("repro.resilience.retry.exhausted")
_ATTEMPT_SECONDS = _registry.histogram(
    "repro.resilience.retry.attempt.seconds"
)


@dataclass(frozen=True)
class RetryPolicy:
    """The schedule knobs for one :class:`Retry` wrapper.

    ``max_attempts`` bounds total calls (1 = no retries).  Backoff before
    attempt *n* (n >= 2) is ``min(max_delay, base_delay *
    multiplier**(n - 2))`` scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` with a seeded RNG.  ``retry_on`` is the
    exception family considered transient; anything else propagates
    immediately — in particular :class:`DeadlineExceeded` is *never*
    retried (the budget that expired covers every attempt).
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.25
    seed: int = 0
    retry_on: tuple[type, ...] = (Exception,)

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff seconds to sleep before *attempt* (2-based)."""
        raw = min(
            self.max_delay,
            self.base_delay * self.multiplier ** max(0, attempt - 2),
        )
        if self.jitter <= 0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class Retry:
    """Apply a :class:`RetryPolicy` to callables.

    >>> retry = Retry(RetryPolicy(max_attempts=3), name="llm.parse")
    >>> result = retry.call(parser.parse, request)

    ``clock``/``sleep`` default to ``time.monotonic``/``time.sleep`` and
    are injectable for deterministic tests.  One :class:`Retry` instance
    is reusable across calls; its jitter RNG advances deterministically
    from the policy seed.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        name: str = "call",
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.name = name
        self.clock = clock if clock is not None else time.monotonic
        self.sleep = sleep if sleep is not None else time.sleep
        self._rng = random.Random(self.policy.seed)
        self._max_attempts = max(1, self.policy.max_attempts)
        #: delays actually slept, for tests and post-mortems
        self.slept: list[float] = []

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` under the retry schedule.

        Returns the first successful result; re-raises the last exception
        when attempts are exhausted, the failure is not retryable, or the
        ambient deadline cannot afford the next backoff sleep.
        """
        policy = self.policy
        last_exc: BaseException | None = None
        for attempt in range(1, self._max_attempts + 1):
            _ATTEMPTS.inc()
            start = self.clock()
            try:
                result = fn(*args, **kwargs)
            except DeadlineExceeded:
                _ATTEMPT_SECONDS.observe(self.clock() - start)
                raise  # the expired budget covers every further attempt
            except policy.retry_on as exc:
                _ATTEMPT_SECONDS.observe(self.clock() - start)
                last_exc = exc
                if attempt >= policy.max_attempts:
                    break
                delay = policy.delay_for(attempt + 1, self._rng)
                if not self._affordable(delay):
                    break
                _RETRIES.inc()
                self.slept.append(delay)
                if delay > 0:
                    self.sleep(delay)
                continue
            _ATTEMPT_SECONDS.observe(self.clock() - start)
            return result
        _EXHAUSTED.inc()
        assert last_exc is not None
        raise last_exc

    @staticmethod
    def _affordable(delay: float) -> bool:
        """Whether the ambient deadline leaves room for *delay* plus work."""
        ambient = _deadline.current_deadline()
        if ambient is None:
            return True
        remaining = ambient.remaining()
        return remaining is None or delay < remaining
