"""Fault injection — the chaos half of :mod:`repro.resilience`.

A :class:`FaultSpec` addresses one *site* (a stage name the pipeline
passes to :func:`fire`, e.g. ``translate`` or ``engine.vector``) and
describes what to inject there:

- ``error`` — raise :class:`~repro.errors.InjectedFault`;
- ``latency`` — sleep ``delay`` seconds (injectable sleep) before
  letting the call proceed;
- ``corrupt`` — mangle the site's string output (via
  :func:`corrupt_text`) so downstream parsing fails organically.

Activation is probabilistic (``p=0.2``), every-nth-call (``every=3``),
or both (nth-call wins when given).  All randomness comes from one
seeded RNG (:func:`install` takes the seed), so a chaos storm is exactly
reproducible — determinism is a repo invariant and injected chaos is no
exception.

Specs are written as compact strings, one per fault, semicolon-separated::

    translate:error:p=0.3;execute:latency:delay=0.05:every=2;translate:corrupt:p=0.1

and installed either programmatically (:func:`install`), via the
``REPRO_CHAOS`` environment variable (read once at first use), or from
the ``python -m repro chaos`` CLI.  The disabled path is one module
global truth test (``_ACTIVE``), mirroring the deadline machinery.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import InjectedFault
from repro.obs import metrics as _obs_metrics

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "active",
    "clear_faults",
    "corrupt_text",
    "fire",
    "install",
    "parse_fault_spec",
]

KINDS = ("error", "latency", "corrupt")

_registry = _obs_metrics.get_registry()
_INJECTED = _registry.counter("repro.resilience.faults.injected")
_DELAYS = _registry.counter("repro.resilience.faults.delays")
_CORRUPTIONS = _registry.counter("repro.resilience.faults.corruptions")

#: Whether a fault plan is installed; hot call sites test this single
#: global before doing anything else.
_ACTIVE = False

_PLAN: "FaultPlan | None" = None
_ENV_CHECKED = False

ENV_VAR = "REPRO_CHAOS"


@dataclass(frozen=True)
class FaultSpec:
    """One injector: *kind* of fault at *site*, with an activation rule.

    ``every`` (nth-call, 1-based) takes precedence over ``p``
    (per-call probability) when both are given.  ``delay`` is only
    meaningful for ``latency`` faults.
    """

    site: str
    kind: str
    p: float = 1.0
    every: int | None = None
    delay: float = 0.01

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1]: {self.p}")
        if self.every is not None and self.every < 1:
            raise ValueError(f"fault every= must be >= 1: {self.every}")


@dataclass
class FaultPlan:
    """A set of installed :class:`FaultSpec`\\ s plus their seeded RNG.

    ``sleep`` is injectable so latency faults run in virtual time under
    test; call counts are tracked per (site, kind) for nth-call rules.
    """

    specs: tuple[FaultSpec, ...]
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep
    rng: random.Random = field(init=False)
    calls: dict[tuple[str, str], int] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def _should_fire(self, spec: FaultSpec) -> bool:
        key = (spec.site, spec.kind)
        count = self.calls.get(key, 0) + 1
        self.calls[key] = count
        if spec.every is not None:
            return count % spec.every == 0
        if spec.p >= 1.0:
            return True
        return self.rng.random() < spec.p

    def fire(self, site: str) -> None:
        """Run error/latency injectors registered for *site*."""
        for spec in self.specs:
            if spec.site != site or spec.kind == "corrupt":
                continue
            if not self._should_fire(spec):
                continue
            if spec.kind == "latency":
                _DELAYS.inc()
                self.sleep(spec.delay)
            else:
                _INJECTED.inc()
                raise InjectedFault(site)

    def corrupt_text(self, site: str, text: str) -> str:
        """Apply any ``corrupt`` injectors for *site* to *text*."""
        out = text
        for spec in self.specs:
            if spec.site != site or spec.kind != "corrupt":
                continue
            if not self._should_fire(spec):
                continue
            _CORRUPTIONS.inc()
            # A mangling that reliably breaks both SQL and VQL parsing
            # while staying printable in transcripts and logs.
            out = f"\x7f{out[::-1]}\x7f"
        return out


def parse_fault_spec(text: str) -> tuple[FaultSpec, ...]:
    """Parse a semicolon-separated chaos spec string into specs.

    Each fault is ``site:kind[:p=0.2][:every=3][:delay=0.05]``; see the
    module docstring for examples.  Raises ``ValueError`` on malformed
    input (unknown kind, bad option, out-of-range probability).
    """
    specs: list[FaultSpec] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = [p.strip() for p in chunk.split(":")]
        if len(parts) < 2:
            raise ValueError(
                f"fault spec {chunk!r} must be site:kind[:opt=val...]"
            )
        site, kind = parts[0], parts[1]
        if not site:
            raise ValueError(f"fault spec {chunk!r} has an empty site")
        kwargs: dict[str, float | int] = {}
        for opt in parts[2:]:
            if "=" not in opt:
                raise ValueError(
                    f"fault option {opt!r} in {chunk!r} must be key=value"
                )
            key, _, value = opt.partition("=")
            key = key.strip()
            if key == "p":
                kwargs["p"] = float(value)
            elif key == "every":
                kwargs["every"] = int(value)
            elif key == "delay":
                kwargs["delay"] = float(value)
            else:
                raise ValueError(
                    f"unknown fault option {key!r} in {chunk!r}"
                )
        specs.append(FaultSpec(site=site, kind=kind, **kwargs))
    return tuple(specs)


def install(
    specs: "str | tuple[FaultSpec, ...] | list[FaultSpec]",
    seed: int = 0,
    sleep: Callable[[float], None] | None = None,
) -> FaultPlan:
    """Install a fault plan process-wide (replacing any previous plan).

    *specs* may be a spec string (parsed with :func:`parse_fault_spec`)
    or a sequence of :class:`FaultSpec`.  Returns the installed plan.
    """
    global _ACTIVE, _PLAN, _ENV_CHECKED
    if isinstance(specs, str):
        parsed = parse_fault_spec(specs)
    else:
        parsed = tuple(specs)
    plan = FaultPlan(
        parsed, seed=seed, sleep=sleep if sleep is not None else time.sleep
    )
    _PLAN = plan
    _ACTIVE = bool(parsed)
    _ENV_CHECKED = True  # explicit install overrides the env var
    return plan


def clear_faults() -> None:
    """Remove any installed fault plan (and forget the env override)."""
    global _ACTIVE, _PLAN, _ENV_CHECKED
    _PLAN = None
    _ACTIVE = False
    _ENV_CHECKED = True


def _check_env() -> None:
    global _ENV_CHECKED
    if _ENV_CHECKED:
        return
    _ENV_CHECKED = True
    spec = os.environ.get(ENV_VAR, "").strip()
    if spec:
        install(spec)


def active() -> bool:
    """Whether any fault plan is installed (checks ``REPRO_CHAOS`` once)."""
    if not _ENV_CHECKED:
        _check_env()
    return _ACTIVE


def fire(site: str) -> None:
    """Injection hook: raise/delay per any installed plan for *site*.

    Near-free when no plan is installed (one global truth test after the
    one-time env check).
    """
    if not _ENV_CHECKED:
        _check_env()
    if not _ACTIVE or _PLAN is None:
        return
    _PLAN.fire(site)


def corrupt_text(site: str, text: str) -> str:
    """Injection hook for string outputs: mangle *text* per the plan."""
    if not _ENV_CHECKED:
        _check_env()
    if not _ACTIVE or _PLAN is None:
        return text
    return _PLAN.corrupt_text(site, text)
