"""``python -m repro chaos`` — fault-injection chaos runs.

Drives the resilient pipeline through a seeded chaos storm and reports
how it held up::

    python -m repro chaos                              # stock 20% storm
    python -m repro chaos --spec "translate:error:p=0.3;execute:latency:delay=0.02"
    python -m repro chaos --turns 40 --seed 3 --json   # machine-readable
    python -m repro chaos --domain healthcare          # any curated domain

Each run builds a domain database, installs the fault plan
(:func:`repro.resilience.install_faults` — the same injectors the
``REPRO_CHAOS`` env var drives), and asks a scripted mix of query and
chart questions through a :class:`~repro.core.NaturalLanguageInterface`
running under the default :class:`~repro.resilience.ResiliencePolicy`.
The report counts healthy, degraded, and failed turns, the ladder rungs
taken, and the resilience counters (retries, breaker trips, injections).
Everything is seeded — same spec + seed, same storm, same report.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import metrics as _obs_metrics
from repro.resilience import faults as _faults
from repro.resilience.policy import ResiliencePolicy

#: the stock storm: 20% stage failure plus injected latency, the
#: acceptance scenario the chaos-storm test in ``tests/test_resilience.py``
#: locks down
DEFAULT_SPEC = (
    "translate:error:p=0.2;execute:error:p=0.2;render:error:p=0.2;"
    "execute:latency:p=0.2:delay=0.001"
)

def _questions(db, turns: int) -> list[str]:
    """A scripted query/chart mix every stock parser stack can answer.

    Count questions alternate with schema-derived chart requests
    ("... per <text column>"), so a storm exercises both the SQL and the
    visualization branches of the pipeline.
    """
    from repro.data.schema import ColumnType

    pool: list[str] = []
    for table in db.schema.tables:
        name = table.name.replace("_", " ")
        pool.append(f"how many {name} are there")
        text_columns = [
            c.name for c in table.columns if c.type is ColumnType.TEXT
        ]
        if text_columns:
            per = text_columns[0].replace("_", " ")
            pool.append(
                f"draw a bar chart of the number of {name} per {per}"
            )
    return [pool[i % len(pool)] for i in range(turns)]


def run_chaos(
    spec: str,
    domain: str = "sales",
    turns: int = 20,
    seed: int = 0,
) -> dict:
    """Run one seeded chaos storm; returns the report dict.

    Installs *spec* (cleared before returning), runs *turns* scripted
    questions through a resilient NLI, and never lets a fault escape —
    an unhandled exception is itself a reported failure, not a crash.
    """
    from repro.core import NaturalLanguageInterface
    from repro.data.domains import domain_by_name
    from repro.data.generator import DatabaseGenerator
    from repro.resilience.breaker import reset_breakers

    # breakers live in a process-wide registry: a breaker tripped by an
    # earlier storm in this process must not poison this run's warm pass
    reset_breakers()
    db = DatabaseGenerator(seed=seed).populate(
        domain_by_name(domain), rows_per_table=40
    )
    nli = NaturalLanguageInterface(
        db, resilience=ResiliencePolicy.default()
    )
    questions = _questions(db, turns)
    # warm pass: serve each question once fault-free so the execute
    # ladder's cached-result rung has something sound to fall back on —
    # the pattern a long-lived serving process gets for free
    for question in sorted(set(questions)):
        nli.ask(question)
    nli.reset()
    _faults.install(spec, seed=seed)
    healthy = degraded = failed = raised = 0
    rungs: dict[str, int] = {}
    try:
        for question in questions:
            try:
                answer = nli.ask(question)
            except Exception:  # the resilient contract says: never
                raised += 1
                failed += 1
                continue
            for rung in answer.degraded:
                rungs[rung] = rungs.get(rung, 0) + 1
            if not answer.ok:
                failed += 1
            elif answer.degraded:
                degraded += 1
            else:
                healthy += 1
    finally:
        _faults.clear_faults()
    snapshot = _obs_metrics.get_registry().snapshot()
    counters = {
        name: value
        for name, value in snapshot.items()
        if name.startswith("repro.resilience.") and value
    }
    recovered = healthy + degraded
    return {
        "spec": spec,
        "domain": domain,
        "seed": seed,
        "turns": turns,
        "healthy": healthy,
        "degraded": degraded,
        "failed": failed,
        "unhandled_exceptions": raised,
        "recovery_rate": recovered / turns if turns else 1.0,
        "ladder_rungs": dict(sorted(rungs.items())),
        "counters": counters,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="run a seeded fault-injection storm through the "
        "resilient pipeline",
    )
    parser.add_argument(
        "--spec",
        default=DEFAULT_SPEC,
        help="fault plan: 'site:kind[:p=..][:every=..][:delay=..];...' "
        f"(default: the stock 20%% storm)",
    )
    parser.add_argument("--domain", default="sales")
    parser.add_argument("--turns", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    args = parser.parse_args(argv)

    try:
        _faults.parse_fault_spec(args.spec)
    except ValueError as exc:
        print(f"invalid --spec: {exc}", file=sys.stderr)
        return 2

    report = run_chaos(
        args.spec, domain=args.domain, turns=args.turns, seed=args.seed
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"chaos storm: {report['spec']}")
        print(
            f"  {report['turns']} turn(s): {report['healthy']} healthy, "
            f"{report['degraded']} degraded, {report['failed']} failed"
        )
        print(f"  recovery rate: {report['recovery_rate']:.0%}")
        for rung, count in report["ladder_rungs"].items():
            print(f"  ladder {rung}: {count}")
        if report["unhandled_exceptions"]:
            print(
                f"  UNHANDLED EXCEPTIONS: {report['unhandled_exceptions']}"
            )
    return 1 if report["unhandled_exceptions"] else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
