"""Fault tolerance for the serving path — deadlines, retries, breakers, chaos.

The subsystem the ROADMAP's "serves heavy traffic" north star demands:
a hung or failing stage must cost one degraded turn, not the process.
Four cooperating pieces, all zero-dependency and deterministic:

- :class:`Deadline` / :func:`deadline_scope` / :func:`checkpoint` —
  cooperative per-turn and per-stage time budgets, polled in the
  executor's row/vector loops and the parsers' candidate loops;
- :class:`Retry` / :class:`RetryPolicy` — bounded attempts with
  injectable-clock exponential backoff and seeded jitter for flaky
  (model-backed) stages;
- :class:`CircuitBreaker` / :func:`breaker_for` — per-component
  closed → open → half-open breakers that stop hammering a failing
  component and let :mod:`repro.core.pipeline` drop straight onto its
  degradation ladder;
- :mod:`repro.resilience.faults` — the chaos harness
  (:func:`install_faults` / ``REPRO_CHAOS`` / ``python -m repro chaos``)
  that makes all of the above testable in CI.

See ``DESIGN.md`` §Resilience for the semantics and
``docs/architecture.md`` for where each piece sits in a turn.
"""

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    InjectedFault,
    ResilienceError,
)
from repro.resilience.breaker import (
    CircuitBreaker,
    all_breakers,
    breaker_for,
    reset_breakers,
)
from repro.resilience.deadline import (
    Deadline,
    checkpoint,
    current_deadline,
    deadline_scope,
    guard_rows,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    clear_faults,
    parse_fault_spec,
)
from repro.resilience.faults import install as install_faults
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import Retry, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceError",
    "ResiliencePolicy",
    "Retry",
    "RetryPolicy",
    "all_breakers",
    "breaker_for",
    "checkpoint",
    "clear_faults",
    "current_deadline",
    "deadline_scope",
    "guard_rows",
    "install_faults",
    "parse_fault_spec",
    "reset_breakers",
]
