"""Error injection for the simulated LLM.

When the simulator decides a completion goes wrong, the failure must look
like real LLM Text-to-SQL failures, which the literature characterizes as
(in rough frequency order): schema-linking slips (wrong column/table),
wrong comparison operator or aggregate, dropped or hallucinated
conditions/clauses, value formatting errors, and (rarely, for strong
models) outright syntax errors.  This module implements those failure
modes as AST-level corruption operators.
"""

from __future__ import annotations

import random
from dataclasses import replace as dc_replace

from repro.data.schema import Schema
from repro.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    Like,
    Literal,
    OrderItem,
    Query,
    Select,
    SelectItem,
    SetOperation,
)

#: corruption op name -> sampling weight (matches observed failure mixes)
_OPS: tuple[tuple[str, int], ...] = (
    ("swap_column", 5),
    ("wrong_op", 3),
    ("drop_condition", 2),
    ("wrong_agg", 2),
    ("value_error", 3),
    ("drop_order", 1),
    ("wrong_direction", 1),
)


def corrupt_query(
    query: Query, schema: Schema, rng: random.Random, severity: int = 1
) -> Query:
    """Apply *severity* corruption operations to a copy of *query*."""
    for _ in range(max(1, severity)):
        op = _weighted_choice(rng)
        query = _apply(op, query, schema, rng)
    return query


def syntax_error_text(sql: str, rng: random.Random) -> str:
    """Turn valid SQL text into a plausibly broken completion."""
    choice = rng.randrange(3)
    if choice == 0:
        # truncated generation with a dangling clause keyword
        cut = max(8, int(len(sql) * rng.uniform(0.4, 0.8)))
        return sql[:cut] + " WHERE"
    if choice == 1:
        # unbalanced parenthesis
        return sql + ")"
    # misspelled leading keyword
    return sql.replace("SELECT", "SELCT", 1)


# ----------------------------------------------------------------------
def _weighted_choice(rng: random.Random) -> str:
    total = sum(weight for _, weight in _OPS)
    roll = rng.randrange(total)
    for name, weight in _OPS:
        roll -= weight
        if roll < 0:
            return name
    return _OPS[0][0]  # pragma: no cover


def _apply(op: str, query: Query, schema: Schema, rng: random.Random) -> Query:
    if isinstance(query, SetOperation):
        # corrupt one branch
        if rng.random() < 0.5:
            return SetOperation(
                op=query.op,
                left=_apply(op, query.left, schema, rng),
                right=query.right,
            )
        return SetOperation(
            op=query.op,
            left=query.left,
            right=_apply(op, query.right, schema, rng),
        )
    select = query
    if op == "swap_column":
        return _swap_column(select, schema, rng)
    if op == "wrong_op":
        return _wrong_op(select, rng)
    if op == "drop_condition":
        return _drop_condition(select)
    if op == "wrong_agg":
        return _wrong_agg(select, rng)
    if op == "value_error":
        return _value_error(select, rng)
    if op == "drop_order":
        return dc_replace(select, order_by=(), limit=select.limit)
    if op == "wrong_direction":
        if select.order_by:
            flipped = tuple(
                OrderItem(expr=o.expr, descending=not o.descending)
                for o in select.order_by
            )
            return dc_replace(select, order_by=flipped)
        return _swap_column(select, schema, rng)
    return select  # pragma: no cover


def _other_column(
    ref: ColumnRef, schema: Schema, rng: random.Random
) -> ColumnRef:
    """A plausible wrong column: same table, same type family if possible."""
    for table in schema.tables:
        if not table.has_column(ref.column):
            continue
        target = table.column(ref.column)
        same_type = [
            c
            for c in table.columns
            if c.name.lower() != ref.column.lower()
            and c.type.family == target.type.family
        ]
        pool = same_type or [
            c for c in table.columns if c.name.lower() != ref.column.lower()
        ]
        if pool:
            pick = rng.choice(pool)
            return ColumnRef(column=pick.name.lower(), table=ref.table)
    return ref


def _swap_column(select: Select, schema: Schema, rng: random.Random) -> Select:
    # prefer swapping a projection column; fall back to a condition column
    items = list(select.items)
    refs = [
        (i, item)
        for i, item in enumerate(items)
        if isinstance(item.expr, ColumnRef)
    ]
    if refs:
        index, item = rng.choice(refs)
        items[index] = SelectItem(
            expr=_other_column(item.expr, schema, rng), alias=item.alias
        )
        return dc_replace(select, items=tuple(items))
    if select.where is not None:
        return dc_replace(
            select, where=_swap_where_column(select.where, schema, rng)
        )
    return select


def _swap_where_column(expr, schema: Schema, rng: random.Random):
    if isinstance(expr, BinaryOp) and isinstance(expr.left, ColumnRef):
        if expr.op == "and":
            return BinaryOp(
                op="and",
                left=_swap_where_column(expr.left, schema, rng),
                right=expr.right,
            )
        return BinaryOp(
            op=expr.op,
            left=_other_column(expr.left, schema, rng),
            right=expr.right,
        )
    if isinstance(expr, (Like, Between)) and isinstance(expr.expr, ColumnRef):
        return dc_replace(expr, expr=_other_column(expr.expr, schema, rng))
    return expr


def _wrong_op(select: Select, rng: random.Random) -> Select:
    if select.where is None:
        return select

    def flip(expr):
        if isinstance(expr, BinaryOp):
            if expr.op == "and":
                return BinaryOp(
                    op="and", left=flip(expr.left), right=expr.right
                )
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                alternatives = [
                    op
                    for op in ("=", "<>", "<", "<=", ">", ">=")
                    if op != expr.op
                ]
                return BinaryOp(
                    op=rng.choice(alternatives),
                    left=expr.left,
                    right=expr.right,
                )
        return expr

    return dc_replace(select, where=flip(select.where))


def _drop_condition(select: Select) -> Select:
    if select.where is None:
        return select
    where = select.where
    if isinstance(where, BinaryOp) and where.op == "and":
        return dc_replace(select, where=where.left)
    return dc_replace(select, where=None)


def _wrong_agg(select: Select, rng: random.Random) -> Select:
    items = list(select.items)
    for index, item in enumerate(items):
        if isinstance(item.expr, FuncCall) and item.expr.is_aggregate:
            alternatives = [
                f
                for f in ("count", "sum", "avg", "min", "max")
                if f != item.expr.name.lower()
            ]
            # COUNT(*) cannot become SUM(*): reuse args when present
            name = rng.choice(alternatives)
            args = item.expr.args
            from repro.sql.ast import Star

            if name != "count" and args and isinstance(args[0], Star):
                continue
            items[index] = SelectItem(
                expr=FuncCall(name=name, args=args, distinct=item.expr.distinct),
                alias=item.alias,
            )
            return dc_replace(select, items=tuple(items))
    return _wrong_op(select, rng)


def _value_error(select: Select, rng: random.Random) -> Select:
    if select.where is None:
        return select

    def perturb(expr):
        if isinstance(expr, BinaryOp):
            if expr.op == "and":
                return BinaryOp(
                    op="and", left=perturb(expr.left), right=expr.right
                )
            if isinstance(expr.right, Literal):
                return BinaryOp(
                    op=expr.op,
                    left=expr.left,
                    right=_perturb_literal(expr.right, rng),
                )
        if isinstance(expr, Between) and isinstance(expr.low, Literal):
            return dc_replace(expr, low=_perturb_literal(expr.low, rng))
        return expr

    return dc_replace(select, where=perturb(select.where))


def _perturb_literal(literal: Literal, rng: random.Random) -> Literal:
    value = literal.value
    if isinstance(value, bool) or value is None:
        return literal
    if isinstance(value, int):
        return Literal(value + rng.choice((-2, -1, 1, 2)))
    if isinstance(value, float):
        return Literal(round(value * rng.uniform(0.8, 1.2), 2))
    text = str(value)
    choice = rng.randrange(3)
    if choice == 0:
        return Literal(text.lower())
    if choice == 1:
        return Literal(text.upper())
    return Literal(text.rstrip("aeiou") or text)
