"""The simulated LLM's completion interface.

``SimulatedLLM.complete(prompt, temperature, n)`` is the whole API — the
same text-in/text-out surface the LLM-stage parsers would call on a real
model.  Internally (see the package docstring and DESIGN.md) the simulator

1. parses the prompt's structured fields — it knows *only* what the prompt
   contains, including the schema, which it re-parses out of the CREATE
   TABLE serialization;
2. solves the question with the grammar semantic parser at the capability
   level of its :class:`~repro.llm.profiles.ModelProfile`;
3. computes an effective error rate from the profile and the prompt's
   engineering quality (schema present? descriptions? demonstrations and
   their similarity? chain-of-thought? repair feedback?);
4. deterministically (per prompt and sample index) decides whether and how
   to corrupt the answer, then renders a completion — with step-by-step
   reasoning text when CoT was requested.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from repro.errors import LLMError
from repro.llm.corruption import corrupt_query, syntax_error_text
from repro.llm.profiles import ModelProfile, get_profile
from repro.llm.prompts import ParsedPrompt, parse_prompt
from repro.nlg.lexicon import CHART_PHRASES
from repro.parsers.base import ParseRequest
from repro.parsers.semantic import GrammarSemanticParser
from repro.sql.ast import Query
from repro.sql.components import classify_hardness
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql


@dataclass
class Completion:
    """One sampled completion."""

    text: str
    prompt_tokens: int
    completion_tokens: int


def _stable_hash(text: str) -> int:
    value = 1469598103934665603
    for ch in text:
        value = ((value ^ ord(ch)) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return value


class SimulatedLLM:
    """Deterministic prompt-sensitive text completion; see module docstring."""

    def __init__(
        self, profile: str | ModelProfile = "chatgpt-like", seed: int = 0
    ) -> None:
        self.profile = (
            profile if isinstance(profile, ModelProfile) else get_profile(profile)
        )
        self.seed = seed
        self.calls = 0
        self.total_prompt_tokens = 0

    # ------------------------------------------------------------------
    def complete(
        self, prompt: str, temperature: float = 0.0, n: int = 1
    ) -> list[Completion]:
        """Sample *n* completions for *prompt*."""
        if n < 1:
            raise LLMError("n must be >= 1")
        self.calls += 1
        prompt_tokens = len(prompt.split())
        self.total_prompt_tokens += prompt_tokens * n
        parsed = parse_prompt(prompt)
        completions = []
        for index in range(n):
            sample_key = index if temperature > 0 else 0
            rng = random.Random(
                _stable_hash(prompt) ^ (self.seed * 1000003) ^ sample_key
            )
            text = self._answer(parsed, rng, temperature)
            completions.append(
                Completion(
                    text=text,
                    prompt_tokens=prompt_tokens,
                    completion_tokens=len(text.split()),
                )
            )
        return completions

    # ------------------------------------------------------------------
    def _answer(
        self, parsed: ParsedPrompt, rng: random.Random, temperature: float
    ) -> str:
        if not parsed.question:
            return "I need a question to answer."
        if parsed.schema is None:
            # without a schema in the prompt the model can only guess
            return self._render(
                parsed, "SELECT name FROM data", reasoning="No schema given."
            )

        if parsed.task == "vis":
            restyle = self._try_restyle(parsed)
            if restyle is not None:
                return self._render(parsed, restyle, reasoning=None)

        query, solved_language = self._solve(parsed)
        if query is None:
            # unsolvable for this model: emit a shallow guess
            guess = self._fallback_query(parsed)
            return self._render(parsed, guess, reasoning="Best guess.")

        error = self._effective_error(parsed, query, temperature)
        corrupted = rng.random() < error
        if corrupted:
            if rng.random() < self.profile.syntax_error_rate / max(
                error, 1e-9
            ) * self.profile.base_error:
                sql_text = syntax_error_text(to_sql(query), rng)
                return self._render(parsed, sql_text, reasoning=None)
            severity = 1 + int(rng.random() < 0.25)
            query = corrupt_query(query, parsed.schema, rng, severity)

        sql_text = to_sql(query)
        reasoning = None
        if parsed.chain_of_thought:
            reasoning = self._reasoning_text(parsed, query)
        if parsed.task == "vis":
            chart = self._detect_chart(parsed.question, rng, corrupted)
            sql_text = f"VISUALIZE {chart.upper()} {sql_text}"
        return self._render(parsed, sql_text, reasoning)

    # ------------------------------------------------------------------
    def _solve(self, parsed: ParsedPrompt) -> tuple[Query | None, str]:
        parser = GrammarSemanticParser(
            world_knowledge=self.profile.knows_world_synonyms,
            fuzzy=self.profile.knows_world_synonyms,
            languages=self.profile.languages,
            use_knowledge=parsed.knowledge is not None,
            use_history=bool(parsed.history),
            guess_unlinked=True,
        )
        history = []
        for turn_q, turn_sql in parsed.history:
            try:
                history.append((turn_q, parse_sql(turn_sql)))
            except Exception:
                continue
        question = parsed.question
        for language in self._language_order(question):
            request = ParseRequest(
                question=question,
                schema=parsed.schema,
                db=None,
                knowledge=parsed.knowledge,
                history=history,
                language=language,
            )
            result = parser.parse(request)
            if result.query is not None:
                return result.query, language
        return None, "en"

    def _language_order(self, question: str) -> list[str]:
        has_cjk = any("一" <= ch <= "鿿" for ch in question)
        order = ["en"]
        if has_cjk and "zh" in self.profile.languages:
            order = ["zh", "en"]
        else:
            for language in self.profile.languages:
                if language != "en":
                    order.append(language)
        return order

    def _effective_error(
        self, parsed: ParsedPrompt, query: Query, temperature: float
    ) -> float:
        profile = self.profile
        quality = 0.0
        if parsed.schema is not None:
            quality += 0.5
        if parsed.has_descriptions:
            quality += 0.25
        if parsed.schema is not None and parsed.schema.foreign_keys:
            quality += 0.25
        error = profile.base_error * (
            1.0 - profile.prompt_sensitivity * min(quality, 1.0)
        )

        question_tokens = set(parsed.question.lower().split())
        for demo_question, _demo_sql in parsed.demonstrations[:8]:
            demo_tokens = set(demo_question.lower().split())
            union = question_tokens | demo_tokens
            similarity = (
                len(question_tokens & demo_tokens) / len(union) if union else 0
            )
            error *= 1.0 - profile.demo_gain * (0.5 + similarity)

        hardness = classify_hardness(query)
        if parsed.chain_of_thought:
            boost = 3.0 if hardness in ("hard", "extra") else 1.0
            error *= 1.0 - min(0.9, profile.cot_gain * boost)
        elif hardness in ("hard", "extra"):
            error *= 1.35  # hard questions fail more without reasoning

        if parsed.repair_of is not None:
            error *= profile.repair_factor

        error *= 1.0 + 0.3 * temperature
        return max(0.01, min(0.95, error))

    def _fallback_query(self, parsed: ParsedPrompt) -> str:
        schema = parsed.schema
        assert schema is not None
        lowered = parsed.question.lower()
        table = schema.tables[0]
        for candidate in schema.tables:
            if candidate.name.lower().rstrip("s") in lowered:
                table = candidate
                break
        column = table.columns[0].name
        return f"SELECT {column} FROM {table.name}"

    def _try_restyle(self, parsed: ParsedPrompt) -> str | None:
        """Conversational re-styling: 'make it a pie chart' reuses the
        previous turn's data query with a new chart type (ChartDialogs)."""
        if not parsed.history:
            return None
        match = re.search(
            r"\b(?:make it|show that as|switch to)\s+an?\s+"
            r"(bar|pie|line|scatter)\s+(?:chart|graph|plot)",
            parsed.question,
            flags=re.IGNORECASE,
        )
        if not match:
            return None
        previous_sql = parsed.history[-1][1]
        # history entries may be plain SQL or whole VQL programs
        if previous_sql.upper().startswith("VISUALIZE"):
            previous_sql = previous_sql.split(None, 2)[2]
        return f"VISUALIZE {match.group(1).upper()} {previous_sql}"

    def _detect_chart(
        self, question: str, rng: random.Random, corrupted: bool
    ) -> str:
        lowered = question.lower()
        detected = None
        for chart_type, phrases in CHART_PHRASES.items():
            if any(phrase in lowered for phrase in phrases) or (
                f"{chart_type} chart" in lowered
                or f"{chart_type} graph" in lowered
                or f"{chart_type} plot" in lowered
            ):
                detected = chart_type
                break
        if detected is None:
            detected = "bar"
        if corrupted and rng.random() < 0.3:
            alternatives = [
                t for t in ("bar", "pie", "line", "scatter") if t != detected
            ]
            detected = rng.choice(alternatives)
        return detected

    def _reasoning_text(self, parsed: ParsedPrompt, query: Query) -> str:
        from repro.sql.ast import Select, from_tables

        select = query
        while not isinstance(select, Select):
            select = select.left
        tables = ", ".join(ref.name for ref in from_tables(select.from_))
        steps = [
            f"1. The question asks about: {parsed.question.rstrip('?')}.",
            f"2. Relevant table(s): {tables}.",
            "3. Compose the clauses and assemble the query.",
        ]
        return "\n".join(steps)

    def _render(
        self, parsed: ParsedPrompt, sql_text: str, reasoning: str | None
    ) -> str:
        parts = []
        if reasoning:
            parts.append(reasoning)
        parts.append(f"```sql\n{sql_text}\n```")
        return "\n".join(parts)
