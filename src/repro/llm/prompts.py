"""Prompt assembly and parsing for the simulated LLM.

``PromptBuilder`` produces the structured prompts that the surveyed
LLM-stage methods engineer — schema serialization (CREATE TABLE form, with
optional column-description comments, the "clear prompting" ingredient of
C3), in-context demonstrations, chain-of-thought instructions, external
knowledge, conversation history, and self-correction/repair sections.

The same module owns the *parsing* side: :func:`parse_prompt` recovers the
structured fields (the simulator only knows what the prompt contains) and
:func:`extract_sql` / :func:`extract_vql` pull programs out of completions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.data.schema import Column, ColumnType, ForeignKey, Schema, TableSchema

_TASK_SQL = "Translate the question into a SQL query."
_TASK_VIS = (
    "Translate the question into a VQL visualization query "
    "(VISUALIZE <TYPE> <SQL>)."
)
_COT_MARKER = "Let's think step by step."


@dataclass
class PromptBuilder:
    """Configurable prompt assembly.

    ``include_schema``          serialize CREATE TABLE statements
    ``include_descriptions``    add column synonym comments (clear prompting)
    ``include_foreign_keys``    add FK comments (schema structure hints)
    ``chain_of_thought``        add the CoT instruction
    """

    include_schema: bool = True
    include_descriptions: bool = True
    include_foreign_keys: bool = True
    chain_of_thought: bool = False
    task: str = "sql"  # "sql" | "vis"

    def build(
        self,
        question: str,
        schema: Schema,
        demonstrations: list[tuple[str, str]] | None = None,
        knowledge: str | None = None,
        history: list[tuple[str, str]] | None = None,
        repair_of: str | None = None,
        error: str | None = None,
    ) -> str:
        lines: list[str] = []
        lines.append(
            f"### Task: {_TASK_VIS if self.task == 'vis' else _TASK_SQL}"
        )
        if self.include_schema:
            lines.append(f"### Schema ({schema.db_id}):")
            lines.append(serialize_schema(
                schema,
                descriptions=self.include_descriptions,
                foreign_keys=self.include_foreign_keys,
            ))
        if knowledge:
            lines.append(f"### Knowledge: {knowledge}")
        if demonstrations:
            lines.append("### Examples:")
            for demo_q, demo_sql in demonstrations:
                lines.append(f"Q: {demo_q}")
                lines.append(f"A: {demo_sql}")
        if history:
            lines.append("### Conversation so far:")
            for turn_q, turn_sql in history:
                lines.append(f"Q: {turn_q}")
                lines.append(f"A: {turn_sql}")
        if repair_of is not None:
            lines.append("### Your previous answer:")
            lines.append(repair_of)
            lines.append(f"### It failed with: {error or 'unknown error'}")
            lines.append("### Please fix it.")
        if self.chain_of_thought:
            lines.append(f"### {_COT_MARKER}")
        lines.append(f"### Question: {question}")
        lines.append("A:")
        return "\n".join(lines)


def serialize_schema(
    schema: Schema, descriptions: bool = True, foreign_keys: bool = True
) -> str:
    """CREATE TABLE serialization of a schema (with optional comments)."""
    statements = []
    for table in schema.tables:
        columns = []
        for column in table.columns:
            text = f"{column.name} {column.type.value.upper()}"
            if descriptions and column.synonyms:
                text += f" /* aka: {', '.join(column.synonyms)} */"
            columns.append(text)
        statement = f"CREATE TABLE {table.name} ({', '.join(columns)});"
        if descriptions and table.synonyms:
            statement += f" /* aka: {', '.join(table.synonyms)} */"
        statements.append(statement)
    if foreign_keys:
        for fk in schema.foreign_keys:
            statements.append(
                f"-- FK: {fk.table}.{fk.column} -> "
                f"{fk.ref_table}.{fk.ref_column}"
            )
    return "\n".join(statements)


@dataclass
class ParsedPrompt:
    """The structured fields the simulator reads out of a prompt."""

    task: str = "sql"
    question: str = ""
    schema: Schema | None = None
    knowledge: str | None = None
    demonstrations: list[tuple[str, str]] = field(default_factory=list)
    history: list[tuple[str, str]] = field(default_factory=list)
    chain_of_thought: bool = False
    has_descriptions: bool = False
    repair_of: str | None = None
    error: str | None = None


def parse_prompt(prompt: str) -> ParsedPrompt:
    """Recover the structured prompt fields (see module docstring)."""
    parsed = ParsedPrompt()
    parsed.task = "vis" if "VQL" in prompt else "sql"
    parsed.chain_of_thought = _COT_MARKER in prompt
    parsed.has_descriptions = "/* aka:" in prompt

    question = re.search(r"### Question:\s*(.+)", prompt)
    if question:
        parsed.question = question.group(1).strip()

    knowledge = re.search(r"### Knowledge:\s*(.+)", prompt)
    if knowledge:
        parsed.knowledge = knowledge.group(1).strip()

    schema_match = re.search(
        r"### Schema \((?P<db>[^)]+)\):\n(?P<body>.*?)(?=\n###)",
        prompt,
        flags=re.DOTALL,
    )
    if schema_match:
        parsed.schema = deserialize_schema(
            schema_match.group("db"), schema_match.group("body")
        )

    for section, target in (
        ("Examples", parsed.demonstrations),
        ("Conversation so far", parsed.history),
    ):
        body = re.search(
            rf"### {re.escape(section)}:\n(.*?)(?=\n###)",
            prompt,
            flags=re.DOTALL,
        )
        if body:
            pairs = re.findall(
                r"Q:\s*(.+?)\nA:\s*(.+?)(?=\nQ:|\Z)",
                body.group(1),
                flags=re.DOTALL,
            )
            target.extend(
                (q.strip(), a.strip()) for q, a in pairs
            )

    repair = re.search(
        r"### Your previous answer:\n(.*?)\n### It failed with:\s*(.+?)\n",
        prompt,
        flags=re.DOTALL,
    )
    if repair:
        parsed.repair_of = repair.group(1).strip()
        parsed.error = repair.group(2).strip()
    return parsed


def deserialize_schema(db_id: str, body: str) -> Schema:
    """Rebuild a Schema object from its CREATE TABLE serialization.

    The simulator only knows what the prompt says: synonyms exist only when
    the serialization included description comments, foreign keys only when
    FK comments are present.
    """
    tables: list[TableSchema] = []
    for match in re.finditer(
        r"CREATE TABLE (\w+) \((.*?)\);(?:\s*/\* aka: (.*?) \*/)?",
        body,
    ):
        name, columns_text, table_aka = match.groups()
        columns = []
        for column_text in _split_columns(columns_text):
            column_match = re.match(
                r"(\w+)\s+(\w+)(?:\s*/\* aka: (.*?) \*/)?\s*$",
                column_text.strip(),
            )
            if not column_match:
                continue
            col_name, col_type, aka = column_match.groups()
            synonyms = tuple(
                s.strip() for s in aka.split(",")
            ) if aka else ()
            try:
                ctype = ColumnType(col_type.lower())
            except ValueError:
                ctype = ColumnType.TEXT
            columns.append(
                Column(name=col_name, type=ctype, synonyms=synonyms)
            )
        synonyms = tuple(
            s.strip() for s in table_aka.split(",")
        ) if table_aka else ()
        tables.append(
            TableSchema(name=name, columns=tuple(columns), synonyms=synonyms)
        )

    fks = []
    for match in re.finditer(
        r"-- FK: (\w+)\.(\w+) -> (\w+)\.(\w+)", body
    ):
        fks.append(ForeignKey(*match.groups()))
    return Schema(db_id=db_id, tables=tuple(tables), foreign_keys=tuple(fks))


def _split_columns(text: str) -> list[str]:
    """Split a column list on commas outside /* */ comments."""
    out = []
    depth = 0
    current = []
    i = 0
    while i < len(text):
        if text[i : i + 2] == "/*":
            depth += 1
            current.append(text[i : i + 2])
            i += 2
            continue
        if text[i : i + 2] == "*/":
            depth = max(0, depth - 1)
            current.append(text[i : i + 2])
            i += 2
            continue
        if text[i] == "," and depth == 0:
            out.append("".join(current))
            current = []
            i += 1
            continue
        current.append(text[i])
        i += 1
    if current:
        out.append("".join(current))
    return out


def extract_sql(completion: str) -> str:
    """Pull the SQL program out of a model completion."""
    block = re.search(r"```sql\s*(.+?)```", completion, flags=re.DOTALL)
    if block:
        return block.group(1).strip()
    for line in completion.splitlines():
        stripped = line.strip()
        if stripped.upper().startswith(("SELECT", "VISUALIZE")):
            return stripped
    return completion.strip()


def extract_vql(completion: str) -> str:
    """Pull the VQL program out of a model completion."""
    for line in completion.splitlines():
        stripped = line.strip()
        if stripped.upper().startswith("VISUALIZE"):
            return stripped
    return extract_sql(completion)
