"""Simulated large language model substrate.

There is no network access in this environment, so the LLM-stage methods
run against a *simulated* LLM: a deterministic text-completion engine whose
internal solver is the library's grammar semantic parser and whose error
behaviour responds to prompt structure the way the surveyed literature
reports real LLMs responding (see DESIGN.md's substitution table):

- serializing the schema into the prompt is what enables schema linking;
  omitting it cripples the model (the model only knows what the prompt
  holds — the simulator literally re-parses the schema out of the prompt);
- adding column descriptions ("clear prompting", C3) improves linking;
- in-context demonstrations reduce the error rate, more so when they are
  similar to the question (Nan et al.'s demonstration-selection finding);
- chain-of-thought instructions reduce errors on hard questions;
- temperature controls sampling: at T=0 completions are deterministic per
  prompt, at T>0 self-consistency can vote across samples (SQL-PaLM);
- error feedback in a repair prompt triggers a lower-error retry
  (DIN-SQL's self-correction, Guo et al.'s revision chain).

Model capability tiers come from :mod:`repro.llm.profiles`.
"""

from repro.llm.interface import Completion, SimulatedLLM
from repro.llm.profiles import MODEL_PROFILES, ModelProfile, get_profile
from repro.llm.prompts import PromptBuilder, extract_sql, extract_vql

__all__ = [
    "Completion",
    "MODEL_PROFILES",
    "ModelProfile",
    "PromptBuilder",
    "SimulatedLLM",
    "extract_sql",
    "extract_vql",
    "get_profile",
]
