"""Model capability profiles for the simulated LLM.

Each profile is a *model card* of capability knobs.  The tiers mirror the
models the survey's LLM-stage methods were built on: Codex (code-oriented,
strong SQL syntax, weaker instruction following), ChatGPT (strong
instruction following), and PaLM-2-class models (strongest overall).  A
deliberately weak "small-llm" tier exists for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelProfile:
    """Capability card for one simulated model tier."""

    name: str
    #: base corruption probability per query with a minimal prompt
    base_error: float
    #: how much of the base error a well-engineered prompt removes [0, 1]
    prompt_sensitivity: float
    #: per-demonstration multiplicative error reduction
    demo_gain: float
    #: extra error reduction on hard/extra questions when CoT is requested
    cot_gain: float
    #: probability of emitting syntactically broken SQL
    syntax_error_rate: float
    #: whether the model's lexical knowledge resolves out-of-schema synonyms
    knows_world_synonyms: bool
    #: question languages the model understands
    languages: tuple[str, ...]
    #: error multiplier applied on each self-correction retry
    repair_factor: float

    def clamp(self, value: float) -> float:
        return max(0.0, min(1.0, value))


MODEL_PROFILES: dict[str, ModelProfile] = {
    "small-llm": ModelProfile(
        name="small-llm",
        base_error=0.65,
        prompt_sensitivity=0.4,
        demo_gain=0.06,
        cot_gain=0.05,
        syntax_error_rate=0.10,
        knows_world_synonyms=False,
        languages=("en",),
        repair_factor=0.9,
    ),
    "codex-like": ModelProfile(
        name="codex-like",
        base_error=0.50,
        prompt_sensitivity=0.50,
        demo_gain=0.10,
        cot_gain=0.08,
        syntax_error_rate=0.02,
        knows_world_synonyms=True,
        languages=("en",),
        repair_factor=0.65,
    ),
    "chatgpt-like": ModelProfile(
        name="chatgpt-like",
        base_error=0.40,
        prompt_sensitivity=0.60,
        demo_gain=0.12,
        cot_gain=0.12,
        syntax_error_rate=0.015,
        knows_world_synonyms=True,
        languages=("en", "zh", "vi", "pt", "ru"),
        repair_factor=0.55,
    ),
    "palm-like": ModelProfile(
        name="palm-like",
        base_error=0.32,
        prompt_sensitivity=0.65,
        demo_gain=0.13,
        cot_gain=0.14,
        syntax_error_rate=0.01,
        knows_world_synonyms=True,
        languages=("en", "zh", "vi", "pt", "ru"),
        repair_factor=0.5,
    ),
}


def get_profile(name: str) -> ModelProfile:
    try:
        return MODEL_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown model profile {name!r}; known: "
            f"{', '.join(MODEL_PROFILES)}"
        ) from None
