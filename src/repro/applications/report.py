"""Automated data-report generation.

The survey's introduction motivates NLIs with a business analyst who
queries "total revenue by product category in the last quarter" and then
requests "a bar chart showing the revenue breakdown" for a quarterly
report.  ``DataReportGenerator`` automates the whole report: it asks the
NLI the headline questions, ranks charts with the DeepEye-style
recommender, summarizes every result in natural language, and assembles a
markdown document — querying, visualization, and summarization in one
integrated, language-centric application (Section 6.6's "integrated
systems").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.interface import NaturalLanguageInterface
from repro.data.database import Database
from repro.data.schema import ColumnType
from repro.sql.executor import Result
from repro.vis.charts import Chart
from repro.vis.recommend import recommend_charts


def summarize_result(result: Result, subject: str = "the result") -> str:
    """One-sentence NL summary of a query result (template summarizer)."""
    if not result.rows:
        return f"No rows matched for {subject}."
    if len(result.rows) == 1 and len(result.rows[0]) == 1:
        value = result.rows[0][0]
        return f"{subject.capitalize()} is {_fmt(value)}."
    if len(result.columns) == 2 and all(
        isinstance(row[1], (int, float)) and not isinstance(row[1], bool)
        for row in result.rows
        if row[1] is not None
    ):
        labelled = [
            (row[0], row[1]) for row in result.rows if row[1] is not None
        ]
        if labelled:
            top_label, top_value = max(labelled, key=lambda r: r[1])
            low_label, low_value = min(labelled, key=lambda r: r[1])
            return (
                f"Across {len(labelled)} groups, {top_label} leads with "
                f"{_fmt(top_value)} and {low_label} trails with "
                f"{_fmt(low_value)}."
            )
    return f"{len(result.rows)} row(s) returned for {subject}."


def summarize_chart(chart: Chart) -> str:
    """One-sentence NL summary of a rendered chart."""
    numeric = [
        (x, float(y))
        for x, y in chart.points
        if isinstance(y, (int, float)) and not isinstance(y, bool)
    ]
    if not numeric:
        return f"A {chart.chart_type} chart of {chart.y_label}."
    top = max(numeric, key=lambda p: p[1])
    return (
        f"A {chart.chart_type} chart of {chart.y_label} by "
        f"{chart.x_label}; the largest segment is {top[0]} "
        f"at {_fmt(top[1])}."
    )


@dataclass
class ReportSection:
    heading: str
    body: list[str] = field(default_factory=list)

    def render(self) -> str:
        return f"## {self.heading}\n\n" + "\n\n".join(self.body)


class DataReportGenerator:
    """Assemble a markdown data report over one database."""

    def __init__(self, db: Database, model: str | None = None) -> None:
        self.db = db
        self.nli = NaturalLanguageInterface(db, model=model)

    def generate(
        self,
        title: str | None = None,
        questions: list[str] | None = None,
        charts_per_table: int = 1,
    ) -> str:
        """Build the report: overview, asked questions, recommended charts."""
        sections = [self._overview_section()]
        if questions:
            sections.append(self._questions_section(questions))
        sections.append(self._charts_section(charts_per_table))
        heading = title or f"Data report: {self.db.db_id}"
        return f"# {heading}\n\n" + "\n\n".join(
            section.render() for section in sections
        )

    # ------------------------------------------------------------------
    def _overview_section(self) -> ReportSection:
        section = ReportSection(heading="Overview")
        lines = []
        for table in self.db.schema.tables:
            count = len(self.db.table(table.name))
            columns = ", ".join(table.column_names())
            lines.append(f"- **{table.name}** — {count} rows ({columns})")
        section.body.append("\n".join(lines))
        return section

    def _questions_section(self, questions: list[str]) -> ReportSection:
        section = ReportSection(heading="Headline questions")
        for question in questions:
            self.nli.reset()
            answer = self.nli.ask(question)
            if not answer.ok:
                section.body.append(
                    f"**Q: {question}**\n\n_(could not answer: "
                    f"{answer.trace.error})_"
                )
                continue
            if answer.chart is not None:
                summary = summarize_chart(answer.chart)
                section.body.append(
                    f"**Q: {question}**\n\n`{answer.vql}`\n\n{summary}\n\n"
                    f"```\n{answer.chart.to_ascii(width=28)}\n```"
                )
            else:
                summary = summarize_result(
                    answer.trace.result, subject="the answer"
                )
                section.body.append(
                    f"**Q: {question}**\n\n`{answer.sql}`\n\n{summary}"
                )
        return section

    def _charts_section(self, per_table: int) -> ReportSection:
        section = ReportSection(heading="Recommended visualizations")
        for table in self.db.schema.tables:
            if not _chartable(table):
                continue
            for ranked in recommend_charts(
                self.db, table.name, top_k=per_table
            ):
                summary = summarize_chart(ranked.chart)
                section.body.append(
                    f"`{ranked.vql}` (score {ranked.score:.2f})\n\n"
                    f"{summary}\n\n"
                    f"```\n{ranked.chart.to_ascii(width=28)}\n```"
                )
        if not section.body:
            section.body.append("_No chartable tables found._")
        return section


def _chartable(table) -> bool:
    has_category = any(c.type is ColumnType.TEXT for c in table.columns)
    has_numeric = any(c.type is ColumnType.NUMBER for c in table.columns)
    return has_category and has_numeric


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)
