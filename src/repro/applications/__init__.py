"""Advanced applications (survey Section 6.6).

The survey's closing direction: "comprehensive systems where users can
query data, get summaries, seek recommendations, and more, all within a
unified, language-centric interface."  This package implements the
flagship example from the paper's own introduction — automated *data
report* generation, where querying and visualization work together —
combining the NLI, the chart recommender, and a template summarizer into
one language-centric workflow.
"""

from repro.applications.report import DataReportGenerator, summarize_result

__all__ = ["DataReportGenerator", "summarize_result"]
