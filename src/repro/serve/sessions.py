"""The server-side session table: per-session FIFO state + idle eviction.

Each :class:`ServeSession` owns one conversation: a bounded FIFO queue of
not-yet-dispatched requests, the wrapped
:class:`~repro.systems.session.InteractiveSession` holding its history
and turn memo, and the scheduler bookkeeping (fair-queuing finish tag,
``running`` flag).  The registry enforces the two per-session serving
invariants:

- **FIFO within a session** — only the queue head is ever handed to the
  scheduler, and only while no other request of the same session is
  running, so multi-turn context can never interleave;
- **bounded lifetime** — sessions idle longer than ``ttl`` seconds are
  LRU-swept (:meth:`SessionRegistry.evict_idle`), closing their
  ``InteractiveSession`` so a long-running server does not accumulate
  per-session memos and transcripts forever.

All methods expect the server's lock to be held by the caller; the
registry itself owns no lock (one lock per server, not two).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Iterator

from repro.obs import metrics as _obs_metrics
from repro.systems.session import InteractiveSession

__all__ = ["ServeSession", "SessionRegistry"]

_registry = _obs_metrics.get_registry()
_OPENED = _registry.counter("repro.serve.sessions.opened")
_CLOSED = _registry.counter("repro.serve.sessions.closed")
_EVICTED = _registry.counter("repro.serve.sessions.evicted")


class ServeSession:
    """One conversation's serving state (see module docstring)."""

    __slots__ = (
        "session_id",
        "db_id",
        "interactive",
        "weight",
        "queue",
        "running",
        "finish_tag",
        "last_active",
        "closed",
        "submitted",
        "completed",
    )

    def __init__(
        self,
        session_id: str,
        db_id: str,
        interactive: InteractiveSession,
        weight: float,
        now: float,
    ) -> None:
        self.session_id = session_id
        self.db_id = db_id
        self.interactive = interactive
        self.weight = max(1e-6, float(weight))
        #: pending server-side entries (``repro.serve.server._Pending``)
        #: in strict arrival order
        self.queue: deque = deque()
        #: True while a worker is executing this session's head request
        self.running = False
        #: fair-queuing virtual finish tag (see repro.serve.scheduler)
        self.finish_tag = 0.0
        self.last_active = now
        self.closed = False
        #: per-session FIFO sequence counters (1-based)
        self.submitted = 0
        self.completed = 0

    @property
    def idle(self) -> bool:
        """No queued work and no request currently executing."""
        return not self.running and not self.queue

    @property
    def schedulable(self) -> bool:
        """Has a dispatchable head: queued work, nothing running."""
        return bool(self.queue) and not self.running and not self.closed


class SessionRegistry:
    """session_id → :class:`ServeSession`, in LRU (least-recently-active
    first) iteration order for the idle sweep."""

    def __init__(
        self,
        make_interactive: Callable[[str], InteractiveSession],
        default_weight: float = 1.0,
        ttl: float | None = None,
        max_sessions: int | None = None,
    ) -> None:
        self._make_interactive = make_interactive
        self._default_weight = default_weight
        self.ttl = ttl
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, ServeSession]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[ServeSession]:
        return iter(self._sessions.values())

    def get(self, session_id: str) -> ServeSession | None:
        return self._sessions.get(session_id)

    def open(
        self,
        session_id: str,
        db_id: str,
        weight: float | None,
        now: float,
    ) -> ServeSession:
        """Fetch or create the session.  Touches LRU recency."""
        session = self._sessions.get(session_id)
        if session is None:
            session = ServeSession(
                session_id,
                db_id,
                self._make_interactive(db_id),
                weight if weight is not None else self._default_weight,
                now,
            )
            self._sessions[session_id] = session
            _OPENED.inc()
        else:
            self._sessions.move_to_end(session_id)
        return session

    def touch(self, session: ServeSession, now: float) -> None:
        """Record activity (completion) for LRU ordering and the TTL."""
        session.last_active = now
        if session.session_id in self._sessions:
            self._sessions.move_to_end(session.session_id)

    def close(self, session_id: str) -> ServeSession | None:
        """Remove the session; returns it (with any still-queued work) so
        the server can shed the leftovers.  The wrapped interactive
        session is closed — its memo, history, and transcript are freed —
        unless a turn is executing right now, in which case the worker
        that finishes it performs the close (the ``closed`` flag tells
        it to)."""
        session = self._sessions.pop(session_id, None)
        if session is None:
            return None
        session.closed = True
        if not session.running:
            session.interactive.close()
        _CLOSED.inc()
        return session

    def evict_idle(self, now: float) -> list[ServeSession]:
        """LRU sweep: close sessions idle past the TTL (never ones with
        queued or running work).  Returns the evicted sessions."""
        if self.ttl is None:
            return []
        evicted: list[ServeSession] = []
        # oldest-activity first; stop at the first young-enough session
        for session_id in list(self._sessions):
            session = self._sessions[session_id]
            if now - session.last_active < self.ttl:
                break
            if not session.idle:
                continue
            self._sessions.pop(session_id)
            session.closed = True
            session.interactive.close()
            _EVICTED.inc()
            evicted.append(session)
        return evicted

    def evict_one_idle(self) -> ServeSession | None:
        """Evict the least-recently-active fully idle session regardless
        of TTL — the pressure valve when the table is at ``max_sessions``
        and a new conversation arrives."""
        for session_id in list(self._sessions):
            session = self._sessions[session_id]
            if session.idle:
                self._sessions.pop(session_id)
                session.closed = True
                session.interactive.close()
                _EVICTED.inc()
                return session
        return None
