"""Micro-batch coalescing: identical concurrent turns execute once.

Interactive NLI traffic is duplicate-heavy — trending questions, retried
clients, dashboards polling the same query — and the result-cache stack
already collapses *sequential* repeats.  What it cannot collapse is the
thundering herd: N identical requests in flight *simultaneously* all
miss the still-cold caches and execute N times.  :class:`Coalescer`
closes that gap with singleflight semantics over the same key the
pipeline turn memo uses — ``(question, knowledge, history, database
state token)``, the tuple that fully determines a turn's outcome (see
``Pipeline._turn_memo_key``):

- the first request for a key becomes the **leader** and executes the
  turn; an optional micro-batching ``window`` lets the leader yield
  briefly before executing so freshly-dispatched duplicates can attach;
- every identical request dispatched while the leader is in flight
  becomes a **follower**: it blocks on the leader's outcome and receives
  a defensive copy, never executing the turn itself;
- a leader that *fails* (raises) or *degrades* (fault-ladder answer)
  publishes nothing — each follower falls back to executing its own
  turn, so coalescing can only ever deduplicate healthy answers, exactly
  mirroring the turn-memo discipline.

Coalescing disables itself under an active chaos plan (outcomes are no
longer pure functions of the key) and for unhashable histories.  The
wrapper is an :class:`~repro.systems.base.NLISystem`, so each serve
session's :class:`~repro.systems.session.InteractiveSession` still
records transcript and history normally — a coalesced follower's
*session* state advances exactly as if it had executed the turn.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.data.database import Database
from repro.obs import metrics as _obs_metrics
from repro.resilience import faults as _faults
from repro.sql import rescache as _rescache
from repro.systems.base import NLISystem, SystemResponse

__all__ = ["Coalescer"]

_registry = _obs_metrics.get_registry()
_LEADERS = _registry.counter("repro.serve.coalesce.leaders")
_FOLLOWERS = _registry.counter("repro.serve.coalesce.followers")
_BYPASSED = _registry.counter("repro.serve.coalesce.bypassed")


class _Flight:
    """One in-flight leader and the followers waiting on it."""

    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        #: the leader's healthy response, or None (failed/degraded leader)
        self.response: SystemResponse | None = None


class Coalescer(NLISystem):
    """Singleflight wrapper around a shared inner :class:`NLISystem`."""

    name = "coalescing serve wrapper"
    architecture = "serving"

    def __init__(
        self,
        inner: NLISystem,
        window: float = 0.0,
        enabled: bool = True,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.window = window
        self.enabled = enabled
        self._sleep = sleep
        self._lock = threading.Lock()
        self._inflight: dict[tuple, _Flight] = {}
        self._tl = threading.local()

    # -- the flag the server reads to stamp Response.coalesced ---------
    def begin_request(self) -> None:
        """Reset this worker thread's coalesced flag before a turn."""
        self._tl.coalesced = False

    def was_coalesced(self) -> bool:
        """Whether the last turn on this thread was served by a leader."""
        return getattr(self._tl, "coalesced", False)

    # -- NLISystem ------------------------------------------------------
    def answer(
        self,
        question: str,
        db: Database,
        knowledge: str | None = None,
        history: list | None = None,
    ) -> SystemResponse:
        key = self._key(question, db, knowledge, history)
        if key is None:
            _BYPASSED.inc()
            return self.inner.answer(
                question, db, knowledge=knowledge, history=history
            )
        with self._lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = self._inflight[key] = _Flight()
        if leader:
            return self._lead(flight, key, question, db, knowledge, history)
        _FOLLOWERS.inc()
        flight.event.wait()
        if flight.response is None:
            # the leader failed or degraded: answer independently rather
            # than replicate an unhealthy outcome
            return self.inner.answer(
                question, db, knowledge=knowledge, history=history
            )
        self._tl.coalesced = True
        return flight.response.copy()

    def _lead(
        self,
        flight: _Flight,
        key: tuple,
        question: str,
        db: Database,
        knowledge: str | None,
        history: list | None,
    ) -> SystemResponse:
        _LEADERS.inc()
        if self.window > 0.0:
            # micro-batching window: yield briefly so duplicates being
            # dispatched right now can attach as followers
            self._sleep(self.window)
        try:
            response = self.inner.answer(
                question, db, knowledge=knowledge, history=history
            )
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        with self._lock:
            self._inflight.pop(key, None)
            if not response.is_degraded:
                flight.response = response.copy()
        flight.event.set()
        return response

    def _key(
        self,
        question: str,
        db: Database,
        knowledge: str | None,
        history: list | None,
    ) -> tuple | None:
        """The turn-memo-equivalent coalescing key, or None to bypass.

        Bypasses when coalescing is off, a chaos plan is active (injected
        faults make identical inputs diverge), or the history contains
        unhashable entries.
        """
        if not self.enabled or _faults.active():
            return None
        try:
            return (
                question,
                knowledge,
                tuple(history or ()),
                _rescache.database_state_token(db),
            )
        except TypeError:
            return None
