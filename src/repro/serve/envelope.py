"""Typed request/response envelopes for :mod:`repro.serve`.

A :class:`Request` is what a client hands the server: the question, the
conversation (session) it belongs to, which registered database it
targets, and the per-request serving knobs (fair-share weight, total
latency budget).  A :class:`Response` is everything the server can say
about how the request fared: the answer payload mirrored from the
underlying :class:`~repro.systems.base.SystemResponse`, a typed
``status``/``shed_reason`` pair for load-shedding, the queue/service
latency split, and the ordering evidence (``session_seq``,
``completion_index``) the FIFO-violation checks in
``benchmarks/bench_serve.py`` rely on.

:class:`Ticket` is the client-side handle: ``submit`` returns one
immediately, and the response materializes on it when a worker finishes
the turn (or at submit time, for requests shed at admission).
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.sql.executor import Result
from repro.vis.charts import Chart

__all__ = ["Request", "Response", "ShedReason", "Ticket"]

_request_ids = itertools.count(1)


class ShedReason(enum.Enum):
    """Why the server refused (or abandoned) a request — the typed half
    of admission control.  Every shed :class:`Response` carries exactly
    one of these; clients never have to parse a message string to tell
    "back off" from "session gone" from "too late"."""

    #: the global pending queue is at ``max_pending``
    QUEUE_FULL = "queue-full"
    #: this session's own FIFO queue is at ``max_session_pending``
    SESSION_QUEUE_FULL = "session-queue-full"
    #: the session table is at ``max_sessions`` and nothing is evictable
    SESSION_LIMIT = "session-limit"
    #: the server is draining: finishing admitted work, admitting nothing
    DRAINING = "draining"
    #: the server was shut down with this request still queued
    SHUTDOWN = "shutdown"
    #: the session was closed with this request still queued
    SESSION_CLOSED = "session-closed"
    #: the request's latency budget expired before/while serving it
    DEADLINE = "deadline"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Request:
    """One natural-language request addressed to the serving layer.

    ``deadline`` is a *total* latency budget in seconds, measured from
    submit: time spent queued counts against it, and whatever remains at
    dispatch becomes the ambient :mod:`repro.resilience` deadline for
    the turn.  ``weight`` sets the session's fair share the first time
    the session is seen (relative, default 1.0).
    """

    question: str
    session_id: str = "default"
    db_id: str | None = None
    knowledge: str | None = None
    weight: float = 1.0
    deadline: float | None = None
    request_id: int = field(default_factory=lambda: next(_request_ids))


@dataclass
class Response:
    """Everything the server reports back about one request.

    ``status`` is ``"ok"`` (answered, possibly degraded), ``"error"``
    (the turn ran but failed — untranslatable question, failed SQL, or
    an unexpected worker exception), or ``"shed"`` (never fully served;
    ``shed_reason`` says why).  ``coalesced`` marks a follower that was
    answered by another request's identical in-flight turn
    (:mod:`repro.serve.batching`).  ``session_seq`` is the request's
    1-based FIFO position within its session and ``completion_index``
    the global completion order — together they make per-session
    ordering externally checkable.
    """

    request_id: int
    session_id: str
    status: str = "ok"
    shed_reason: ShedReason | None = None
    kind: str | None = None
    sql: str | None = None
    vql: str | None = None
    result: Result | None = None
    chart: Chart | None = None
    message: str = ""
    error: str | None = None
    degraded: tuple[str, ...] = ()
    coalesced: bool = False
    session_seq: int = 0
    completion_index: int = 0
    worker: int | None = None
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    backpressure: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def shed(self) -> bool:
        return self.status == "shed"

    @property
    def rows(self) -> list[tuple]:
        return self.result.rows if self.result is not None else []

    @property
    def columns(self) -> list[str]:
        return self.result.columns if self.result is not None else []

    @property
    def total_seconds(self) -> float:
        return self.queue_seconds + self.service_seconds

    def describe(self) -> str:
        """One transcript line, for the ``serve`` CLI and logs."""
        head = f"#{self.request_id} [{self.session_id}]"
        if self.shed:
            return f"{head} shed ({self.shed_reason})"
        if self.status == "error":
            return f"{head} error: {self.error}"
        extra = " (coalesced)" if self.coalesced else ""
        if self.kind == "chart":
            return f"{head} chart {self.vql}{extra}"
        if self.kind == "data":
            return f"{head} {len(self.rows)} row(s) {self.sql}{extra}"
        return f"{head} {self.kind}: {self.message}"


class Ticket:
    """A client-side handle on one submitted request.

    Thread-safe: the server resolves it exactly once, from whichever
    worker finishes (or sheds) the request; any number of client threads
    may ``result()`` or poll ``done()``.  ``add_done_callback`` runs the
    callback on the resolving thread (immediately, if already resolved).
    """

    __slots__ = ("request", "_event", "_response", "_callbacks", "_lock")

    def __init__(self, request: Request) -> None:
        self.request = request
        self._event = threading.Event()
        self._response: Response | None = None
        self._callbacks: list[Callable[[Response], None]] = []
        self._lock = threading.Lock()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Response:
        """Block until the response is available (raises ``TimeoutError``
        if *timeout* elapses first)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request #{self.request.request_id} not finished within "
                f"{timeout}s"
            )
        assert self._response is not None
        return self._response

    def add_done_callback(self, fn: Callable[[Response], None]) -> None:
        with self._lock:
            if self._response is None:
                self._callbacks.append(fn)
                return
        fn(self._response)

    def _resolve(self, response: Response) -> None:
        with self._lock:
            if self._response is not None:  # pragma: no cover - guarded
                return
            self._response = response
            callbacks, self._callbacks = self._callbacks, []
        self._event.set()
        for fn in callbacks:
            fn(response)
