"""Admission control — bounded queues, typed shedding, backpressure.

Every request passes :meth:`AdmissionController.admit` before it may
queue.  The controller never blocks and never throws: it returns ``None``
to admit or a :class:`~repro.serve.envelope.ShedReason` to shed, so the
caller can surface the rejection as a typed, immediately-resolved
response — under overload the server answers *something* for every
request, in bounded time, instead of growing an unbounded queue.

Checks, in order (cheapest and most global first):

1. **lifecycle** — a draining or stopped server admits nothing
   (``DRAINING`` / ``SHUTDOWN``);
2. **global queue bound** — at most ``max_pending`` admitted-but-
   undispatched requests across all sessions (``QUEUE_FULL``);
3. **per-session queue bound** — at most ``max_session_pending`` queued
   requests in one conversation (``SESSION_QUEUE_FULL``), so one
   flooding session saturates its own lane, not the server;
4. **session table bound** — a *new* session is only admitted when the
   table is below ``max_sessions`` or an idle session can be LRU-evicted
   to make room (``SESSION_LIMIT``).

Backpressure is signalled continuously, not just at the cliff:
:meth:`pressure` reports global queue occupancy in ``[0, 1]``, the
server stamps it on every response, and clients (the load generator's
closed-loop mode, say) can shape their offered rate long before they
start being shed.
"""

from __future__ import annotations

from repro.obs import metrics as _obs_metrics
from repro.serve.envelope import ShedReason
from repro.serve.sessions import ServeSession, SessionRegistry

__all__ = ["AdmissionController", "count_shed"]

_registry = _obs_metrics.get_registry()
_ADMITTED = _registry.counter("repro.serve.admitted")
_SHEDS = _registry.counter("repro.serve.sheds")


def count_shed(reason: ShedReason) -> None:
    """Record one shed (total + per-reason counters).  Also used by the
    server for post-admission sheds: expired deadlines, queue flushes on
    session close, and shutdown."""
    _SHEDS.inc()
    _registry.counter(f"repro.serve.shed.{reason.value}").inc()


class AdmissionController:
    """The bounded-queue policy object (state: bounds + pending count)."""

    def __init__(
        self, max_pending: int = 256, max_session_pending: int = 32
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_session_pending < 1:
            raise ValueError("max_session_pending must be >= 1")
        self.max_pending = max_pending
        self.max_session_pending = max_session_pending
        #: admitted-but-undispatched requests across every session
        self.pending = 0

    def pressure(self) -> float:
        """Global queue occupancy in ``[0, 1]`` — the backpressure signal."""
        return min(1.0, self.pending / self.max_pending)

    def admit(
        self,
        *,
        session: ServeSession | None,
        sessions: SessionRegistry,
        draining: bool,
        stopped: bool,
    ) -> ShedReason | None:
        """Decide one request: ``None`` admits, a reason sheds.

        *session* is the existing session the request targets, or
        ``None`` for a first-contact request that would open one.
        Admitting increments :attr:`pending`; the server must call
        :meth:`release` when the request leaves the queue (dispatch or
        flush).
        """
        reason = self._decide(session, sessions, draining, stopped)
        if reason is None:
            self.pending += 1
            _ADMITTED.inc()
        else:
            count_shed(reason)
        return reason

    def _decide(
        self,
        session: ServeSession | None,
        sessions: SessionRegistry,
        draining: bool,
        stopped: bool,
    ) -> ShedReason | None:
        if stopped:
            return ShedReason.SHUTDOWN
        if draining:
            return ShedReason.DRAINING
        if self.pending >= self.max_pending:
            return ShedReason.QUEUE_FULL
        if session is not None:
            if len(session.queue) >= self.max_session_pending:
                return ShedReason.SESSION_QUEUE_FULL
            return None
        limit = sessions.max_sessions
        if limit is not None and len(sessions) >= limit:
            # try to make room: the LRU fully-idle session is expendable
            if sessions.evict_one_idle() is None:
                return ShedReason.SESSION_LIMIT
        return None

    def release(self, n: int = 1) -> None:
        """Return *n* queue slots (request dispatched or flushed)."""
        self.pending = max(0, self.pending - n)
