"""``python -m repro serve`` — an interactive multi-session server.

The Fig. 1 REPL, multiplexed: one process serves many concurrent
conversations through :class:`repro.serve.Server` over a generated
domain database (or a whole dataset's database registry)::

    python -m repro serve                       # sales domain, 4 workers
    python -m repro serve --workers 8 --domain healthcare
    python -m repro serve --dataset spider_like # serve a dataset registry
    python -m repro serve --demo                # scripted multi-session demo

Input lines route by session: ``@alice how many orders are there`` asks
as session ``alice`` (a bare question uses session ``default``).  Every
session keeps its own conversation history, so follow-ups resolve
per-session even though all sessions share one worker pool, one system,
and one result cache.  Meta-commands: ``\\stats`` (scheduler/queue/
breaker snapshot), ``\\sessions``, ``\\close <sid>``, ``\\drain``,
``\\quit``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.eval.parallel import resolve_workers
from repro.serve.envelope import Response
from repro.serve.server import ServeConfig, Server

__all__ = ["main"]

_DEMO_SCRIPT = [
    ("alice", "Show the name of products whose price is above 500?"),
    ("bob", "How many orders are there?"),
    ("alice", "How many are there?"),
    ("bob", "Draw a bar chart of the number of orders per quarter?"),
    ("carol", "How many customers are there?"),
    ("alice", "Draw a bar chart of the number of products per category?"),
]


def _print_response(response: Response) -> None:
    print(f"  {response.describe()}")
    if response.ok and response.chart is not None:
        for line in response.chart.to_ascii(width=30).splitlines():
            print(f"  {line}")
    elif response.ok:
        for row in response.rows[:5]:
            print(f"  {row}")
        if len(response.rows) > 5:
            print(f"  ... {len(response.rows) - 5} more row(s)")
    if response.degraded:
        print(f"  (degraded: {', '.join(response.degraded)})")


def _build_databases(args) -> dict:
    if args.dataset is not None:
        from repro.datasets import build_dataset

        dataset = build_dataset(args.dataset, scale=args.scale, seed=args.seed)
        return dict(dataset.databases)
    from repro.data.domains import domain_by_name
    from repro.data.generator import DatabaseGenerator

    db = DatabaseGenerator(seed=args.seed).populate(
        domain_by_name(args.domain), rows_per_table=40
    )
    return {db.db_id: db}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve", description=__doc__
    )
    parser.add_argument("--domain", default="sales")
    parser.add_argument(
        "--dataset",
        default=None,
        help="serve a dataset's database registry instead of one domain",
    )
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads (default: REPRO_EVAL_WORKERS or 4)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request latency budget in seconds",
    )
    parser.add_argument(
        "--session-ttl",
        type=float,
        default=600.0,
        help="idle seconds before a session is evicted",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable duplicate-request coalescing",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a scripted multi-session demo and exit",
    )
    args = parser.parse_args(argv)

    databases = _build_databases(args)
    config = ServeConfig(
        workers=resolve_workers(args.workers, default=4),
        default_deadline=args.deadline,
        session_ttl=args.session_ttl,
        coalesce=not args.no_coalesce,
    )
    server = Server(databases, config=config)
    db_names = ", ".join(sorted(databases))
    if len(db_names) > 60:
        db_names = f"{len(databases)} databases"
    print(
        f"serving [{db_names}] with {config.workers} worker(s); "
        "'@<session> <question>' routes, \\stats \\sessions \\drain \\quit"
    )

    try:
        if args.demo:
            tickets = [
                (sid, server.submit(question, session_id=sid))
                for sid, question in _DEMO_SCRIPT
            ]
            for sid, ticket in tickets:
                print(f"\n@{sid} > {ticket.request.question}")
                _print_response(ticket.result(timeout=30))
            print("\n\\stats")
            print(json.dumps(server.stats(), indent=2, sort_keys=True))
            return 0

        while True:
            try:
                line = input("serve> ").strip()
            except (EOFError, KeyboardInterrupt):
                print()
                return 0
            if not line:
                continue
            if line in ("\\quit", "\\q", "exit"):
                return 0
            if line == "\\stats":
                print(json.dumps(server.stats(), indent=2, sort_keys=True))
                continue
            if line == "\\sessions":
                for info in server.stats()["sessions"]:
                    print(f"  {info}")
                continue
            if line.startswith("\\close"):
                _, _, sid = line.partition(" ")
                flushed = server.close_session(sid.strip() or "default")
                print(f"  (closed; {flushed} queued request(s) shed)")
                continue
            if line == "\\drain":
                print(f"  (drained: {server.drain(timeout=30)})")
                server.resume()
                continue
            session_id = "default"
            if line.startswith("@"):
                head, _, rest = line.partition(" ")
                session_id, line = head[1:] or "default", rest.strip()
                if not line:
                    continue
            _print_response(
                server.submit(line, session_id=session_id).result(timeout=60)
            )
    finally:
        server.shutdown(timeout=10.0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
