"""The concurrent serving layer: ``Server`` = admission + fair scheduling
+ worker pool + sessions + coalescing + drain.

One :class:`Server` multiplexes many concurrent conversations over one
shared NLI system and a registry of databases.  The life of a request::

    submit ──► admission control ──► per-session FIFO queue
                  │ (typed shed)          │ head-of-session
                  ▼                       ▼
             resolved ticket      weighted-fair scheduler (SFQ)
                                          │ dispatch
                                          ▼
                               worker thread: deadline push,
                               coalescer, InteractiveSession.ask
                                          │
                                          ▼
                               Response on the ticket

Guarantees, in order of importance:

- **never raises, never loses a ticket** — every admitted request's
  ticket resolves exactly once, with an answer, a typed error, or a
  typed shed; worker exceptions are converted, and any exception that
  still reaches a worker's top level is recorded in
  :meth:`Server.unhandled_errors` (asserted empty by the chaos gate in
  ``benchmarks/bench_serve.py``);
- **per-session FIFO** — turns of one session never interleave or
  reorder: the scheduler only ever sees a session's queue head, and only
  while no turn of that session is running;
- **weighted fairness across sessions** — start-time fair queuing, see
  :mod:`repro.serve.scheduler`;
- **bounded memory** — bounded queues (typed shedding, see
  :mod:`repro.serve.admission`), bounded session table (LRU idle
  eviction + TTL sweep), bounded turn memos (inherited from the session
  layer).

Observability: ``repro.serve.*`` counters (admitted, sheds by reason,
responses, errors, coalesce leaders/followers), callback gauges
(``queue.depth``, ``sessions.active``, ``workers.active``,
``backpressure``) and latency histograms (``queue.seconds``,
``service.seconds``, ``turn.seconds``).  Resilience: a request's
remaining latency budget becomes the ambient
:mod:`repro.resilience.deadline` for its turn — queue wait burns budget,
so a resilient system degrades instead of overrunning — and breaker
states are surfaced through :meth:`Server.stats`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.data.database import Database
from repro.errors import DeadlineExceeded, ReproError
from repro.obs import metrics as _obs_metrics
from repro.resilience import all_breakers
from repro.resilience import deadline as _deadline
from repro.serve.admission import AdmissionController, count_shed
from repro.serve.batching import Coalescer
from repro.serve.envelope import Request, Response, ShedReason, Ticket
from repro.serve.scheduler import FairScheduler
from repro.serve.sessions import ServeSession, SessionRegistry
from repro.systems.base import NLISystem, SystemResponse
from repro.systems.session import InteractiveSession

__all__ = ["ServeConfig", "Server"]

_registry = _obs_metrics.get_registry()
_RESPONSES = _registry.counter("repro.serve.responses")
_ERRORS = _registry.counter("repro.serve.errors")
_UNHANDLED = _registry.counter("repro.serve.unhandled")
_QUEUE_SECONDS = _registry.histogram("repro.serve.queue.seconds")
_SERVICE_SECONDS = _registry.histogram("repro.serve.service.seconds")
_TURN_SECONDS = _registry.histogram("repro.serve.turn.seconds")


@dataclass(frozen=True)
class ServeConfig:
    """Every serving knob in one frozen object (pipeline-policy style)."""

    #: worker threads executing turns
    workers: int = 4
    #: global bound on admitted-but-undispatched requests
    max_pending: int = 256
    #: per-session bound on queued requests
    max_session_pending: int = 32
    #: session-table bound (None = unbounded); LRU idle eviction makes room
    max_sessions: int | None = 1024
    #: idle-session TTL in seconds (None = never sweep)
    session_ttl: float | None = 600.0
    #: how many submits between opportunistic TTL sweeps
    sweep_every: int = 64
    #: default fair-share weight for new sessions
    default_weight: float = 1.0
    #: default per-request latency budget in seconds (None = unbounded)
    default_deadline: float | None = None
    #: singleflight identical concurrent turns (repro.serve.batching)
    coalesce: bool = True
    #: micro-batching window the leader yields before executing (seconds)
    coalesce_window: float = 0.0
    #: injectable clock (monotonic seconds), threaded everywhere
    clock: Callable[[], float] = field(default=time.monotonic)


class _Pending:
    """One admitted request while it waits in its session's queue."""

    __slots__ = ("request", "ticket", "enqueued_at", "session_seq")

    def __init__(
        self,
        request: Request,
        ticket: Ticket,
        enqueued_at: float,
        session_seq: int,
    ) -> None:
        self.request = request
        self.ticket = ticket
        self.enqueued_at = enqueued_at
        self.session_seq = session_seq


class Server:
    """See module docstring.  Construct, ``submit``, ``shutdown`` (or use
    as a context manager).  *databases* is one :class:`Database` or a
    ``{db_id: Database}`` registry; *system* is the shared
    :class:`NLISystem` every session runs on (default: the resilient
    :class:`~repro.systems.architectures.PipelineSystem`)."""

    def __init__(
        self,
        databases: "Database | dict[str, Database]",
        system: NLISystem | None = None,
        config: ServeConfig | None = None,
        knowledge: str | None = None,
        start: bool = True,
    ) -> None:
        if isinstance(databases, Database):
            databases = {databases.db_id: databases}
        if not databases:
            raise ValueError("a server needs at least one database")
        self.databases = dict(databases)
        self._default_db_id = next(iter(self.databases))
        self.config = config or ServeConfig()
        self._knowledge = knowledge
        if system is None:
            from repro.systems.architectures import PipelineSystem

            system = PipelineSystem()
        #: the shared turn executor every session's InteractiveSession
        #: calls into — wrapped even when coalescing is disabled so the
        #: serving path is one code path
        self.coalescer = Coalescer(
            system,
            window=self.config.coalesce_window,
            enabled=self.config.coalesce,
        )

        self._clock = self.config.clock
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self.sessions = SessionRegistry(
            self._make_interactive,
            default_weight=self.config.default_weight,
            ttl=self.config.session_ttl,
            max_sessions=self.config.max_sessions,
        )
        self.scheduler = FairScheduler()
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            max_session_pending=self.config.max_session_pending,
        )
        self._draining = False
        self._stopping = False
        self._stopped = False
        self._running_turns = 0
        self._active_workers = 0
        self._completions = 0
        self._submits = 0
        self._unhandled: list[str] = []
        self._threads: list[threading.Thread] = []

        # callback gauges re-bind on every construction, so the newest
        # server wins the shared names (tests build many short-lived ones)
        _registry.gauge(
            "repro.serve.queue.depth", fn=lambda: self.admission.pending
        )
        _registry.gauge(
            "repro.serve.sessions.active", fn=lambda: len(self.sessions)
        )
        _registry.gauge(
            "repro.serve.workers.active", fn=lambda: self._active_workers
        )
        _registry.gauge("repro.serve.backpressure", fn=self.admission.pressure)

        if start:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._threads:
            return
        for index in range(max(1, self.config.workers)):
            thread = threading.Thread(
                target=self._worker,
                args=(index,),
                name=f"repro-serve-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, finish everything already admitted.

        Returns True once the server is quiescent (no queued or running
        work), False if *timeout* elapsed first.  The server stays
        drained — subsequent submits shed with ``DRAINING`` — until
        :meth:`resume`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._draining = True
            while self.admission.pending or self._running_turns:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
            return True

    def resume(self) -> None:
        """Re-open admission after a :meth:`drain`."""
        with self._lock:
            self._draining = False

    def shutdown(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Graceful stop: optionally drain, then stop workers and flush.

        With ``drain=True`` (default) admitted work finishes first; any
        request still queued afterwards (drain timeout, or
        ``drain=False``) is shed with ``SHUTDOWN``, so no ticket is ever
        left unresolved.  Idempotent.
        """
        if drain and not self._stopped:
            self.drain(timeout=timeout)
        with self._lock:
            already = self._stopped
            self._stopping = True
            self._work_ready.notify_all()
        if already:
            return
        for thread in self._threads:
            thread.join(timeout=timeout)
        leftovers: list[_Pending] = []
        with self._lock:
            self._stopped = True
            for session in self.sessions:
                while session.queue:
                    leftovers.append(session.queue.popleft())
            self.admission.release(len(leftovers))
            self.scheduler.clear()
            self._idle.notify_all()
        for pending in leftovers:
            self._shed_pending(pending, ShedReason.SHUTDOWN)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        question: "str | Request",
        session_id: str = "default",
        db_id: str | None = None,
        knowledge: str | None = None,
        weight: float | None = None,
        deadline: float | None = None,
    ) -> Ticket:
        """Submit one request; returns its :class:`Ticket` immediately.

        Never raises for load reasons: a request the server will not
        queue comes back as an already-resolved ticket whose response is
        ``status="shed"`` with a typed :class:`ShedReason`.  Raises
        ``KeyError`` only for an unknown ``db_id`` (a caller bug, not a
        load condition).
        """
        if isinstance(question, Request):
            request = question
            session_weight: float | None = request.weight
        else:
            request = Request(
                question=question,
                session_id=session_id,
                db_id=db_id,
                knowledge=knowledge,
                weight=weight if weight is not None else 1.0,
                deadline=(
                    deadline
                    if deadline is not None
                    else self.config.default_deadline
                ),
            )
            # only an explicit weight overrides the registry default
            session_weight = weight
        if request.db_id is not None and request.db_id not in self.databases:
            raise KeyError(f"unknown db_id {request.db_id!r}")
        ticket = Ticket(request)
        now = self._clock()
        pressure = 0.0
        with self._lock:
            self._submits += 1
            if (
                self.config.session_ttl is not None
                and self._submits % self.config.sweep_every == 0
            ):
                self.sessions.evict_idle(now)
            session = self.sessions.get(request.session_id)
            reason = self.admission.admit(
                session=session,
                sessions=self.sessions,
                draining=self._draining,
                stopped=self._stopping or self._stopped,
            )
            if reason is not None:
                pressure = self.admission.pressure()
            else:
                if session is None:
                    session = self.sessions.open(
                        request.session_id,
                        request.db_id or self._default_db_id,
                        session_weight,
                        now,
                    )
                session.submitted += 1
                was_schedulable = session.schedulable
                session.queue.append(
                    _Pending(request, ticket, now, session.submitted)
                )
                if not was_schedulable and session.schedulable:
                    self.scheduler.push(session)
                    self._work_ready.notify()
        if reason is not None:
            ticket._resolve(
                Response(
                    request_id=request.request_id,
                    session_id=request.session_id,
                    status="shed",
                    shed_reason=reason,
                    backpressure=pressure,
                )
            )
        return ticket

    def ask(self, question: str, **kwargs) -> Response:
        """Convenience: submit and wait."""
        return self.submit(question, **kwargs).result()

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def close_session(self, session_id: str) -> int:
        """Close one session; queued requests shed ``SESSION_CLOSED``.

        Returns how many queued requests were flushed.  A turn already
        running finishes normally (its response was already owed); the
        wrapped interactive session is released as soon as it does.
        """
        with self._lock:
            session = self.sessions.close(session_id)
            flushed: list[_Pending] = []
            if session is not None:
                while session.queue:
                    flushed.append(session.queue.popleft())
                self.admission.release(len(flushed))
                if flushed:
                    self._idle.notify_all()
        for pending in flushed:
            self._shed_pending(pending, ShedReason.SESSION_CLOSED)
        return len(flushed)

    def sweep_idle_sessions(self) -> int:
        """Run the TTL sweep now; returns how many sessions were evicted."""
        with self._lock:
            return len(self.sessions.evict_idle(self._clock()))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def backpressure(self) -> float:
        """Global queue occupancy in [0, 1]."""
        return self.admission.pressure()

    def unhandled_errors(self) -> list[str]:
        """Worker-loop exceptions that escaped request handling (should
        always be empty; the chaos gate asserts on it)."""
        with self._lock:
            return list(self._unhandled)

    def stats(self) -> dict:
        """A JSON-safe snapshot for the ``serve`` CLI and the benches."""
        with self._lock:
            sessions = [
                {
                    "session_id": s.session_id,
                    "db_id": s.db_id,
                    "weight": s.weight,
                    "queued": len(s.queue),
                    "running": s.running,
                    "submitted": s.submitted,
                    "completed": s.completed,
                }
                for s in self.sessions
            ]
            return {
                "workers": len(self._threads),
                "active_workers": self._active_workers,
                "pending": self.admission.pending,
                "running": self._running_turns,
                "backpressure": round(self.admission.pressure(), 4),
                "draining": self._draining,
                "completions": self._completions,
                "sessions": sessions,
                "breakers": {
                    name: breaker.state
                    for name, breaker in sorted(all_breakers().items())
                },
            }

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _make_interactive(self, db_id: str) -> InteractiveSession:
        return InteractiveSession(
            system=self.coalescer,
            db=self.databases[db_id],
            knowledge=self._knowledge,
        )

    def _worker(self, index: int) -> None:
        while True:
            with self._lock:
                while not self._stopping and not self.scheduler.peek_ready():
                    self._work_ready.wait()
                if self._stopping:
                    # shutdown() flushes whatever is still queued
                    return
                session = self.scheduler.pop()
                if session is None:  # pragma: no cover - raced stale heap
                    continue
                pending = session.queue.popleft()
                session.running = True
                self.admission.release()
                self._running_turns += 1
                self._active_workers += 1
                pressure = self.admission.pressure()
            try:
                response = self._serve_one(pending, session, index, pressure)
            except BaseException as exc:  # the never-raise backstop
                _UNHANDLED.inc()
                response = Response(
                    request_id=pending.request.request_id,
                    session_id=session.session_id,
                    status="error",
                    error=f"unhandled worker error: {exc!r}",
                    session_seq=pending.session_seq,
                    worker=index,
                )
                with self._lock:
                    self._unhandled.append(repr(exc))
            with self._lock:
                now = self._clock()
                session.running = False
                session.completed += 1
                self.sessions.touch(session, now)
                if session.closed:
                    # close_session() ran mid-turn and deferred releasing
                    # the interactive session to us (see
                    # SessionRegistry.close)
                    session.interactive.close()
                self._running_turns -= 1
                self._active_workers -= 1
                self._completions += 1
                response.completion_index = self._completions
                if session.schedulable:
                    self.scheduler.push(session)
                    self._work_ready.notify()
                if not self.admission.pending and not self._running_turns:
                    self._idle.notify_all()
            _RESPONSES.inc()
            if response.status == "error":
                _ERRORS.inc()
            pending.ticket._resolve(response)

    def _serve_one(
        self,
        pending: _Pending,
        session: ServeSession,
        worker: int,
        pressure: float,
    ) -> Response:
        request = pending.request
        started = self._clock()
        queue_seconds = max(0.0, started - pending.enqueued_at)
        _QUEUE_SECONDS.observe(queue_seconds)
        base = Response(
            request_id=request.request_id,
            session_id=session.session_id,
            session_seq=pending.session_seq,
            worker=worker,
            queue_seconds=queue_seconds,
            backpressure=pressure,
        )

        remaining: float | None = None
        if request.deadline is not None:
            remaining = request.deadline - queue_seconds
            if remaining <= 0:
                # expired while queued: shed before burning a turn on an
                # answer the client has already given up on
                count_shed(ShedReason.DEADLINE)
                base.status = "shed"
                base.shed_reason = ShedReason.DEADLINE
                return base

        self.coalescer.begin_request()
        token = None
        if remaining is not None:
            token = _deadline.push_budget(remaining, self._clock)
        try:
            system_response = session.interactive.ask(request.question)
        except DeadlineExceeded:
            # a non-resilient system let the budget expiry escape the
            # turn; surface it as the typed deadline shed it is
            count_shed(ShedReason.DEADLINE)
            base.status = "shed"
            base.shed_reason = ShedReason.DEADLINE
            base.service_seconds = self._clock() - started
            return base
        except ReproError as exc:
            base.status = "error"
            base.error = str(exc)
            base.service_seconds = self._clock() - started
            return base
        finally:
            if token is not None:
                _deadline.pop_budget(token)

        service_seconds = self._clock() - started
        _SERVICE_SECONDS.observe(service_seconds)
        _TURN_SECONDS.observe(queue_seconds + service_seconds)
        return self._fill(base, system_response, service_seconds)

    def _fill(
        self,
        base: Response,
        system_response: SystemResponse,
        service_seconds: float,
    ) -> Response:
        base.service_seconds = service_seconds
        base.kind = system_response.kind
        base.sql = system_response.sql
        base.vql = system_response.vql
        base.result = system_response.result
        base.chart = system_response.chart
        base.message = system_response.message
        base.degraded = tuple(system_response.degraded)
        base.coalesced = self.coalescer.was_coalesced()
        if system_response.answered:
            base.status = "ok"
        else:
            base.status = "error"
            base.error = system_response.message or (
                f"system returned {system_response.kind!r}"
            )
        return base

    def _shed_pending(self, pending: _Pending, reason: ShedReason) -> None:
        count_shed(reason)
        pending.ticket._resolve(
            Response(
                request_id=pending.request.request_id,
                session_id=pending.request.session_id,
                status="shed",
                shed_reason=reason,
                session_seq=pending.session_seq,
            )
        )
