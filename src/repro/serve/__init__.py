"""Concurrent serving for NLI systems — the "many users, one process"
layer the ROADMAP's heavy-traffic north star asks for.

Everything under :mod:`repro.serve` is zero-dependency and built from
the repo's own substrates: sessions wrap
:class:`~repro.systems.session.InteractiveSession`, coalescing keys off
:mod:`repro.sql.rescache` state tokens, deadlines ride
:mod:`repro.resilience.deadline`, and every component reports through
:mod:`repro.obs.metrics` under ``repro.serve.*``.

Pieces (one module each, composed by :class:`Server`):

- :mod:`repro.serve.envelope` — typed :class:`Request` /
  :class:`Response` / :class:`Ticket` and the :class:`ShedReason` enum;
- :mod:`repro.serve.sessions` — the per-session FIFO state table with
  LRU idle eviction;
- :mod:`repro.serve.scheduler` — start-time fair queuing across
  sessions;
- :mod:`repro.serve.admission` — bounded queues, typed load shedding,
  backpressure;
- :mod:`repro.serve.batching` — singleflight micro-batching of
  identical concurrent turns;
- :mod:`repro.serve.server` — the worker pool tying it all together;
- :mod:`repro.serve.cli` / :mod:`repro.serve.loadgen` — ``python -m
  repro serve`` and ``python -m repro loadgen``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.batching import Coalescer
from repro.serve.envelope import Request, Response, ShedReason, Ticket
from repro.serve.scheduler import FairScheduler
from repro.serve.server import ServeConfig, Server
from repro.serve.sessions import ServeSession, SessionRegistry

__all__ = [
    "AdmissionController",
    "Coalescer",
    "FairScheduler",
    "Request",
    "Response",
    "ServeConfig",
    "ServeSession",
    "Server",
    "SessionRegistry",
    "ShedReason",
    "Ticket",
]
