"""``python -m repro loadgen`` — seeded corpus replay against a Server.

Drives :class:`repro.serve.Server` with realistic traffic synthesized
from any registered dataset and reports the serving numbers that matter:
latency percentiles (p50/p95/p99), throughput, shed rate, coalescing
effectiveness::

    python -m repro loadgen                          # closed-loop, 8 clients
    python -m repro loadgen --rps 200 --requests 500 # open-loop at 200 req/s
    python -m repro loadgen --dup-rate 0.5           # duplicate-heavy traffic
    python -m repro loadgen --deadline 0.05          # 50ms per-request budget
    python -m repro loadgen --json                   # machine-readable report

Two arrival models:

- **closed loop** (default): ``--clients`` threads each own a slice of
  the sessions and submit their next request only after the previous
  response lands — offered load adapts to service capacity, the way a
  human-in-the-loop UI behaves;
- **open loop** (``--rps``): requests are submitted on a fixed seeded
  schedule regardless of completions — the model that actually exposes
  queueing collapse and load shedding under overload.

Everything is seeded: session/db assignment, question choice, duplicate
injection.  Same flags + seed → the same request sequence, which is what
lets ``benchmarks/bench_serve.py`` gate on ordering invariants.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time

from repro.eval.parallel import resolve_workers
from repro.serve.envelope import Response, Ticket
from repro.serve.server import ServeConfig, Server

__all__ = ["build_workload", "main", "percentile", "run_loadgen", "summarize"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of *values*."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


def build_workload(
    dataset: str,
    scale: int,
    seed: int,
    requests: int,
    sessions: int,
    dup_rate: float,
):
    """The seeded request script: ``(databases, [(session_id, db_id,
    question, knowledge), ...])``.

    Sessions are assigned round-robin over the dataset's databases (a
    conversation stays on one database); questions are drawn seeded from
    that database's own examples.  With probability *dup_rate* a request
    repeats a question already issued for the same database — the
    duplicate-heavy traffic that exercises result caching and the
    coalescer.
    """
    from repro.datasets import build_dataset

    ds = build_dataset(dataset, scale=scale, seed=seed)
    by_db: dict[str, list] = {}
    for example in ds.examples:
        by_db.setdefault(example.db_id, []).append(example)
    db_ids = sorted(by_db)
    rng = random.Random(seed)
    session_db = {
        f"s{i:03d}": db_ids[i % len(db_ids)] for i in range(sessions)
    }
    issued: dict[str, list] = {db_id: [] for db_id in db_ids}
    script = []
    session_ids = sorted(session_db)
    for _ in range(requests):
        session_id = rng.choice(session_ids)
        db_id = session_db[session_id]
        pool = issued[db_id]
        if pool and rng.random() < dup_rate:
            example = rng.choice(pool)
        else:
            example = rng.choice(by_db[db_id])
            pool.append(example)
        script.append(
            (session_id, db_id, example.question, example.knowledge)
        )
    return ds.databases, script


def _collect(tickets: list[Ticket], timeout: float) -> list[Response]:
    return [ticket.result(timeout=timeout) for ticket in tickets]


def run_loadgen(
    server: Server,
    script: list,
    clients: int = 8,
    rps: float | None = None,
    deadline: float | None = None,
    timeout: float = 120.0,
) -> list[Response]:
    """Replay *script* against *server*; returns responses in script order.

    ``rps=None`` runs the closed loop (each of *clients* threads walks
    its own sessions' requests in order, waiting per request); a number
    runs the open loop (submit on schedule, collect afterwards).
    """
    if rps is not None:
        interval = 1.0 / max(rps, 1e-9)
        tickets: list[Ticket] = []
        start = time.monotonic()
        for index, (session_id, db_id, question, knowledge) in enumerate(
            script
        ):
            target = start + index * interval
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            tickets.append(
                server.submit(
                    question,
                    session_id=session_id,
                    db_id=db_id,
                    knowledge=knowledge,
                    deadline=deadline,
                )
            )
        return _collect(tickets, timeout)

    # closed loop: partition *sessions* across clients so per-session
    # submit order (and therefore FIFO seq) stays deterministic
    by_session: dict[str, list] = {}
    order: dict[int, Response] = {}
    for index, entry in enumerate(script):
        by_session.setdefault(entry[0], []).append((index, entry))
    session_ids = sorted(by_session)
    lanes: list[list] = [[] for _ in range(max(1, clients))]
    for i, session_id in enumerate(session_ids):
        lanes[i % len(lanes)].extend(by_session[session_id])
    lock = threading.Lock()

    def client(lane: list) -> None:
        for index, (session_id, db_id, question, knowledge) in lane:
            response = server.submit(
                question,
                session_id=session_id,
                db_id=db_id,
                knowledge=knowledge,
                deadline=deadline,
            ).result(timeout=timeout)
            with lock:
                order[index] = response

    threads = [
        threading.Thread(target=client, args=(lane,), daemon=True)
        for lane in lanes
        if lane
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    return [order[index] for index in sorted(order)]


def summarize(
    responses: list[Response], wall_seconds: float, server: Server
) -> dict:
    """The loadgen report: latency percentiles, throughput, shed mix."""
    latencies = [r.total_seconds for r in responses if not r.shed]
    sheds: dict[str, int] = {}
    for response in responses:
        if response.shed and response.shed_reason is not None:
            reason = response.shed_reason.value
            sheds[reason] = sheds.get(reason, 0) + 1
    completed = len(latencies)
    return {
        "requests": len(responses),
        "ok": sum(1 for r in responses if r.ok),
        "errors": sum(1 for r in responses if r.status == "error"),
        "shed": sum(1 for r in responses if r.shed),
        "shed_rate": round(
            sum(1 for r in responses if r.shed) / max(1, len(responses)), 4
        ),
        "sheds_by_reason": dict(sorted(sheds.items())),
        "coalesced": sum(1 for r in responses if r.coalesced),
        "degraded": sum(1 for r in responses if r.degraded),
        "wall_seconds": round(wall_seconds, 6),
        "throughput_rps": round(completed / wall_seconds, 2)
        if wall_seconds > 0
        else 0.0,
        "latency_p50_ms": round(percentile(latencies, 50) * 1e3, 3),
        "latency_p95_ms": round(percentile(latencies, 95) * 1e3, 3),
        "latency_p99_ms": round(percentile(latencies, 99) * 1e3, 3),
        "latency_mean_ms": round(
            sum(latencies) / completed * 1e3 if completed else 0.0, 3
        ),
        "unhandled_errors": server.unhandled_errors(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description="seeded load generation against the serving layer",
    )
    parser.add_argument("--dataset", default="spider_like")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        help="closed-loop client threads (ignored with --rps)",
    )
    parser.add_argument(
        "--rps",
        type=float,
        default=None,
        help="open-loop arrival rate; omit for the closed loop",
    )
    parser.add_argument(
        "--dup-rate",
        type=float,
        default=0.3,
        help="probability a request repeats an earlier question",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="server worker threads (default: REPRO_EVAL_WORKERS or 4)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request total latency budget in seconds",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="admission bound on queued requests",
    )
    parser.add_argument(
        "--coalesce-window",
        type=float,
        default=0.0,
        help="micro-batching window in seconds (0 = plain singleflight)",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable duplicate-request coalescing",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    workers = resolve_workers(args.workers, default=4)
    databases, script = build_workload(
        args.dataset,
        args.scale,
        args.seed,
        args.requests,
        args.sessions,
        args.dup_rate,
    )
    config = ServeConfig(
        workers=workers,
        max_pending=args.max_pending,
        coalesce=not args.no_coalesce,
        coalesce_window=args.coalesce_window,
    )
    server = Server(dict(databases), config=config)
    start = time.monotonic()
    responses = run_loadgen(
        server,
        script,
        clients=args.clients,
        rps=args.rps,
        deadline=args.deadline,
    )
    wall = time.monotonic() - start
    server.shutdown()
    report = summarize(responses, wall, server)
    report["config"] = {
        "dataset": args.dataset,
        "scale": args.scale,
        "seed": args.seed,
        "sessions": args.sessions,
        "workers": workers,
        "mode": "open" if args.rps is not None else "closed",
        "rps": args.rps,
        "clients": args.clients,
        "dup_rate": args.dup_rate,
        "deadline": args.deadline,
        "coalesce": not args.no_coalesce,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        mode = report["config"]["mode"]
        print(
            f"loadgen: {report['requests']} requests, {args.sessions} "
            f"sessions, {workers} workers, {mode} loop"
        )
        print(
            f"  ok={report['ok']} errors={report['errors']} "
            f"shed={report['shed']} ({report['shed_rate']:.1%}) "
            f"coalesced={report['coalesced']} degraded={report['degraded']}"
        )
        print(
            f"  throughput {report['throughput_rps']} req/s over "
            f"{report['wall_seconds']:.3f}s"
        )
        print(
            f"  latency ms: p50={report['latency_p50_ms']} "
            f"p95={report['latency_p95_ms']} p99={report['latency_p99_ms']} "
            f"mean={report['latency_mean_ms']}"
        )
        if report["sheds_by_reason"]:
            print(f"  sheds: {report['sheds_by_reason']}")
    return 1 if report["unhandled_errors"] else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
