"""Weighted-fair scheduling across sessions (start-time fair queuing).

The server must balance two orthogonal ordering constraints: *within* a
session requests are strict FIFO (conversation context), while *across*
sessions capacity should be shared by weight — a session that floods the
queue must not starve its neighbours, and a 3×-weight session should see
~3× the turns of a 1×-weight one under contention.

:class:`FairScheduler` implements start-time fair queuing (SFQ) over
*sessions*, the classic packet-scheduling discipline adapted to turns:

- every dispatch carries a virtual **start tag** ``max(V, F_s)`` where
  ``V`` is the global virtual time and ``F_s`` the session's last finish
  tag;
- the session's finish tag advances by ``1 / weight`` per dispatched
  turn (unit cost — turns are priced equally a priori);
- the scheduler always dispatches the ready session with the smallest
  start tag, breaking ties by arrival order, and advances ``V`` to that
  start tag.

Backlogged sessions therefore interleave in weight proportion, an idle
session re-enters at the current virtual time (no credit hoarding, no
starvation), and with a single backlogged session the order degenerates
to plain FIFO.  Everything is deterministic: tags are pure arithmetic
and ties break on a monotonic push counter, so a seeded storm replays
identically — the property ``benchmarks/bench_serve.py`` gates on.

The scheduler is a passive data structure; the server calls it under its
own lock.  Entries are lazily invalidated: a popped session that is no
longer schedulable (closed, emptied, already running) is skipped, and a
session is (re)pushed whenever it transitions back to schedulable.
"""

from __future__ import annotations

import heapq
from itertools import count

from repro.serve.sessions import ServeSession

__all__ = ["FairScheduler"]


class FairScheduler:
    """SFQ dispatch order over :class:`ServeSession` objects."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, ServeSession]] = []
        self._virtual_time = 0.0
        self._pushes = count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def virtual_time(self) -> float:
        return self._virtual_time

    def push(self, session: ServeSession) -> None:
        """Offer a session that just became schedulable (head available).

        The start tag is fixed at push time; the virtual clock only
        moves forward, so a tag never becomes unfairly early while it
        waits in the heap.
        """
        start_tag = max(self._virtual_time, session.finish_tag)
        heapq.heappush(
            self._heap, (start_tag, next(self._pushes), session)
        )

    def pop(self) -> ServeSession | None:
        """The schedulable session with the smallest start tag, or None.

        Advances virtual time to the winner's start tag and charges the
        session one ``1/weight`` quantum.  Stale heap entries (sessions
        that got closed, drained, or marked running since their push)
        are discarded on the way.
        """
        while self._heap:
            start_tag, _, session = heapq.heappop(self._heap)
            if not session.schedulable:
                continue
            self._virtual_time = max(self._virtual_time, start_tag)
            session.finish_tag = (
                max(start_tag, session.finish_tag) + 1.0 / session.weight
            )
            return session
        return None

    def peek_ready(self) -> bool:
        """Whether any live schedulable entry exists (prunes stale ones)."""
        while self._heap and not self._heap[0][2].schedulable:
            heapq.heappop(self._heap)
        return bool(self._heap)

    def clear(self) -> None:
        self._heap.clear()
