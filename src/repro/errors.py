"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class at the NLI boundary.  Sub-hierarchies mirror the
pipeline stages of the survey's Fig. 1: lexing/parsing of formal languages,
schema analysis, execution, natural-language parsing, and system-level faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SQLError(ReproError):
    """Base class for errors in the SQL substrate."""


class LexError(SQLError):
    """Raised when the SQL lexer encounters an invalid character sequence.

    ``position`` is the character offset into the source text.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(SQLError):
    """Raised when the SQL parser cannot build an AST from the token stream.

    ``position`` is the character offset into the source text of the token
    the parser stopped at (the same convention as :class:`LexError`, so
    diagnostics can point at the offending token), or ``-1`` when no
    source location is available.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        suffix = f" (at position {position})" if position >= 0 else ""
        super().__init__(message + suffix)
        self.position = position


class AnalysisError(SQLError):
    """Raised when a query does not validate against a database schema."""


class ExecutionError(SQLError):
    """Raised when a valid query fails during execution."""


class VQLError(ReproError):
    """Base class for errors in the visualization query language substrate."""


class VQLParseError(VQLError):
    """Raised when a VQL string cannot be parsed."""


class ChartError(VQLError):
    """Raised when a chart specification cannot be rendered."""


class DatasetError(ReproError):
    """Raised when a benchmark dataset cannot be generated or loaded."""


class NLParseError(ReproError):
    """Raised when a natural-language parser cannot produce any candidate."""


class LLMError(ReproError):
    """Raised by the simulated LLM substrate (e.g. malformed prompt)."""


class SystemConfigError(ReproError):
    """Raised when an NLI system is assembled from incompatible components."""


class ResilienceError(ReproError):
    """Base class for faults raised by :mod:`repro.resilience`.

    Deliberately *not* an :class:`SQLError`: the pipeline's ordinary
    failure handling (``except SQLError``) must not swallow a deadline or
    an injected fault — those are routed to the degradation ladders
    instead of being reported as a plain execution failure.
    """


class DeadlineExceeded(ResilienceError):
    """Raised by a cooperative :class:`repro.resilience.Deadline` check
    when the enclosing turn or stage budget has run out."""


class CircuitOpenError(ResilienceError):
    """Raised when a call is rejected by an open circuit breaker.

    ``component`` names the breaker that rejected the call.
    """

    def __init__(self, component: str, message: str | None = None) -> None:
        super().__init__(
            message or f"circuit breaker {component!r} is open"
        )
        self.component = component


class InjectedFault(ResilienceError):
    """Raised by the fault-injection harness (:mod:`repro.resilience.faults`).

    ``site`` is the component address the fault was injected at — tests
    and degradation ladders can tell injected failures from organic ones.
    """

    def __init__(self, site: str, message: str | None = None) -> None:
        super().__init__(message or f"injected fault at {site!r}")
        self.site = site
