"""Benchmark dataset synthesis.

One builder per dataset *category* of the survey's Table 1:

- single-domain (ATIS/GeoQuery lineage) — :mod:`repro.datasets.sql`
- cross-domain (WikiSQL/Spider lineage) — :mod:`repro.datasets.sql`
- multi-turn (SParC/CoSQL lineage) — :mod:`repro.datasets.multiturn`
- multilingual (CSpider lineage) — :mod:`repro.datasets.multilingual`
- robustness (Spider-SYN/-realistic/Dr.Spider lineage) —
  :mod:`repro.datasets.robustness`
- knowledge-grounded (Spider-DK/BIRD lineage) —
  :mod:`repro.datasets.knowledge`
- Text-to-Vis (nvBench/ChartDialogs/Dial-NVBench/CNvBench lineage) —
  :mod:`repro.datasets.vis`

The registry (:mod:`repro.datasets.registry`) names one calibrated build
per Table 1 row family, which the Table 1 benchmark regenerates.
"""

from repro.datasets.base import Dataset, Dialogue, Example, Split
from repro.datasets.registry import build_dataset, dataset_names

__all__ = [
    "Dataset",
    "Dialogue",
    "Example",
    "Split",
    "build_dataset",
    "dataset_names",
]
