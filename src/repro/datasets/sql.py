"""Text-to-SQL dataset builders: single-domain, cross-domain, WikiSQL-like.

The builders reproduce the structural axes of the survey's Table 1:

- :func:`build_single_domain` — one domain, one database (ATIS/GeoQuery/
  Academic lineage); splits share the database, so approaches may memorize
  domain phrasing.
- :func:`build_cross_domain` — many domains, several databases per domain
  (Spider lineage); dev databases are *held out* from train, so evaluation
  is zero-shot on unseen schemas, the property that makes Spider harder
  than WikiSQL.
- :func:`build_wikisql_like` — very many single-table databases with only
  simple query patterns (WikiSQL lineage).
"""

from __future__ import annotations

import random
from repro.data.database import Database
from repro.data.domains import Domain, all_domains, domain_by_name
from repro.data.generator import DatabaseGenerator, GeneratorConfig
from repro.data.schema import Schema, TableSchema
from repro.datasets.base import Dataset, Example, Split
from repro.datasets.patterns import (
    ALL_PATTERNS,
    SIMPLE_PATTERNS,
    PatternContext,
    sample_instance,
)
from repro.errors import DatasetError


def clone_domain(domain: Domain, db_id: str) -> Domain:
    """A copy of *domain* whose schema carries a new ``db_id``."""
    schema = Schema(
        db_id=db_id,
        tables=domain.schema.tables,
        foreign_keys=domain.schema.foreign_keys,
        domain=domain.schema.domain,
    )
    return Domain(name=domain.name, schema=schema, vocabulary=domain.vocabulary)


def _make_examples(
    domain: Domain,
    db: Database,
    count: int,
    rng: random.Random,
    patterns=ALL_PATTERNS,
) -> list[Example]:
    ctx = PatternContext(domain, db, rng)
    examples = []
    for _ in range(count):
        instance = sample_instance(ctx, patterns)
        examples.append(
            Example(
                question=instance.question,
                db_id=db.db_id,
                sql=instance.sql,
                hardness=instance.hardness,
                pattern=instance.pattern,
            )
        )
    return examples


def build_single_domain(
    domain_name: str = "academic",
    num_examples: int = 200,
    seed: int = 0,
    dataset_name: str | None = None,
) -> Dataset:
    """A single-domain benchmark over one curated database."""
    rng = random.Random(seed)
    domain = domain_by_name(domain_name)
    generator = DatabaseGenerator(seed=rng.randrange(1 << 30))
    db = generator.populate(domain)
    examples = _make_examples(domain, db, num_examples, rng)
    train_len = int(len(examples) * 0.8)
    return Dataset(
        name=dataset_name or f"{domain_name}_single",
        task="sql",
        feature="Single Domain",
        databases={db.db_id: db},
        splits={
            "train": Split("train", examples[:train_len]),
            "dev": Split("dev", examples[train_len:]),
        },
    )


def build_cross_domain(
    num_examples: int = 1000,
    copies_per_domain: int = 2,
    rows_per_table: int = 24,
    seed: int = 0,
    dataset_name: str = "spider_like",
    dev_fraction: float = 0.25,
) -> Dataset:
    """A Spider-like cross-domain benchmark with held-out dev databases."""
    rng = random.Random(seed)
    generator = DatabaseGenerator(
        seed=rng.randrange(1 << 30),
        config=GeneratorConfig(rows_per_table=rows_per_table),
    )

    databases: dict[str, Database] = {}
    domain_of: dict[str, Domain] = {}
    for domain in all_domains():
        for copy in range(copies_per_domain):
            db_id = f"{domain.name}_{copy}"
            clone = clone_domain(domain, db_id)
            databases[db_id] = generator.populate(clone)
            domain_of[db_id] = clone

    db_ids = sorted(databases)
    rng.shuffle(db_ids)
    dev_count = max(1, int(len(db_ids) * dev_fraction))
    dev_ids = set(db_ids[:dev_count])
    train_ids = [i for i in db_ids if i not in dev_ids]
    if not train_ids:
        raise DatasetError("cross-domain build needs at least 2 databases")

    train_examples: list[Example] = []
    dev_examples: list[Example] = []
    train_quota = int(num_examples * 0.8)
    dev_quota = num_examples - train_quota
    for index in range(train_quota):
        db_id = train_ids[index % len(train_ids)]
        train_examples.extend(
            _make_examples(domain_of[db_id], databases[db_id], 1, rng)
        )
    dev_list = sorted(dev_ids)
    for index in range(dev_quota):
        db_id = dev_list[index % len(dev_list)]
        dev_examples.extend(
            _make_examples(domain_of[db_id], databases[db_id], 1, rng)
        )

    return Dataset(
        name=dataset_name,
        task="sql",
        feature="Cross Domain",
        databases=databases,
        splits={
            "train": Split("train", train_examples),
            "dev": Split("dev", dev_examples),
        },
    )


def build_wikisql_like(
    num_examples: int = 800,
    num_databases: int = 120,
    rows_per_table: int = 16,
    seed: int = 0,
    dataset_name: str = "wikisql_like",
) -> Dataset:
    """A WikiSQL-like benchmark: one-table databases, simple patterns."""
    rng = random.Random(seed)
    generator = DatabaseGenerator(
        seed=rng.randrange(1 << 30),
        config=GeneratorConfig(rows_per_table=rows_per_table),
    )

    # carve every domain table into its own single-table database
    table_pool: list[tuple[Domain, TableSchema]] = []
    for domain in all_domains():
        for table in domain.schema.tables:
            if len(table.columns) >= 3:
                table_pool.append((domain, table))

    databases: dict[str, Database] = {}
    domain_of: dict[str, Domain] = {}
    for index in range(num_databases):
        base_domain, table = table_pool[index % len(table_pool)]
        db_id = f"wtq_{index:04d}"
        schema = Schema(
            db_id=db_id,
            tables=(table,),
            foreign_keys=(),
            domain=base_domain.name,
        )
        single = Domain(
            name=base_domain.name,
            schema=schema,
            vocabulary=base_domain.vocabulary,
        )
        databases[db_id] = generator.populate(single)
        domain_of[db_id] = single

    db_ids = sorted(databases)
    examples: list[Example] = []
    for index in range(num_examples):
        db_id = db_ids[index % len(db_ids)]
        examples.extend(
            _make_examples(
                domain_of[db_id],
                databases[db_id],
                1,
                rng,
                patterns=SIMPLE_PATTERNS,
            )
        )
    rng.shuffle(examples)
    train_len = int(len(examples) * 0.8)
    return Dataset(
        name=dataset_name,
        task="sql",
        feature="Cross Domain",
        databases=databases,
        splits={
            "train": Split("train", examples[:train_len]),
            "dev": Split("dev", examples[train_len:]),
        },
    )
