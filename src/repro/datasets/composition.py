"""Compositional-generalization splits (Spider-SSP / Spider-CG lineage).

Spider-SSP re-splits a benchmark so the dev set demands *composing* known
constructs in unseen combinations; Spider-CG builds composed examples by
sub-sentence substitution.  We reproduce both constructions:

- :func:`make_ssp_split` — re-split by pattern *composition signature*:
  training examples use atomic patterns (single clause phenomena), dev
  examples use composed ones (e.g. condition + ordering together).  A
  parser that merely memorizes whole-pattern templates fails; one that
  composes clause decisions generalizes.
- :func:`build_spider_cg_like` — generate composed examples directly by
  stacking two independently-sampled phenomena onto one query, yielding
  the "sub-sentence substitution" appendix set (CG-SUB/CG-APP style).
"""

from __future__ import annotations

import random
from dataclasses import replace as dc_replace

from repro.data.domains import all_domains
from repro.data.generator import DatabaseGenerator
from repro.datasets.base import Dataset, Example, Split
from repro.datasets.patterns import PatternContext, filter_list
from repro.datasets.sql import build_cross_domain, clone_domain
from repro.errors import DatasetError
from repro.sql.ast import OrderItem, Select
from repro.sql.components import classify_hardness
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql

#: patterns counted as atomic (one clause phenomenon beyond projection)
_ATOMIC_PATTERNS = frozenset(
    {
        "select_columns", "filter_list", "filter_like", "filter_between",
        "agg_scalar", "count_filter", "distinct_values", "superlative",
        "scatter_pair",
    }
)


def composition_signature(sql: str) -> int:
    """Number of composed clause phenomena in a query."""
    query = parse_sql(sql)
    select = query
    while not isinstance(select, Select):
        select = select.left
    phenomena = 0
    if select.where is not None:
        phenomena += 1
    if select.group_by:
        phenomena += 1
    if select.order_by:
        phenomena += 1
    if select.limit is not None:
        phenomena += 1
    from repro.sql.ast import Join

    if isinstance(select.from_, Join):
        phenomena += 1
    if query is not select:  # set operation
        phenomena += 1
    return phenomena


def make_ssp_split(
    dataset: Dataset, name: str | None = None, threshold: int = 2
) -> Dataset:
    """Re-split *dataset* compositionally (Spider-SSP construction).

    Examples with fewer than *threshold* composed phenomena train; the
    rest are dev.  Raises :class:`DatasetError` when either side would be
    empty.
    """
    atomic: list[Example] = []
    composed: list[Example] = []
    for example in dataset.examples:
        if composition_signature(example.sql) < threshold:
            atomic.append(example)
        else:
            composed.append(example)
    if not atomic or not composed:
        raise DatasetError(
            "compositional split needs both atomic and composed examples"
        )
    return Dataset(
        name=name or f"{dataset.name}_ssp",
        task=dataset.task,
        feature="Robustness",
        databases=dataset.databases,
        splits={
            "train": Split("train", atomic),
            "dev": Split("dev", composed),
        },
        language=dataset.language,
    )


def build_spider_ssp_like(
    num_examples: int = 320, seed: int = 0, dataset_name: str = "spider_ssp_like"
) -> Dataset:
    """A compositional-generalization benchmark (Spider-SSP lineage)."""
    base = build_cross_domain(
        num_examples=num_examples, seed=seed, dataset_name=dataset_name
    )
    return make_ssp_split(base, name=dataset_name)


def build_spider_cg_like(
    num_examples: int = 400,
    seed: int = 0,
    dataset_name: str = "spider_cg_like",
) -> Dataset:
    """A Spider-CG-like set: composed examples built by stacking phenomena.

    Each example starts from a filter query and appends an independently
    sampled ordering phenomenon (the CG-APP construction), so every dev
    example is a composition whose parts occur atomically in train.
    """
    rng = random.Random(seed)
    generator = DatabaseGenerator(seed=rng.randrange(1 << 30))
    databases = {}
    contexts = {}
    for domain in all_domains():
        db_id = f"{domain.name}_cg"
        clone = clone_domain(domain, db_id)
        databases[db_id] = generator.populate(clone)
        contexts[db_id] = PatternContext(clone, databases[db_id], rng)

    db_ids = sorted(databases)
    train: list[Example] = []
    dev: list[Example] = []
    attempts = 0
    while len(train) + len(dev) < num_examples and attempts < num_examples * 30:
        attempts += 1
        db_id = db_ids[attempts % len(db_ids)]
        ctx = contexts[db_id]
        base = filter_list(ctx)
        if base is None or not isinstance(base.query, Select):
            continue
        if len(train) < int(num_examples * 0.8):
            # atomic training example
            train.append(
                Example(
                    question=base.question,
                    db_id=db_id,
                    sql=base.sql,
                    hardness=base.hardness,
                    pattern=base.pattern,
                )
            )
            continue
        # composed dev example: append an ordering phenomenon
        table = ctx.schema.table(base.table)
        numeric = ctx.numeric_columns(table)
        if not numeric:
            continue
        column = ctx.rng.choice(numeric)
        descending = ctx.rng.random() < 0.5
        composed_query = dc_replace(
            base.query,
            order_by=(
                OrderItem(
                    expr=_col_ref(column.name), descending=descending
                ),
            ),
        )
        suffix = ctx.realizer.order_suffix(
            ctx.realizer.column_noun(column), descending
        )
        question = base.question.rstrip("?") + f" {suffix}?"
        dev.append(
            Example(
                question=question,
                db_id=db_id,
                sql=to_sql(composed_query),
                hardness=classify_hardness(composed_query),
                pattern="filter_list+order",
            )
        )

    return Dataset(
        name=dataset_name,
        task="sql",
        feature="Robustness",
        databases=databases,
        splits={"train": Split("train", train), "dev": Split("dev", dev)},
    )


def _col_ref(name: str):
    from repro.sql.ast import ColumnRef

    return ColumnRef(column=name.lower())
