"""Multilingual dataset variants (CSpider / ViText2SQL / CNvBench lineage).

The published multilingual benchmarks translate an English benchmark's
questions while keeping schemas and gold programs in English.  We apply
the same construction: :func:`translate_dataset` maps every question of a
source dataset through the lexicon translator, preserving databases, gold
SQL/VQL, splits, and dialogue structure.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.datasets.base import Dataset, Dialogue, Example, Split
from repro.nlg.translate import SUPPORTED_LANGUAGES, translate


def translate_dataset(
    dataset: Dataset,
    language: str,
    name: str | None = None,
    feature: str = "Multilingual",
) -> Dataset:
    """A copy of *dataset* with every question translated to *language*.

    ``feature`` defaults to "Multilingual" but can preserve the source
    category (CHASE is a multi-turn benchmark that happens to be Chinese;
    knowSQL is knowledge-grounded)."""
    if language not in SUPPORTED_LANGUAGES:
        raise KeyError(
            f"unsupported language {language!r}; choose from "
            f"{SUPPORTED_LANGUAGES}"
        )

    def _translate(example: Example) -> Example:
        return dc_replace(
            example,
            question=translate(example.question, language),
            language=language,
        )

    splits = {
        split_name: Split(
            split_name, [_translate(e) for e in split.examples]
        )
        for split_name, split in dataset.splits.items()
    }
    dialogues = [
        Dialogue(
            dialogue_id=d.dialogue_id,
            db_id=d.db_id,
            turns=[_translate(t) for t in d.turns],
        )
        for d in dataset.dialogues
    ]
    return Dataset(
        name=name or f"{dataset.name}_{language}",
        task=dataset.task,
        feature=feature,
        databases=dataset.databases,
        splits=splits,
        language=language,
        dialogues=dialogues,
    )
