"""Named benchmark registry: one calibrated build per Table 1 row family.

Published benchmark sizes range from ten examples (Gao et al.) to 80k
(WikiSQL).  Every builder's base size equals the published benchmark's
query count and the caller's ``scale`` multiplies it linearly (with a
floor so tiny sets stay statistically useful), so at any common scale the
relative size ordering of the paper's Table 1 is preserved.  The default
benchmark scale is 0.01 (1/100), which regenerates all 38 families in
well under a minute.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import Dataset
from repro.datasets.composition import build_spider_cg_like, build_spider_ssp_like
from repro.datasets.knowledge import build_bird_like
from repro.datasets.multilingual import translate_dataset
from repro.datasets.multiturn import build_dial_vis_like, build_sparc_like
from repro.datasets.robustness import (
    make_realistic_variant,
    make_synonym_variant,
    make_typo_variant,
)
from repro.datasets.sql import (
    build_cross_domain,
    build_single_domain,
    build_wikisql_like,
)
from repro.datasets.vis import build_nvbench_like, build_single_domain_vis
from repro.errors import DatasetError


def _scaled(base: int, scale: float, floor: int = 60) -> int:
    return max(floor, int(base * scale))


def _build_geoquery(scale: float, seed: int) -> Dataset:
    return build_single_domain(
        "geography", _scaled(877, scale), seed, dataset_name="geoquery_like"
    )


def _build_academic(scale: float, seed: int) -> Dataset:
    return build_single_domain(
        "academic", _scaled(196, scale, floor=50), seed,
        dataset_name="academic_like",
    )


def _build_restaurants(scale: float, seed: int) -> Dataset:
    return build_single_domain(
        "restaurants", _scaled(378, scale, floor=50), seed,
        dataset_name="restaurants_like",
    )


def _build_atis(scale: float, seed: int) -> Dataset:
    return build_single_domain(
        "flights", _scaled(5280, scale), seed, dataset_name="atis_like"
    )


def _build_scholar(scale: float, seed: int) -> Dataset:
    return build_single_domain(
        "academic", _scaled(817, scale, floor=60), seed,
        dataset_name="scholar_like",
    )


def _build_imdb(scale: float, seed: int) -> Dataset:
    return build_single_domain(
        "movies", _scaled(131, scale, floor=50), seed,
        dataset_name="imdb_like",
    )


def _build_yelp(scale: float, seed: int) -> Dataset:
    return build_single_domain(
        "restaurants", _scaled(128, scale, floor=50), seed + 1,
        dataset_name="yelp_like",
    )


def _build_advising(scale: float, seed: int) -> Dataset:
    return build_single_domain(
        "library", _scaled(3898, scale, floor=80), seed,
        dataset_name="advising_like",
    )


def _build_sede(scale: float, seed: int) -> Dataset:
    return build_single_domain(
        "company", _scaled(12023, scale, floor=100), seed,
        dataset_name="sede_like",
    )


def _build_mimicsql(scale: float, seed: int) -> Dataset:
    return build_single_domain(
        "healthcare", _scaled(10000, scale), seed,
        dataset_name="mimicsql_like",
    )


def _build_wikisql(scale: float, seed: int) -> Dataset:
    return build_wikisql_like(
        num_examples=_scaled(80654, scale, floor=200),
        num_databases=max(40, int(26521 * scale / 3)),
        seed=seed,
    )


def _build_spider(scale: float, seed: int) -> Dataset:
    return build_cross_domain(
        num_examples=_scaled(10181, scale, floor=200),
        copies_per_domain=2,
        seed=seed,
    )


def _build_sparc(scale: float, seed: int) -> Dataset:
    return build_sparc_like(
        num_dialogues=_scaled(4300, scale, floor=40), seed=seed
    )


def _build_cosql(scale: float, seed: int) -> Dataset:
    return build_sparc_like(
        num_dialogues=_scaled(3000, scale, floor=40),
        max_turns=5,
        seed=seed + 3,
        dataset_name="cosql_like",
    )


def _build_chase(scale: float, seed: int) -> Dataset:
    return translate_dataset(
        build_sparc_like(
            num_dialogues=_scaled(5459, scale, floor=40), seed=seed + 5
        ),
        "zh",
        "chase_like",
        feature="Multi-turn",
    )


def _build_dusql(scale: float, seed: int) -> Dataset:
    return translate_dataset(
        build_cross_domain(
            num_examples=_scaled(23797, scale, floor=150), seed=seed + 7,
            dataset_name="dusql_base",
        ),
        "zh",
        "dusql_like",
    )


def _build_tableqa(scale: float, seed: int) -> Dataset:
    return translate_dataset(
        build_wikisql_like(
            num_examples=_scaled(64891, scale, floor=150),
            num_databases=max(30, int(6029 * scale)),
            seed=seed + 9,
            dataset_name="tableqa_base",
        ),
        "zh",
        "tableqa_like",
    )


def _build_pauq(scale: float, seed: int) -> Dataset:
    return translate_dataset(_build_spider(scale, seed), "ru", "pauq_like")


def _build_spider_dk(scale: float, seed: int) -> Dataset:
    return build_bird_like(
        num_examples=_scaled(535, scale, floor=60),
        dirty_fraction=0.0,
        seed=seed + 11,
        dataset_name="spider_dk_like",
    )


def _build_knowsql(scale: float, seed: int) -> Dataset:
    return translate_dataset(
        build_bird_like(
            num_examples=_scaled(25888, scale, floor=60), seed=seed + 13,
            dataset_name="knowsql_base",
        ),
        "zh",
        "knowsql_like",
        feature="Knowledge Grounding",
    )


def _build_cspider(scale: float, seed: int) -> Dataset:
    return translate_dataset(_build_spider(scale, seed), "zh", "cspider_like")


def _build_vitext(scale: float, seed: int) -> Dataset:
    return translate_dataset(
        _build_spider(scale, seed), "vi", "vitext2sql_like"
    )


def _build_ptspider(scale: float, seed: int) -> Dataset:
    return translate_dataset(
        _build_spider(scale, seed), "pt", "portuguese_spider_like"
    )


def _build_squall(scale: float, seed: int) -> Dataset:
    return build_wikisql_like(
        num_examples=_scaled(11468, scale, floor=120),
        num_databases=max(25, int(1679 * scale)),
        seed=seed,
        dataset_name="squall_like",
    )


def _build_kaggledbqa(scale: float, seed: int) -> Dataset:
    return build_cross_domain(
        num_examples=_scaled(272, scale, floor=80),
        copies_per_domain=1,
        seed=seed,
        dataset_name="kaggledbqa_like",
    )


def _build_spider_ssp(scale: float, seed: int) -> Dataset:
    return build_spider_ssp_like(
        num_examples=_scaled(3282, scale, floor=150), seed=seed
    )


def _build_spider_cg(scale: float, seed: int) -> Dataset:
    return build_spider_cg_like(
        num_examples=_scaled(45599 // 10, scale, floor=150), seed=seed
    )


def _build_spider_syn(scale: float, seed: int) -> Dataset:
    return make_synonym_variant(
        _build_spider(scale, seed), seed, "spider_syn_like"
    )


def _build_spider_realistic(scale: float, seed: int) -> Dataset:
    return make_realistic_variant(
        _build_spider(scale, seed), seed, "spider_realistic_like"
    )


def _build_dr_spider(scale: float, seed: int) -> Dataset:
    return make_typo_variant(
        _build_spider(scale, seed), seed, "dr_spider_nlq_like"
    )


def _build_bird(scale: float, seed: int) -> Dataset:
    return build_bird_like(
        num_examples=_scaled(12751, scale, floor=60), seed=seed
    )


def _build_nvbench(scale: float, seed: int) -> Dataset:
    return build_nvbench_like(
        num_examples=_scaled(25750, scale, floor=200), seed=seed
    )


def _build_vis_single(scale: float, seed: int) -> Dataset:
    return build_single_domain_vis(
        "sales", _scaled(490, scale, floor=50), seed,
        dataset_name="kumar_like",
    )


def _build_gao(scale: float, seed: int) -> Dataset:
    return build_single_domain_vis(
        "movies", max(20, int(10 * scale * 20)), seed + 2,
        dataset_name="gao_like",
    )


def _build_srinivasan(scale: float, seed: int) -> Dataset:
    return build_single_domain_vis(
        "geography", _scaled(893, scale, floor=50), seed + 4,
        dataset_name="srinivasan_like",
    )


def _build_dial_nvbench(scale: float, seed: int) -> Dataset:
    return build_dial_vis_like(
        num_dialogues=_scaled(4495, scale, floor=40), seed=seed + 6,
        dataset_name="dial_nvbench_like",
    )


def _build_chartdialogs(scale: float, seed: int) -> Dataset:
    return build_dial_vis_like(
        num_dialogues=_scaled(3284, scale, floor=40), seed=seed,
        dataset_name="chartdialogs_like",
    )


def _build_cnvbench(scale: float, seed: int) -> Dataset:
    return translate_dataset(_build_nvbench(scale, seed), "zh", "cnvbench_like")


_BUILDERS: dict[str, Callable[[float, int], Dataset]] = {
    # Text-to-SQL, Table 1 order
    "atis_like": _build_atis,
    "geoquery_like": _build_geoquery,
    "restaurants_like": _build_restaurants,
    "academic_like": _build_academic,
    "scholar_like": _build_scholar,
    "imdb_like": _build_imdb,
    "yelp_like": _build_yelp,
    "advising_like": _build_advising,
    "mimicsql_like": _build_mimicsql,
    "sede_like": _build_sede,
    "wikisql_like": _build_wikisql,
    "squall_like": _build_squall,
    "kaggledbqa_like": _build_kaggledbqa,
    "spider_like": _build_spider,
    "sparc_like": _build_sparc,
    "cosql_like": _build_cosql,
    "chase_like": _build_chase,
    "spider_syn_like": _build_spider_syn,
    "spider_ssp_like": _build_spider_ssp,
    "spider_cg_like": _build_spider_cg,
    "spider_realistic_like": _build_spider_realistic,
    "dr_spider_nlq_like": _build_dr_spider,
    "cspider_like": _build_cspider,
    "dusql_like": _build_dusql,
    "tableqa_like": _build_tableqa,
    "vitext2sql_like": _build_vitext,
    "portuguese_spider_like": _build_ptspider,
    "pauq_like": _build_pauq,
    "spider_dk_like": _build_spider_dk,
    "knowsql_like": _build_knowsql,
    "bird_like": _build_bird,
    # Text-to-Vis
    "gao_like": _build_gao,
    "kumar_like": _build_vis_single,
    "srinivasan_like": _build_srinivasan,
    "nvbench_like": _build_nvbench,
    "chartdialogs_like": _build_chartdialogs,
    "dial_nvbench_like": _build_dial_nvbench,
    "cnvbench_like": _build_cnvbench,
}

#: The paper's reference statistics for each reproduced family, used by the
#: Table 1 benchmark to print paper-vs-ours rows.
PAPER_REFERENCE: dict[str, dict] = {
    "atis_like": {"paper": "ATIS", "queries": 5280, "dbs": 1, "lang": "English"},
    "geoquery_like": {"paper": "GeoQuery", "queries": 877, "dbs": 1,
                      "lang": "English"},
    "restaurants_like": {"paper": "Restaurants", "queries": 378, "dbs": 1,
                         "lang": "English"},
    "academic_like": {"paper": "Academic", "queries": 196, "dbs": 1,
                      "lang": "English"},
    "scholar_like": {"paper": "Scholar", "queries": 817, "dbs": 1,
                     "lang": "English"},
    "imdb_like": {"paper": "IMDB", "queries": 131, "dbs": 1,
                  "lang": "English"},
    "yelp_like": {"paper": "Yelp", "queries": 128, "dbs": 1,
                  "lang": "English"},
    "advising_like": {"paper": "Advising", "queries": 3898, "dbs": 1,
                      "lang": "English"},
    "sede_like": {"paper": "SEDE", "queries": 12023, "dbs": 1,
                  "lang": "English"},
    "mimicsql_like": {"paper": "MIMICSQL", "queries": 10000, "dbs": 1,
                      "lang": "English"},
    "wikisql_like": {"paper": "WikiSQL", "queries": 80654, "dbs": 26521,
                     "lang": "English"},
    "spider_like": {"paper": "Spider", "queries": 10181, "dbs": 200,
                    "lang": "English"},
    "sparc_like": {"paper": "SParC", "queries": 12726, "dbs": 200,
                   "lang": "English"},
    "cosql_like": {"paper": "CoSQL", "queries": 15598, "dbs": 200,
                   "lang": "English"},
    "chase_like": {"paper": "CHASE", "queries": 17940, "dbs": 280,
                   "lang": "Chinese"},
    "squall_like": {"paper": "Squall", "queries": 11468, "dbs": 1679,
                    "lang": "English"},
    "kaggledbqa_like": {"paper": "KaggleDBQA", "queries": 272, "dbs": 8,
                        "lang": "English"},
    "spider_syn_like": {"paper": "Spider-SYN", "queries": 7990, "dbs": 166,
                        "lang": "English"},
    "spider_ssp_like": {"paper": "Spider-SSP", "queries": 3282, "dbs": None,
                        "lang": "English"},
    "spider_cg_like": {"paper": "Spider-CG", "queries": 45599, "dbs": None,
                       "lang": "English"},
    "spider_realistic_like": {"paper": "Spider-realistic", "queries": 508,
                              "dbs": None, "lang": "English"},
    "dr_spider_nlq_like": {"paper": "Dr. Spider", "queries": None,
                           "dbs": 166, "lang": "English"},
    "cspider_like": {"paper": "CSpider", "queries": 10181, "dbs": 200,
                     "lang": "Chinese"},
    "dusql_like": {"paper": "DuSQL", "queries": 23797, "dbs": 200,
                   "lang": "Chinese"},
    "tableqa_like": {"paper": "TableQA", "queries": 64891, "dbs": 6029,
                     "lang": "Chinese"},
    "pauq_like": {"paper": "PAUQ", "queries": 9691, "dbs": 166,
                  "lang": "Russian"},
    "spider_dk_like": {"paper": "Spider-DK", "queries": 535, "dbs": 10,
                       "lang": "English"},
    "knowsql_like": {"paper": "knowSQL", "queries": 25888, "dbs": 200,
                     "lang": "Chinese"},
    "vitext2sql_like": {"paper": "ViText2SQL", "queries": 9691, "dbs": 166,
                        "lang": "Vietnamese"},
    "portuguese_spider_like": {"paper": "PortugueseSpider", "queries": 9691,
                               "dbs": 166, "lang": "Portuguese"},
    "bird_like": {"paper": "BIRD", "queries": 12751, "dbs": 95,
                  "lang": "English"},
    "gao_like": {"paper": "Gao et al., 2015", "queries": 10, "dbs": 3,
                 "lang": "English"},
    "kumar_like": {"paper": "Kumar et al., 2016", "queries": 490, "dbs": 1,
                   "lang": "English"},
    "srinivasan_like": {"paper": "Srinivasan et al., 2021", "queries": 893,
                        "dbs": 3, "lang": "English"},
    "nvbench_like": {"paper": "nvBench", "queries": 25750, "dbs": 153,
                     "lang": "English"},
    "chartdialogs_like": {"paper": "ChartDialogs", "queries": 3284,
                          "dbs": None, "lang": "English"},
    "dial_nvbench_like": {"paper": "Dial-NVBench", "queries": 4495,
                          "dbs": None, "lang": "English"},
    "cnvbench_like": {"paper": "CNvBench", "queries": 25750, "dbs": 153,
                      "lang": "Chinese"},
}


def dataset_names() -> list[str]:
    """All registered benchmark names, Table 1 order."""
    return list(_BUILDERS)


def build_dataset(name: str, scale: float = 0.01, seed: int = 0) -> Dataset:
    """Build the named benchmark at the given scale (default 1/100)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(_BUILDERS)}"
        ) from None
    return builder(scale, seed)
