"""Dataset persistence in the Spider interchange format.

The published benchmarks ship as JSON: one ``tables.json`` describing every
database schema and one JSON list of examples per split (``train.json``,
``dev.json``), with database contents alongside.  This module writes and
reads our datasets in that layout, so synthetic benchmarks built here can
be consumed by external Spider-format tooling and vice versa:

- ``tables.json`` — ``db_id``, ``table_names_original``,
  ``column_names_original`` (Spider's (table index, name) pairs),
  ``column_types``, ``primary_keys``, ``foreign_keys``;
- ``<split>.json`` — ``question``, ``query``, ``db_id``, plus our extra
  fields (``vql``, ``knowledge``, dialogue bookkeeping) which Spider
  tooling ignores;
- ``database/<db_id>/`` — CSV contents per table.
"""

from __future__ import annotations

import json
import pathlib

from repro.data.database import Database
from repro.data.schema import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.datasets.base import Dataset, Example, Split
from repro.errors import DatasetError


def save_dataset(dataset: Dataset, directory: str | pathlib.Path) -> None:
    """Write *dataset* in the Spider interchange layout under *directory*."""
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    tables = [
        schema_to_spider(db.schema) for db in dataset.databases.values()
    ]
    (root / "tables.json").write_text(json.dumps(tables, indent=1))

    for split_name, split in dataset.splits.items():
        payload = [example_to_json(e) for e in split.examples]
        (root / f"{split_name}.json").write_text(
            json.dumps(payload, indent=1)
        )

    meta = {
        "name": dataset.name,
        "task": dataset.task,
        "feature": dataset.feature,
        "language": dataset.language,
        "splits": sorted(dataset.splits),
    }
    (root / "meta.json").write_text(json.dumps(meta, indent=1))

    for db in dataset.databases.values():
        db.to_csv_dir(root / "database" / db.db_id)


def load_dataset(directory: str | pathlib.Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    root = pathlib.Path(directory)
    meta_path = root / "meta.json"
    if not meta_path.exists():
        raise DatasetError(f"no meta.json under {root}")
    meta = json.loads(meta_path.read_text())

    schemas = [
        spider_to_schema(entry)
        for entry in json.loads((root / "tables.json").read_text())
    ]
    databases = {
        schema.db_id: Database.from_csv_dir(
            schema, root / "database" / schema.db_id
        )
        for schema in schemas
    }

    splits = {}
    for split_name in meta["splits"]:
        payload = json.loads((root / f"{split_name}.json").read_text())
        splits[split_name] = Split(
            split_name, [json_to_example(item) for item in payload]
        )

    return Dataset(
        name=meta["name"],
        task=meta["task"],
        feature=meta["feature"],
        databases=databases,
        splits=splits,
        language=meta.get("language", "en"),
    )


# ----------------------------------------------------------------------
def schema_to_spider(schema: Schema) -> dict:
    """One ``tables.json`` entry in Spider's column-index convention."""
    table_names = [t.name for t in schema.tables]
    column_names: list[list] = [[-1, "*"]]
    column_types = ["text"]
    index_of: dict[tuple[str, str], int] = {}
    for t_index, table in enumerate(schema.tables):
        for column in table.columns:
            index_of[(table.name.lower(), column.name.lower())] = len(
                column_names
            )
            column_names.append([t_index, column.name])
            column_types.append(column.type.value)

    primary_keys = [
        index_of[(t.name.lower(), t.primary_key.lower())]
        for t in schema.tables
        if t.primary_key
    ]
    foreign_keys = [
        [
            index_of[(fk.table.lower(), fk.column.lower())],
            index_of[(fk.ref_table.lower(), fk.ref_column.lower())],
        ]
        for fk in schema.foreign_keys
    ]
    # synonyms are our extension fields; Spider tooling ignores them
    column_synonyms: list[list[str]] = [[]]
    for table in schema.tables:
        for column in table.columns:
            column_synonyms.append(list(column.synonyms))
    table_synonyms = [list(t.synonyms) for t in schema.tables]

    return {
        "db_id": schema.db_id,
        "domain": schema.domain,
        "table_names_original": table_names,
        "table_names": [n.replace("_", " ") for n in table_names],
        "column_names_original": column_names,
        "column_names": [
            [t, n.replace("_", " ")] for t, n in column_names
        ],
        "column_types": column_types,
        "primary_keys": primary_keys,
        "foreign_keys": foreign_keys,
        "column_synonyms": column_synonyms,
        "table_synonyms": table_synonyms,
    }


def spider_to_schema(entry: dict) -> Schema:
    """Rebuild a :class:`Schema` from a ``tables.json`` entry."""
    table_names = entry["table_names_original"]
    column_synonyms = entry.get(
        "column_synonyms", [[]] * len(entry["column_names_original"])
    )
    table_synonyms = entry.get("table_synonyms", [[]] * len(table_names))
    columns_per_table: list[list[Column]] = [[] for _ in table_names]
    flat: list[tuple[int, str]] = []
    for index, ((t_index, name), col_type) in enumerate(
        zip(entry["column_names_original"], entry["column_types"])
    ):
        flat.append((t_index, name))
        if t_index < 0:
            continue
        try:
            ctype = ColumnType(col_type)
        except ValueError:
            ctype = ColumnType.TEXT
        columns_per_table[t_index].append(
            Column(
                name=name,
                type=ctype,
                synonyms=tuple(column_synonyms[index]),
            )
        )

    primary_of: dict[int, str] = {}
    for pk_index in entry.get("primary_keys", ()):
        t_index, name = flat[pk_index]
        primary_of[t_index] = name

    tables = tuple(
        TableSchema(
            name=table_names[i],
            columns=tuple(columns_per_table[i]),
            primary_key=primary_of.get(i),
            synonyms=tuple(table_synonyms[i]),
        )
        for i in range(len(table_names))
    )
    fks = tuple(
        ForeignKey(
            table=table_names[flat[src][0]],
            column=flat[src][1],
            ref_table=table_names[flat[dst][0]],
            ref_column=flat[dst][1],
        )
        for src, dst in entry.get("foreign_keys", ())
    )
    return Schema(
        db_id=entry["db_id"],
        tables=tables,
        foreign_keys=fks,
        domain=entry.get("domain", "general"),
    )


def example_to_json(example: Example) -> dict:
    payload = {
        "question": example.question,
        "query": example.sql,
        "db_id": example.db_id,
        "hardness": example.hardness,
        "pattern": example.pattern,
        "language": example.language,
    }
    if example.vql is not None:
        payload["vql"] = example.vql
    if example.knowledge is not None:
        payload["evidence"] = example.knowledge  # BIRD's field name
    if example.dialogue_id is not None:
        payload["dialogue_id"] = example.dialogue_id
        payload["turn_index"] = example.turn_index
    return payload


def json_to_example(payload: dict) -> Example:
    return Example(
        question=payload["question"],
        db_id=payload["db_id"],
        sql=payload["query"],
        vql=payload.get("vql"),
        language=payload.get("language", "en"),
        hardness=payload.get("hardness", "easy"),
        pattern=payload.get("pattern", ""),
        knowledge=payload.get("evidence"),
        dialogue_id=payload.get("dialogue_id"),
        turn_index=payload.get("turn_index", 0),
    )
