"""Knowledge-grounded dataset builder (Spider-DK / knowSQL / BIRD lineage).

BIRD's distinguishing challenges, per the survey: questions whose terms
only resolve through *external knowledge*, and databases whose *values are
dirty/inconsistent*.  This builder reproduces both:

- each example uses a domain-specific alias term ("premium products",
  "senior patients") whose definition lives in an attached ``knowledge``
  string, not in the schema — parsers that ignore the evidence cannot
  recover the gold predicate;
- databases are generated with a non-zero dirty-value fraction, so value
  linking meets inconsistent casing/whitespace, BIRD's content challenge.
"""

from __future__ import annotations

import random

from repro.data.database import Database
from repro.data.domains import all_domains
from repro.data.generator import DatabaseGenerator, GeneratorConfig
from repro.datasets.base import Dataset, Example, Split
from repro.datasets.patterns import PatternContext
from repro.datasets.sql import clone_domain
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    Select,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.components import classify_hardness
from repro.sql.unparser import to_sql

#: Alias adjectives usable for "column > threshold" style definitions.
_HIGH_ADJECTIVES = ("premium", "major", "top-tier", "heavyweight", "flagship")
_LOW_ADJECTIVES = ("budget", "minor", "entry-level", "lightweight")


def _knowledge_example(
    ctx: PatternContext, db: Database, rng: random.Random
) -> Example | None:
    table = ctx.any_table()
    numeric = ctx.numeric_columns(table)
    if not numeric:
        return None
    column = rng.choice(numeric)
    value = ctx.sample_value(table, column)
    if value is None:
        return None
    if isinstance(value, float):
        value = round(value)
    high = rng.random() < 0.6
    adjective = rng.choice(_HIGH_ADJECTIVES if high else _LOW_ADJECTIVES)
    op = ">" if high else "<"

    realizer = ctx.realizer
    table_noun = table.mentions()[0]
    column_noun = column.mentions()[0]
    knowledge = (
        f"{adjective.capitalize()} {table_noun} are {table_noun} whose "
        f"{column_noun} is {'greater' if high else 'less'} than "
        f"{realizer.value_text(value)}."
    )

    condition = BinaryOp(
        op=op,
        left=ColumnRef(column=column.name.lower()),
        right=Literal(value),
    )
    if rng.random() < 0.5:
        proj_col = ctx.name_column(table)
        query = Select(
            items=(SelectItem(expr=ColumnRef(column=proj_col.name.lower())),),
            from_=TableRef(name=table.name.lower()),
            where=condition,
        )
        question = realizer.list_question(
            f"the {realizer.column_noun(proj_col)} of {adjective} {table_noun}"
        )
    else:
        query = Select(
            items=(SelectItem(expr=FuncCall(name="count", args=(Star(),))),),
            from_=TableRef(name=table.name.lower()),
            where=condition,
        )
        question = realizer.scalar_question(
            f"{realizer.choose(('the number of', 'how many'))} "
            f"{adjective} {table_noun}"
        )

    return Example(
        question=question,
        db_id=db.db_id,
        sql=to_sql(query),
        hardness=classify_hardness(query),
        pattern="knowledge_alias",
        knowledge=knowledge,
    )


def build_bird_like(
    num_examples: int = 300,
    dirty_fraction: float = 0.15,
    seed: int = 0,
    dataset_name: str = "bird_like",
) -> Dataset:
    """A BIRD-like knowledge-grounded benchmark over dirty databases."""
    rng = random.Random(seed)
    generator = DatabaseGenerator(
        seed=rng.randrange(1 << 30),
        config=GeneratorConfig(dirty_fraction=dirty_fraction),
    )
    databases: dict[str, Database] = {}
    contexts: dict[str, PatternContext] = {}
    for domain in all_domains():
        db_id = f"{domain.name}_kg"
        clone = clone_domain(domain, db_id)
        databases[db_id] = generator.populate(clone)
        contexts[db_id] = PatternContext(clone, databases[db_id], rng)

    db_ids = sorted(databases)
    examples: list[Example] = []
    attempts = 0
    while len(examples) < num_examples and attempts < num_examples * 20:
        attempts += 1
        db_id = db_ids[attempts % len(db_ids)]
        example = _knowledge_example(contexts[db_id], databases[db_id], rng)
        if example is not None:
            examples.append(example)

    train_len = int(len(examples) * 0.8)
    return Dataset(
        name=dataset_name,
        task="sql",
        feature="Knowledge Grounding",
        databases=databases,
        splits={
            "train": Split("train", examples[:train_len]),
            "dev": Split("dev", examples[train_len:]),
        },
    )
