"""Text-to-Vis dataset builders: nvBench-like and variants.

nvBench was synthesized from the Spider NL2SQL benchmark by pairing
chartable SQL queries with chart-type directives; we replicate that exact
construction: chartable pattern instances (group-aggregates, joins with
grouping, numeric pairs) are paired with a sampled chart type, the gold
program is a VQL string ``VISUALIZE <TYPE> <SQL>``, and the question adds a
chart request phrase.
"""

from __future__ import annotations

import random

from repro.data.database import Database
from repro.data.domains import all_domains
from repro.data.generator import DatabaseGenerator, GeneratorConfig
from repro.datasets.base import Dataset, Example, Split
from repro.datasets.patterns import (
    CHARTABLE_PATTERNS,
    PatternContext,
    PatternInstance,
    sample_instance,
)
from repro.datasets.sql import clone_domain
from repro.nlg.realizer import Realizer
from repro.vis.vql import VQLQuery, to_vql


def vis_question(
    instance: PatternInstance, chart_type: str, realizer: Realizer
) -> str:
    """Build a chart-request question from a chartable pattern instance."""
    base = instance.question.rstrip("?")
    # strip the original opener ("Show", "What is", ...) down to the subject
    subject = base
    for opener in (
        "Show ", "List ", "What are ", "What is ", "Give me ", "Return ",
        "Find ", "Display ", "Tell me ", "Compute ",
    ):
        if base.startswith(opener):
            subject = base[len(opener):]
            break
    chart_np = realizer.chart_np(chart_type)
    opener = realizer.choose(("Show", "Display", "Draw", "Give me", "Plot"))
    text = f"{opener} {chart_np} {subject}".strip()
    if not text.endswith("?"):
        text += "?"
    return text


def make_vis_example(
    instance: PatternInstance,
    db: Database,
    rng: random.Random,
    realizer: Realizer,
) -> Example:
    """Package a chartable instance as a Text-to-Vis example."""
    chart_type = instance.chart or "bar"
    if instance.pattern != "scatter_pair" and rng.random() < 0.3:
        # chart-type diversity beyond the pattern's suggestion
        chart_type = rng.choice(("bar", "pie", "line"))
    vql = VQLQuery(chart_type=chart_type, query=instance.query)
    return Example(
        question=vis_question(instance, chart_type, realizer),
        db_id=db.db_id,
        sql=instance.sql,
        vql=to_vql(vql),
        hardness=instance.hardness,
        pattern=instance.pattern,
    )


def build_nvbench_like(
    num_examples: int = 500,
    copies_per_domain: int = 1,
    rows_per_table: int = 24,
    seed: int = 0,
    dataset_name: str = "nvbench_like",
    dev_fraction: float = 0.25,
) -> Dataset:
    """An nvBench-like cross-domain Text-to-Vis benchmark."""
    rng = random.Random(seed)
    generator = DatabaseGenerator(
        seed=rng.randrange(1 << 30),
        config=GeneratorConfig(rows_per_table=rows_per_table),
    )

    databases: dict[str, Database] = {}
    contexts: dict[str, PatternContext] = {}
    for domain in all_domains():
        for copy in range(copies_per_domain):
            db_id = f"{domain.name}_vis_{copy}"
            clone = clone_domain(domain, db_id)
            databases[db_id] = generator.populate(clone)
            contexts[db_id] = PatternContext(clone, databases[db_id], rng)

    db_ids = sorted(databases)
    rng.shuffle(db_ids)
    dev_count = max(1, int(len(db_ids) * dev_fraction))
    dev_ids, train_ids = db_ids[:dev_count], db_ids[dev_count:]

    realizer = Realizer(rng)
    train: list[Example] = []
    dev: list[Example] = []
    train_quota = int(num_examples * 0.8)
    for index in range(num_examples):
        target, ids = (
            (train, train_ids) if index < train_quota else (dev, dev_ids)
        )
        db_id = ids[index % len(ids)]
        instance = sample_instance(contexts[db_id], CHARTABLE_PATTERNS)
        target.append(
            make_vis_example(instance, databases[db_id], rng, realizer)
        )

    return Dataset(
        name=dataset_name,
        task="vis",
        feature="Cross Domain",
        databases=databases,
        splits={"train": Split("train", train), "dev": Split("dev", dev)},
    )


def build_single_domain_vis(
    domain_name: str = "sales",
    num_examples: int = 120,
    seed: int = 0,
    dataset_name: str | None = None,
) -> Dataset:
    """A small single-domain Text-to-Vis benchmark (Gao/Kumar lineage)."""
    rng = random.Random(seed)
    domain = next(d for d in all_domains() if d.name == domain_name)
    generator = DatabaseGenerator(seed=rng.randrange(1 << 30))
    db = generator.populate(domain)
    ctx = PatternContext(domain, db, rng)
    realizer = Realizer(rng)
    examples = [
        make_vis_example(
            sample_instance(ctx, CHARTABLE_PATTERNS), db, rng, realizer
        )
        for _ in range(num_examples)
    ]
    train_len = int(len(examples) * 0.8)
    return Dataset(
        name=dataset_name or f"{domain_name}_vis_single",
        task="vis",
        feature="Single Domain",
        databases={db.db_id: db},
        splits={
            "train": Split("train", examples[:train_len]),
            "dev": Split("dev", examples[train_len:]),
        },
    )
