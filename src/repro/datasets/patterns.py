"""Query-pattern grammar: the generative heart of benchmark synthesis.

Each pattern builds one (SQL AST, English question) pair over a domain
database, sampling schema elements and database values so that gold queries
execute to non-trivial results.  Patterns cover the SQL phenomena the
survey's hardness taxonomy stratifies: projections, filters (comparison,
LIKE, BETWEEN), aggregates, GROUP BY / HAVING, ORDER BY / LIMIT,
superlatives, joins, nested subqueries, and set operations.

The ``meta`` slots on a :class:`PatternInstance` record which schema
elements filled which roles, so downstream builders (multi-turn edits, Vis
synthesis, knowledge grounding) can manipulate instances structurally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.database import Database
from repro.data.domains import Domain
from repro.data.schema import Column, ColumnType, Schema, TableSchema
from repro.data.values import Value
from repro.errors import DatasetError
from repro.nlg.realizer import Realizer
from repro.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InSubquery,
    Join,
    Like,
    Literal,
    OrderItem,
    Query,
    ScalarSubquery,
    Select,
    SelectItem,
    SetOperation,
    Star,
    TableRef,
)
from repro.sql.components import classify_hardness
from repro.sql.unparser import to_sql


@dataclass
class PatternInstance:
    """One synthesized example before dataset packaging."""

    query: Query
    question: str
    pattern: str
    table: str
    chart: str | None = None
    meta: dict = field(default_factory=dict)

    @property
    def sql(self) -> str:
        return to_sql(self.query)

    @property
    def hardness(self) -> str:
        return classify_hardness(self.query)


class PatternContext:
    """Sampling context shared by all patterns for one domain database."""

    def __init__(self, domain: Domain, db: Database, rng: random.Random) -> None:
        self.domain = domain
        self.db = db
        self.schema: Schema = domain.schema
        self.rng = rng
        self.realizer = Realizer(rng)

    # ------------------------------------------------------------------
    # schema sampling helpers
    # ------------------------------------------------------------------
    def any_table(self) -> TableSchema:
        return self.rng.choice(list(self.schema.tables))

    def numeric_columns(self, table: TableSchema) -> list[Column]:
        return [
            c
            for c in table.columns
            if c.type is ColumnType.NUMBER and not self._is_key(table, c)
        ]

    def text_columns(self, table: TableSchema) -> list[Column]:
        return [
            c
            for c in table.columns
            if c.type in (ColumnType.TEXT, ColumnType.DATE)
            and not self._is_key(table, c)
        ]

    def groupable_columns(self, table: TableSchema) -> list[Column]:
        """Text columns with low cardinality in the database contents."""
        out = []
        contents = self.db.table(table.name)
        for column in self.text_columns(table):
            values = {
                v for v in contents.column_values(column.name) if v is not None
            }
            if 2 <= len(values) <= max(2, len(contents) // 2):
                out.append(column)
        return out

    def name_column(self, table: TableSchema) -> Column:
        for column in table.columns:
            if column.name.lower() in ("name", "title"):
                return column
        texts = self.text_columns(table)
        if texts:
            return texts[0]
        return table.columns[0]

    def sample_value(self, table: TableSchema, column: Column) -> Value | None:
        values = [
            v
            for v in self.db.table(table.name).column_values(column.name)
            if v is not None
        ]
        if not values:
            return None
        return self.rng.choice(values)

    def fk_pairs(self) -> list[tuple[TableSchema, TableSchema, str, str]]:
        """(child, parent, child_col, parent_col) for every FK edge."""
        pairs = []
        for fk in self.schema.foreign_keys:
            pairs.append(
                (
                    self.schema.table(fk.table),
                    self.schema.table(fk.ref_table),
                    fk.column,
                    fk.ref_column,
                )
            )
        return pairs

    def _is_key(self, table: TableSchema, column: Column) -> bool:
        name = column.name.lower()
        if table.primary_key and name == table.primary_key.lower():
            return True
        if name.endswith("_id") or name == "id":
            return True
        return any(
            fk.table.lower() == table.name.lower()
            and fk.column.lower() == name
            for fk in self.schema.foreign_keys
        )


# ----------------------------------------------------------------------
# AST building helpers
# ----------------------------------------------------------------------
def _ref(column: Column, table: TableSchema | None = None) -> ColumnRef:
    if table is None:
        return ColumnRef(column=column.name.lower())
    return ColumnRef(column=column.name.lower(), table=table.name.lower())


def _table(table: TableSchema) -> TableRef:
    return TableRef(name=table.name.lower())


def _cond(column: Column, op: str, value: Value,
          table: TableSchema | None = None) -> BinaryOp:
    return BinaryOp(op=op, left=_ref(column, table), right=Literal(value))


def _round_value(value: Value, rng: random.Random) -> Value:
    """Round a sampled numeric threshold so questions read naturally."""
    if isinstance(value, float):
        return round(value)
    return value


_COMPARE_OPS = ("=", ">", "<", ">=", "<=")
_AGGS = ("avg", "sum", "min", "max")


# ----------------------------------------------------------------------
# pattern functions (each returns None when preconditions fail)
# ----------------------------------------------------------------------
def select_columns(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    candidates = ctx.text_columns(table) + ctx.numeric_columns(table)
    if not candidates:
        return None
    count = min(len(candidates), ctx.rng.choice((1, 1, 2)))
    columns = ctx.rng.sample(candidates, count)
    query = Select(
        items=tuple(SelectItem(expr=_ref(c)) for c in columns),
        from_=_table(table),
    )
    realizer = ctx.realizer
    noun = realizer.projection_np(
        [realizer.column_noun(c) for c in columns], realizer.table_noun(table)
    )
    question = realizer.list_question(f"{noun} for all of them")
    question = realizer.list_question(noun)
    return PatternInstance(
        query=query,
        question=question,
        pattern="select_columns",
        table=table.name,
        meta={"proj": [c.name for c in columns]},
    )


def filter_list(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    projections = ctx.text_columns(table) or list(table.columns)
    proj = ctx.name_column(table)
    numeric = ctx.numeric_columns(table)
    text = ctx.groupable_columns(table)
    realizer = ctx.realizer

    if numeric and (not text or ctx.rng.random() < 0.5):
        column = ctx.rng.choice(numeric)
        value = ctx.sample_value(table, column)
        if value is None:
            return None
        value = _round_value(value, ctx.rng)
        op = ctx.rng.choice(_COMPARE_OPS[1:])  # numeric: inequality reads best
    elif text:
        column = ctx.rng.choice(text)
        value = ctx.sample_value(table, column)
        if value is None:
            return None
        op = "=" if ctx.rng.random() < 0.8 else "<>"
    else:
        return None

    query = Select(
        items=(SelectItem(expr=_ref(proj)),),
        from_=_table(table),
        where=_cond(column, op, value),
    )
    noun = realizer.projection_np(
        [realizer.column_noun(proj)], realizer.table_noun(table)
    )
    condition = realizer.condition(realizer.column_noun(column), op, value)
    question = realizer.list_question(noun, [f"whose {condition}"])
    return PatternInstance(
        query=query,
        question=question,
        pattern="filter_list",
        table=table.name,
        meta={
            "proj": [proj.name],
            "where_col": column.name,
            "where_op": op,
            "where_val": value,
        },
    )


def filter_like(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    proj = ctx.name_column(table)
    texts = [c for c in ctx.text_columns(table) if c.type is ColumnType.TEXT]
    if not texts:
        return None
    column = ctx.rng.choice(texts)
    value = ctx.sample_value(table, column)
    if not isinstance(value, str) or len(value) < 3:
        return None
    start = ctx.rng.randrange(0, max(1, len(value) - 3))
    substring = value[start : start + 3].strip()
    if len(substring) < 2:
        return None
    query = Select(
        items=(SelectItem(expr=_ref(proj)),),
        from_=_table(table),
        where=Like(expr=_ref(column), pattern=Literal(f"%{substring}%")),
    )
    realizer = ctx.realizer
    noun = realizer.projection_np(
        [realizer.column_noun(proj)], realizer.table_noun(table)
    )
    condition = realizer.like_condition(realizer.column_noun(column), substring)
    question = realizer.list_question(noun, [f"whose {condition}"])
    return PatternInstance(
        query=query,
        question=question,
        pattern="filter_like",
        table=table.name,
        meta={"where_col": column.name, "like": substring},
    )


def filter_between(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    proj = ctx.name_column(table)
    numeric = ctx.numeric_columns(table)
    if not numeric:
        return None
    column = ctx.rng.choice(numeric)
    first = ctx.sample_value(table, column)
    second = ctx.sample_value(table, column)
    if first is None or second is None or first == second:
        return None
    low, high = sorted(
        (_round_value(first, ctx.rng), _round_value(second, ctx.rng))
    )
    if low == high:
        return None
    query = Select(
        items=(SelectItem(expr=_ref(proj)),),
        from_=_table(table),
        where=Between(expr=_ref(column), low=Literal(low), high=Literal(high)),
    )
    realizer = ctx.realizer
    noun = realizer.projection_np(
        [realizer.column_noun(proj)], realizer.table_noun(table)
    )
    condition = realizer.between_condition(
        realizer.column_noun(column), low, high
    )
    question = realizer.list_question(noun, [f"whose {condition}"])
    return PatternInstance(
        query=query,
        question=question,
        pattern="filter_between",
        table=table.name,
        meta={"where_col": column.name, "low": low, "high": high},
    )


def agg_scalar(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    numeric = ctx.numeric_columns(table)
    if not numeric:
        return None
    column = ctx.rng.choice(numeric)
    func = ctx.rng.choice(_AGGS)
    where = None
    where_meta: dict = {}
    realizer = ctx.realizer
    suffixes: list[str] = []
    if ctx.rng.random() < 0.45:
        groupables = ctx.groupable_columns(table)
        if groupables:
            wcol = ctx.rng.choice(groupables)
            value = ctx.sample_value(table, wcol)
            if value is not None:
                where = _cond(wcol, "=", value)
                condition = realizer.condition(
                    realizer.column_noun(wcol), "=", value
                )
                suffixes.append(f"whose {condition}")
                where_meta = {"where_col": wcol.name, "where_op": "=",
                              "where_val": value}
    query = Select(
        items=(
            SelectItem(
                expr=FuncCall(name=func, args=(_ref(column),))
            ),
        ),
        from_=_table(table),
        where=where,
    )
    noun = realizer.agg_np(
        func, realizer.column_noun(column), realizer.table_noun(table)
    )
    question = realizer.scalar_question(noun, suffixes)
    return PatternInstance(
        query=query,
        question=question,
        pattern="agg_scalar",
        table=table.name,
        meta={"agg": func, "agg_col": column.name, **where_meta},
    )


def count_filter(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    realizer = ctx.realizer
    where = None
    suffixes: list[str] = []
    meta: dict = {"agg": "count"}
    groupables = ctx.groupable_columns(table)
    numeric = ctx.numeric_columns(table)
    if groupables and (not numeric or ctx.rng.random() < 0.5):
        column = ctx.rng.choice(groupables)
        value = ctx.sample_value(table, column)
        if value is None:
            return None
        where = _cond(column, "=", value)
        suffixes.append(
            f"whose {realizer.condition(realizer.column_noun(column), '=', value)}"
        )
        meta.update(where_col=column.name, where_op="=", where_val=value)
    elif numeric:
        column = ctx.rng.choice(numeric)
        value = ctx.sample_value(table, column)
        if value is None:
            return None
        value = _round_value(value, ctx.rng)
        op = ctx.rng.choice((">", "<"))
        where = _cond(column, op, value)
        suffixes.append(
            f"whose {realizer.condition(realizer.column_noun(column), op, value)}"
        )
        meta.update(where_col=column.name, where_op=op, where_val=value)
    query = Select(
        items=(SelectItem(expr=FuncCall(name="count", args=(Star(),))),),
        from_=_table(table),
        where=where,
    )
    noun = realizer.agg_np("count", "", realizer.table_noun(table))
    question = realizer.scalar_question(noun, suffixes)
    return PatternInstance(
        query=query,
        question=question,
        pattern="count_filter",
        table=table.name,
        meta=meta,
    )


def group_agg(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    groupables = ctx.groupable_columns(table)
    if not groupables:
        return None
    group = ctx.rng.choice(groupables)
    numeric = ctx.numeric_columns(table)
    realizer = ctx.realizer
    if numeric and ctx.rng.random() < 0.6:
        column = ctx.rng.choice(numeric)
        func = ctx.rng.choice(_AGGS)
        agg_expr = FuncCall(name=func, args=(_ref(column),))
        noun = realizer.agg_np(
            func, realizer.column_noun(column), realizer.table_noun(table)
        )
        meta = {"agg": func, "agg_col": column.name, "group_col": group.name}
    else:
        agg_expr = FuncCall(name="count", args=(Star(),))
        noun = realizer.agg_np("count", "", realizer.table_noun(table))
        meta = {"agg": "count", "agg_col": None, "group_col": group.name}
    query = Select(
        items=(SelectItem(expr=_ref(group)), SelectItem(expr=agg_expr)),
        from_=_table(table),
        group_by=(_ref(group),),
    )
    question = realizer.scalar_question(
        noun, [realizer.group_suffix(realizer.column_noun(group))]
    )
    return PatternInstance(
        query=query,
        question=question,
        pattern="group_agg",
        table=table.name,
        chart=ctx.rng.choice(("bar", "pie", "line")),
        meta=meta,
    )


def group_having(ctx: PatternContext) -> PatternInstance | None:
    base = group_agg(ctx)
    if base is None or not isinstance(base.query, Select):
        return None
    threshold = ctx.rng.randint(2, 5)
    having = BinaryOp(
        op=">=",
        left=FuncCall(name="count", args=(Star(),)),
        right=Literal(threshold),
    )
    query = Select(
        items=base.query.items,
        from_=base.query.from_,
        group_by=base.query.group_by,
        having=having,
    )
    question = base.question.rstrip("?") + (
        f", considering only groups with at least {threshold} entries?"
    )
    return PatternInstance(
        query=query,
        question=question,
        pattern="group_having",
        table=base.table,
        chart=base.chart,
        meta={**base.meta, "having_min": threshold},
    )


def order_limit(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    proj = ctx.name_column(table)
    numeric = ctx.numeric_columns(table)
    if not numeric:
        return None
    column = ctx.rng.choice(numeric)
    descending = ctx.rng.random() < 0.7
    limit = ctx.rng.choice((3, 5, 10))
    realizer = ctx.realizer
    query = Select(
        items=(SelectItem(expr=_ref(proj)), SelectItem(expr=_ref(column))),
        from_=_table(table),
        order_by=(OrderItem(expr=_ref(column), descending=descending),),
        limit=limit,
    )
    noun = realizer.projection_np(
        [realizer.column_noun(proj), realizer.column_noun(column)],
        realizer.table_noun(table),
    )
    direction = "top" if descending else "bottom"
    question = realizer.list_question(
        f"the {direction} {limit} {realizer.table_noun(table)} "
        f"showing {noun}",
        [realizer.order_suffix(realizer.column_noun(column), descending)],
    )
    return PatternInstance(
        query=query,
        question=question,
        pattern="order_limit",
        table=table.name,
        meta={
            "proj": [proj.name, column.name],
            "order_col": column.name,
            "desc": descending,
            "limit": limit,
        },
    )


def superlative(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    proj = ctx.name_column(table)
    numeric = ctx.numeric_columns(table)
    if not numeric:
        return None
    column = ctx.rng.choice(numeric)
    descending = ctx.rng.random() < 0.6
    realizer = ctx.realizer
    query = Select(
        items=(SelectItem(expr=_ref(proj)),),
        from_=_table(table),
        order_by=(OrderItem(expr=_ref(column), descending=descending),),
        limit=1,
    )
    noun = realizer.projection_np(
        [realizer.column_noun(proj)], realizer.table_noun(table)
    )
    question = realizer.list_question(
        noun, [realizer.superlative(realizer.column_noun(column), descending)]
    )
    return PatternInstance(
        query=query,
        question=question,
        pattern="superlative",
        table=table.name,
        meta={"order_col": column.name, "desc": descending, "limit": 1},
    )


def join_filter(ctx: PatternContext) -> PatternInstance | None:
    pairs = ctx.fk_pairs()
    if not pairs:
        return None
    child, parent, child_col, parent_col = ctx.rng.choice(pairs)
    proj = ctx.name_column(child)
    # condition on the parent side
    parent_conds = ctx.groupable_columns(parent) or ctx.text_columns(parent)
    if not parent_conds:
        return None
    column = ctx.rng.choice(parent_conds)
    value = ctx.sample_value(parent, column)
    if value is None:
        return None
    realizer = ctx.realizer
    join = Join(
        left=_table(child),
        right=_table(parent),
        kind="inner",
        condition=BinaryOp(
            op="=",
            left=ColumnRef(column=child_col.lower(), table=child.name.lower()),
            right=ColumnRef(
                column=parent_col.lower(), table=parent.name.lower()
            ),
        ),
    )
    query = Select(
        items=(SelectItem(expr=_ref(proj, child)),),
        from_=join,
        where=_cond(column, "=", value, parent),
    )
    noun = realizer.projection_np(
        [realizer.column_noun(proj)], realizer.table_noun(child)
    )
    condition = realizer.condition(realizer.column_noun(column), "=", value)
    question = realizer.list_question(
        noun,
        [f"whose {realizer.table_noun(parent)} {condition}"],
    )
    return PatternInstance(
        query=query,
        question=question,
        pattern="join_filter",
        table=child.name,
        meta={
            "join_parent": parent.name,
            "where_col": column.name,
            "where_val": value,
        },
    )


def join_group(ctx: PatternContext) -> PatternInstance | None:
    pairs = ctx.fk_pairs()
    if not pairs:
        return None
    child, parent, child_col, parent_col = ctx.rng.choice(pairs)
    group_candidates = (
        ctx.groupable_columns(parent) or [ctx.name_column(parent)]
    )
    group = ctx.rng.choice(group_candidates)
    realizer = ctx.realizer
    join = Join(
        left=_table(child),
        right=_table(parent),
        kind="inner",
        condition=BinaryOp(
            op="=",
            left=ColumnRef(column=child_col.lower(), table=child.name.lower()),
            right=ColumnRef(
                column=parent_col.lower(), table=parent.name.lower()
            ),
        ),
    )
    query = Select(
        items=(
            SelectItem(expr=_ref(group, parent)),
            SelectItem(expr=FuncCall(name="count", args=(Star(),))),
        ),
        from_=join,
        group_by=(_ref(group, parent),),
    )
    noun = realizer.agg_np("count", "", realizer.table_noun(child))
    question = realizer.scalar_question(
        noun,
        [
            realizer.group_suffix(
                f"{realizer.table_noun(parent)} {realizer.column_noun(group)}"
            )
        ],
    )
    return PatternInstance(
        query=query,
        question=question,
        pattern="join_group",
        table=child.name,
        chart=ctx.rng.choice(("bar", "pie")),
        meta={"join_parent": parent.name, "group_col": group.name},
    )


def nested_in(ctx: PatternContext) -> PatternInstance | None:
    pairs = ctx.fk_pairs()
    if not pairs:
        return None
    child, parent, child_col, parent_col = ctx.rng.choice(pairs)
    proj = ctx.name_column(parent)
    # inner condition on the child side
    inner_numeric = ctx.numeric_columns(child)
    if not inner_numeric:
        return None
    column = ctx.rng.choice(inner_numeric)
    value = ctx.sample_value(child, column)
    if value is None:
        return None
    value = _round_value(value, ctx.rng)
    op = ctx.rng.choice((">", "<"))
    realizer = ctx.realizer
    inner = Select(
        items=(SelectItem(expr=ColumnRef(column=child_col.lower())),),
        from_=_table(child),
        where=_cond(column, op, value),
    )
    query = Select(
        items=(SelectItem(expr=_ref(proj)),),
        from_=_table(parent),
        where=InSubquery(
            expr=ColumnRef(column=parent_col.lower()), query=inner
        ),
    )
    noun = realizer.projection_np(
        [realizer.column_noun(proj)], realizer.table_noun(parent)
    )
    condition = realizer.condition(realizer.column_noun(column), op, value)
    question = realizer.list_question(
        noun,
        [f"that have {realizer.table_noun(child)} whose {condition}"],
    )
    return PatternInstance(
        query=query,
        question=question,
        pattern="nested_in",
        table=parent.name,
        meta={"inner_table": child.name, "where_col": column.name},
    )


def nested_compare_avg(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    proj = ctx.name_column(table)
    numeric = ctx.numeric_columns(table)
    if not numeric:
        return None
    column = ctx.rng.choice(numeric)
    op = ctx.rng.choice((">", "<"))
    realizer = ctx.realizer
    inner = Select(
        items=(SelectItem(expr=FuncCall(name="avg", args=(_ref(column),))),),
        from_=_table(table),
    )
    query = Select(
        items=(SelectItem(expr=_ref(proj)),),
        from_=_table(table),
        where=BinaryOp(
            op=op, left=_ref(column), right=ScalarSubquery(query=inner)
        ),
    )
    noun = realizer.projection_np(
        [realizer.column_noun(proj)], realizer.table_noun(table)
    )
    direction = "above" if op == ">" else "below"
    question = realizer.list_question(
        noun,
        [f"whose {realizer.column_noun(column)} is {direction} the average"],
    )
    return PatternInstance(
        query=query,
        question=question,
        pattern="nested_compare_avg",
        table=table.name,
        meta={"where_col": column.name, "op": op},
    )


def set_operation(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    proj = ctx.name_column(table)
    groupables = ctx.groupable_columns(table)
    if len(groupables) == 0:
        return None
    column = ctx.rng.choice(groupables)
    first = ctx.sample_value(table, column)
    second = ctx.sample_value(table, column)
    if first is None or second is None or first == second:
        return None
    op = ctx.rng.choice(("union", "intersect", "except"))
    realizer = ctx.realizer

    def _branch(value: Value) -> Select:
        return Select(
            items=(SelectItem(expr=_ref(proj)),),
            from_=_table(table),
            where=_cond(column, "=", value),
        )

    if op == "intersect":
        # same projection, two different columns would be needed for a
        # non-empty intersect; reuse one condition column with numeric pair
        numeric = ctx.numeric_columns(table)
        if not numeric:
            return None
        ncol = ctx.rng.choice(numeric)
        nval = ctx.sample_value(table, ncol)
        if nval is None:
            return None
        nval = _round_value(nval, ctx.rng)
        left = _branch(first)
        right = Select(
            items=(SelectItem(expr=_ref(proj)),),
            from_=_table(table),
            where=_cond(ncol, ">", nval),
        )
        cond_b = realizer.condition(realizer.column_noun(ncol), ">", nval)
    else:
        left = _branch(first)
        right = _branch(second)
        cond_b = realizer.condition(realizer.column_noun(column), "=", second)

    query = SetOperation(op=op, left=left, right=right)
    noun = realizer.projection_np(
        [realizer.column_noun(proj)], realizer.table_noun(table)
    )
    cond_a = realizer.condition(realizer.column_noun(column), "=", first)
    connective = realizer.set_op_connective(op)
    question = realizer.list_question(
        noun, [f"whose {cond_a} {connective} {cond_b}"]
    )
    return PatternInstance(
        query=query,
        question=question,
        pattern=f"set_{op}",
        table=table.name,
        meta={"set_op": op, "where_col": column.name},
    )


def scatter_pair(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    numeric = ctx.numeric_columns(table)
    if len(numeric) < 2:
        return None
    x_col, y_col = ctx.rng.sample(numeric, 2)
    query = Select(
        items=(SelectItem(expr=_ref(x_col)), SelectItem(expr=_ref(y_col))),
        from_=_table(table),
    )
    realizer = ctx.realizer
    noun = realizer.projection_np(
        [realizer.column_noun(x_col), realizer.column_noun(y_col)],
        realizer.table_noun(table),
    )
    question = realizer.list_question(noun)
    return PatternInstance(
        query=query,
        question=question,
        pattern="scatter_pair",
        table=table.name,
        chart="scatter",
        meta={"x": x_col.name, "y": y_col.name},
    )


def distinct_values(ctx: PatternContext) -> PatternInstance | None:
    table = ctx.any_table()
    groupables = ctx.groupable_columns(table)
    if not groupables:
        return None
    column = ctx.rng.choice(groupables)
    query = Select(
        items=(SelectItem(expr=_ref(column)),),
        from_=_table(table),
        distinct=True,
    )
    realizer = ctx.realizer
    question = realizer.list_question(
        f"the distinct {realizer.column_noun(column)} values of "
        f"{realizer.table_noun(table)}"
    )
    return PatternInstance(
        query=query,
        question=question,
        pattern="distinct_values",
        table=table.name,
        meta={"proj": [column.name], "distinct": True},
    )


#: All patterns with sampling weights.  Simple patterns are more frequent,
#: matching the hardness mix of the published benchmarks (Spider dev is
#: roughly 25/40/20/15 across easy/medium/hard/extra).
ALL_PATTERNS: tuple[tuple, ...] = (
    (select_columns, 3),
    (filter_list, 5),
    (filter_like, 1),
    (filter_between, 1),
    (agg_scalar, 4),
    (count_filter, 4),
    (group_agg, 3),
    (group_having, 1),
    (order_limit, 2),
    (superlative, 2),
    (join_filter, 3),
    (join_group, 2),
    (nested_in, 1),
    (nested_compare_avg, 1),
    (set_operation, 1),
    (scatter_pair, 1),
    (distinct_values, 1),
)

#: The WikiSQL-style restriction: single table, no join/group/nesting.
SIMPLE_PATTERNS: tuple[tuple, ...] = (
    (select_columns, 3),
    (filter_list, 6),
    (filter_like, 1),
    (filter_between, 1),
    (agg_scalar, 4),
    (count_filter, 4),
)

#: Patterns that yield chartable results, for Text-to-Vis synthesis.
CHARTABLE_PATTERNS: tuple[tuple, ...] = (
    (group_agg, 5),
    (group_having, 1),
    (join_group, 2),
    (scatter_pair, 2),
)


def sample_instance(
    ctx: PatternContext,
    patterns: tuple[tuple, ...] = ALL_PATTERNS,
    max_attempts: int = 50,
) -> PatternInstance:
    """Sample one pattern instance, retrying on precondition failures."""
    functions = [f for f, w in patterns for _ in range(w)]
    for _ in range(max_attempts):
        instance = ctx.rng.choice(functions)(ctx)
        if instance is not None:
            return instance
    raise DatasetError(
        f"could not instantiate any pattern for domain "
        f"{ctx.domain.name!r} after {max_attempts} attempts"
    )
