"""Core dataset types: examples, dialogues, splits, datasets, statistics.

The field layout mirrors the published benchmarks: every example carries a
``db_id`` naming its database (Spider convention), gold SQL text, optional
gold VQL text (Text-to-Vis examples), an optional external-knowledge string
(BIRD convention), a language tag, and — for multi-turn data — dialogue and
turn identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.database import Database
from repro.errors import DatasetError


@dataclass
class Example:
    """One (question, gold program) pair."""

    question: str
    db_id: str
    sql: str
    vql: str | None = None
    language: str = "en"
    hardness: str = "easy"
    pattern: str = ""
    knowledge: str | None = None
    dialogue_id: str | None = None
    turn_index: int = 0

    @property
    def is_vis(self) -> bool:
        return self.vql is not None


@dataclass
class Dialogue:
    """An ordered multi-turn interaction over one database."""

    dialogue_id: str
    db_id: str
    turns: list[Example]

    def __post_init__(self) -> None:
        for index, turn in enumerate(self.turns):
            if turn.turn_index != index:
                raise DatasetError(
                    f"dialogue {self.dialogue_id!r} turn order broken at "
                    f"{index}"
                )


@dataclass
class Split:
    """A named split (train/dev/test) of examples."""

    name: str
    examples: list[Example] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)

    def by_hardness(self) -> dict[str, list[Example]]:
        buckets: dict[str, list[Example]] = {}
        for example in self.examples:
            buckets.setdefault(example.hardness, []).append(example)
        return buckets


@dataclass
class Dataset:
    """A complete benchmark: databases plus splits plus metadata.

    ``feature`` tags the Table 1 category ("Single Domain", "Cross Domain",
    "Multi-turn", "Multilingual", "Robustness", "Knowledge Grounding") and
    ``task`` is ``"sql"`` or ``"vis"``.
    """

    name: str
    task: str
    feature: str
    databases: dict[str, Database]
    splits: dict[str, Split]
    language: str = "en"
    dialogues: list[Dialogue] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.task not in ("sql", "vis"):
            raise DatasetError(f"unknown task {self.task!r}")
        for split in self.splits.values():
            for example in split.examples:
                if example.db_id not in self.databases:
                    raise DatasetError(
                        f"example references unknown database "
                        f"{example.db_id!r} in dataset {self.name!r}"
                    )

    @property
    def examples(self) -> list[Example]:
        """All examples across splits, train first."""
        ordered = sorted(
            self.splits, key=lambda s: {"train": 0, "dev": 1, "test": 2}.get(s, 3)
        )
        return [e for name in ordered for e in self.splits[name].examples]

    def split(self, name: str) -> Split:
        try:
            return self.splits[name]
        except KeyError:
            raise DatasetError(
                f"dataset {self.name!r} has no split {name!r}"
            ) from None

    def database(self, db_id: str) -> Database:
        try:
            return self.databases[db_id]
        except KeyError:
            raise DatasetError(
                f"dataset {self.name!r} has no database {db_id!r}"
            ) from None

    def statistics(self) -> "DatasetStatistics":
        examples = self.examples
        domains = {db.schema.domain for db in self.databases.values()}
        table_counts = [
            len(db.schema.tables) for db in self.databases.values()
        ]
        return DatasetStatistics(
            name=self.name,
            task=self.task,
            feature=self.feature,
            language=self.language,
            num_queries=len(examples),
            num_databases=len(self.databases),
            num_domains=len(domains),
            tables_per_db=(
                round(sum(table_counts) / len(table_counts), 1)
                if table_counts
                else 0.0
            ),
            num_dialogues=len(self.dialogues),
        )


@dataclass(frozen=True)
class DatasetStatistics:
    """The Table 1 row for one dataset."""

    name: str
    task: str
    feature: str
    language: str
    num_queries: int
    num_databases: int
    num_domains: int
    tables_per_db: float
    num_dialogues: int = 0

    def as_row(self) -> tuple:
        return (
            self.name,
            self.num_queries,
            self.num_databases,
            self.num_domains,
            self.tables_per_db,
            self.language,
            self.feature,
        )
