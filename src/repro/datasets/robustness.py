"""Robustness dataset variants (Spider-SYN / Spider-realistic / Dr.Spider).

Each variant perturbs the *questions* of a source dataset while keeping
gold programs fixed, so any accuracy drop isolates the robustness
dimension being probed:

- :func:`make_synonym_variant` — schema mentions replaced with synonyms
  (stresses schema linking; Spider-SYN);
- :func:`make_realistic_variant` — explicit column mentions removed
  (stresses inference from context; Spider-realistic);
- :func:`make_typo_variant` — surface noise on function words (one of
  Dr.Spider's NLQ perturbation dimensions).

:func:`make_dr_spider_suite` bundles all dimensions, mirroring Dr.Spider's
multi-dimensional diagnostic design.
"""

from __future__ import annotations

import random
from dataclasses import replace as dc_replace
from typing import Callable

from repro.data.schema import Schema
from repro.datasets.base import Dataset, Example, Split
from repro.nlg.perturb import (
    drop_column_mentions,
    substitute_synonyms,
    typo_perturb,
)


def _perturb_dataset(
    dataset: Dataset,
    name: str,
    perturb: Callable[[Example, Schema, random.Random], str],
    seed: int,
    splits: tuple[str, ...] = ("dev",),
) -> Dataset:
    rng = random.Random(seed)
    new_splits: dict[str, Split] = {}
    for split_name, split in dataset.splits.items():
        if split_name not in splits:
            new_splits[split_name] = split
            continue
        examples = []
        for example in split.examples:
            schema = dataset.database(example.db_id).schema
            examples.append(
                dc_replace(example, question=perturb(example, schema, rng))
            )
        new_splits[split_name] = Split(split_name, examples)
    return Dataset(
        name=name,
        task=dataset.task,
        feature="Robustness",
        databases=dataset.databases,
        splits=new_splits,
        language=dataset.language,
        dialogues=dataset.dialogues,
    )


def make_synonym_variant(
    dataset: Dataset, seed: int = 0, name: str | None = None
) -> Dataset:
    """Spider-SYN-style variant: schema mentions replaced by synonyms."""
    return _perturb_dataset(
        dataset,
        name or f"{dataset.name}_syn",
        lambda e, s, r: substitute_synonyms(e.question, s, r),
        seed,
    )


def make_realistic_variant(
    dataset: Dataset, seed: int = 0, name: str | None = None
) -> Dataset:
    """Spider-realistic-style variant: explicit column mentions removed."""
    return _perturb_dataset(
        dataset,
        name or f"{dataset.name}_realistic",
        lambda e, s, r: drop_column_mentions(e.question, s),
        seed,
    )


def make_typo_variant(
    dataset: Dataset, seed: int = 0, name: str | None = None
) -> Dataset:
    """Dr.Spider-style NLQ-noise variant: typos on function words."""
    return _perturb_dataset(
        dataset,
        name or f"{dataset.name}_typo",
        lambda e, s, r: typo_perturb(e.question, r),
        seed,
    )


def make_dr_spider_suite(
    dataset: Dataset, seed: int = 0
) -> dict[str, Dataset]:
    """All robustness dimensions of one source dataset, keyed by dimension."""
    return {
        "synonym": make_synonym_variant(dataset, seed),
        "realistic": make_realistic_variant(dataset, seed + 1),
        "typo": make_typo_variant(dataset, seed + 2),
    }
