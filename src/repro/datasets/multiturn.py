"""Multi-turn (conversational) dataset builders: SParC/CoSQL/Dial-NVBench.

Conversational benchmarks chain questions whose meaning depends on the
dialogue context.  Following SParC's construction, each dialogue starts
from a base query and every further turn *edits* the previous gold query —
adding a condition, switching the projection to a count, adding an
ordering, or (for Vis dialogues, following ChartDialogs/Dial-NVBench)
changing the chart type.  Every turn carries the full gold program, as the
published datasets do.
"""

from __future__ import annotations

import random
from dataclasses import replace as dc_replace

from repro.data.database import Database
from repro.data.domains import all_domains
from repro.data.generator import DatabaseGenerator
from repro.datasets.base import Dataset, Dialogue, Example, Split
from repro.datasets.patterns import (
    CHARTABLE_PATTERNS,
    PatternContext,
    filter_list,
    group_agg,
    select_columns,
)
from repro.datasets.sql import clone_domain
from repro.datasets.vis import make_vis_example
from repro.nlg.realizer import Realizer
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
)
from repro.sql.components import classify_hardness
from repro.sql.unparser import to_sql
from repro.vis.vql import parse_vql, to_vql

_BASE_PATTERNS = ((select_columns, 1), (filter_list, 2), (group_agg, 1))


def _edit_add_condition(
    select: Select, ctx: PatternContext, table_name: str
) -> tuple[Select, str] | None:
    """AND a new comparison onto the WHERE clause."""
    table = ctx.schema.table(table_name)
    numeric = ctx.numeric_columns(table)
    if not numeric:
        return None
    column = ctx.rng.choice(numeric)
    value = ctx.sample_value(table, column)
    if value is None:
        return None
    if isinstance(value, float):
        value = round(value)
    op = ctx.rng.choice((">", "<"))
    condition = BinaryOp(
        op=op, left=ColumnRef(column=column.name.lower()), right=Literal(value)
    )
    where = (
        condition
        if select.where is None
        else BinaryOp(op="and", left=select.where, right=condition)
    )
    realizer = ctx.realizer
    phrase = realizer.condition(realizer.column_noun(column), op, value)
    question = realizer.followup(f"keep only those whose {phrase}")
    return dc_replace(select, where=where), question


def _edit_to_count(
    select: Select, ctx: PatternContext, table_name: str
) -> tuple[Select, str] | None:
    """Replace the projection with COUNT(*)."""
    if select.group_by or any(
        isinstance(i.expr, FuncCall) for i in select.items
    ):
        return None
    counted = dc_replace(
        select,
        items=(SelectItem(expr=FuncCall(name="count", args=(Star(),))),),
        order_by=(),
        limit=None,
    )
    question = ctx.realizer.choose(
        ("How many are there?", "How many is that?", "Count them?")
    )
    return counted, question


def _edit_add_order(
    select: Select, ctx: PatternContext, table_name: str
) -> tuple[Select, str] | None:
    """Add ORDER BY a numeric column plus a LIMIT."""
    # an aggregate projection (e.g. after _edit_to_count) must not gain a
    # bare sort column: COUNT(*), col without GROUP BY is invalid SQL
    if select.order_by or select.group_by or any(
        isinstance(i.expr, FuncCall) for i in select.items
    ):
        return None
    table = ctx.schema.table(table_name)
    numeric = ctx.numeric_columns(table)
    if not numeric:
        return None
    column = ctx.rng.choice(numeric)
    descending = ctx.rng.random() < 0.7
    limit = ctx.rng.choice((3, 5))
    ordered = dc_replace(
        select,
        items=select.items
        + (SelectItem(expr=ColumnRef(column=column.name.lower())),),
        order_by=(
            OrderItem(
                expr=ColumnRef(column=column.name.lower()),
                descending=descending,
            ),
        ),
        limit=limit,
    )
    realizer = ctx.realizer
    direction = "highest" if descending else "lowest"
    question = realizer.followup(
        f"show only the {limit} with the {direction} "
        f"{realizer.column_noun(column)}"
    )
    return ordered, question


def _edit_change_projection(
    select: Select, ctx: PatternContext, table_name: str
) -> tuple[Select, str] | None:
    """Swap the projection to a different column."""
    if select.group_by:
        return None
    table = ctx.schema.table(table_name)
    candidates = ctx.text_columns(table) + ctx.numeric_columns(table)
    current = {
        item.expr.column
        for item in select.items
        if isinstance(item.expr, ColumnRef)
    }
    fresh = [c for c in candidates if c.name.lower() not in current]
    if not fresh:
        return None
    column = ctx.rng.choice(fresh)
    changed = dc_replace(
        select, items=(SelectItem(expr=ColumnRef(column=column.name.lower())),)
    )
    realizer = ctx.realizer
    question = realizer.followup(
        f"show their {realizer.column_noun(column)} instead"
    )
    return changed, question


_EDITS = (
    _edit_add_condition,
    _edit_to_count,
    _edit_add_order,
    _edit_change_projection,
)


def _build_dialogue(
    ctx: PatternContext,
    db: Database,
    dialogue_id: str,
    max_turns: int,
) -> Dialogue:
    instance = None
    for _ in range(40):
        pattern, _w = ctx.rng.choice(_BASE_PATTERNS)
        candidate = pattern(ctx)
        if candidate is None or not isinstance(candidate.query, Select):
            continue
        instance = candidate
        # a dialogue needs at least one applicable edit; bases over tables
        # without editable columns would stall at a single turn
        if any(
            edit(candidate.query, ctx, candidate.table) is not None
            for edit in _EDITS
        ):
            break
    assert instance is not None and isinstance(instance.query, Select)

    turns = [
        Example(
            question=instance.question,
            db_id=db.db_id,
            sql=instance.sql,
            hardness=instance.hardness,
            pattern=instance.pattern,
            dialogue_id=dialogue_id,
            turn_index=0,
        )
    ]
    select = instance.query
    for turn_index in range(1, max_turns):
        edits = list(_EDITS)
        ctx.rng.shuffle(edits)
        applied = None
        for edit in edits:
            applied = edit(select, ctx, instance.table)
            if applied is not None:
                break
        if applied is None:
            break
        select, question = applied
        turns.append(
            Example(
                question=question,
                db_id=db.db_id,
                sql=to_sql(select),
                hardness=classify_hardness(select),
                pattern=f"{instance.pattern}+edit",
                dialogue_id=dialogue_id,
                turn_index=turn_index,
            )
        )
    return Dialogue(dialogue_id=dialogue_id, db_id=db.db_id, turns=turns)


def build_sparc_like(
    num_dialogues: int = 150,
    max_turns: int = 4,
    seed: int = 0,
    dataset_name: str = "sparc_like",
) -> Dataset:
    """A SParC-like multi-turn Text-to-SQL benchmark."""
    rng = random.Random(seed)
    generator = DatabaseGenerator(seed=rng.randrange(1 << 30))
    databases: dict[str, Database] = {}
    contexts: dict[str, PatternContext] = {}
    for domain in all_domains():
        db_id = f"{domain.name}_mt"
        clone = clone_domain(domain, db_id)
        databases[db_id] = generator.populate(clone)
        contexts[db_id] = PatternContext(clone, databases[db_id], rng)

    db_ids = sorted(databases)
    dialogues = []
    for index in range(num_dialogues):
        db_id = db_ids[index % len(db_ids)]
        turns = rng.randint(2, max_turns)
        dialogues.append(
            _build_dialogue(
                contexts[db_id], databases[db_id], f"dlg_{index:04d}", turns
            )
        )

    examples = [turn for dialogue in dialogues for turn in dialogue.turns]
    train_len = int(len(dialogues) * 0.8)
    train = [t for d in dialogues[:train_len] for t in d.turns]
    dev = [t for d in dialogues[train_len:] for t in d.turns]
    return Dataset(
        name=dataset_name,
        task="sql",
        feature="Multi-turn",
        databases=databases,
        splits={"train": Split("train", train), "dev": Split("dev", dev)},
        dialogues=dialogues,
    )


def build_dial_vis_like(
    num_dialogues: int = 120,
    seed: int = 0,
    dataset_name: str = "dial_nvbench_like",
) -> Dataset:
    """A Dial-NVBench/ChartDialogs-like multi-turn Text-to-Vis benchmark.

    Turn 0 requests a chart; follow-up turns re-style it ("make it a pie
    chart") or refine the underlying data query.
    """
    rng = random.Random(seed)
    generator = DatabaseGenerator(seed=rng.randrange(1 << 30))
    databases: dict[str, Database] = {}
    contexts: dict[str, PatternContext] = {}
    for domain in all_domains():
        db_id = f"{domain.name}_dvis"
        clone = clone_domain(domain, db_id)
        databases[db_id] = generator.populate(clone)
        contexts[db_id] = PatternContext(clone, databases[db_id], rng)

    db_ids = sorted(databases)
    realizer = Realizer(rng)
    dialogues: list[Dialogue] = []
    for index in range(num_dialogues):
        db_id = db_ids[index % len(db_ids)]
        ctx = contexts[db_id]
        from repro.datasets.patterns import sample_instance

        instance = sample_instance(ctx, CHARTABLE_PATTERNS)
        base = make_vis_example(instance, databases[db_id], rng, realizer)
        dialogue_id = f"vdlg_{index:04d}"
        base.dialogue_id = dialogue_id
        turns = [base]

        vql = parse_vql(base.vql or "")
        other_types = [
            t for t in ("bar", "pie", "line") if t != vql.chart_type
        ]
        if instance.pattern == "scatter_pair":
            other_types = ["line"]
        new_type = rng.choice(other_types)
        restyled = vql.with_chart(new_type)
        phrasing = rng.choice(
            (
                f"Make it a {new_type} chart instead?",
                f"Can you show that as a {new_type} chart?",
                f"Switch to a {new_type} chart?",
            )
        )
        turns.append(
            Example(
                question=phrasing,
                db_id=db_id,
                sql=base.sql,
                vql=to_vql(restyled),
                hardness=base.hardness,
                pattern="restyle",
                dialogue_id=dialogue_id,
                turn_index=1,
            )
        )
        dialogues.append(
            Dialogue(dialogue_id=dialogue_id, db_id=db_id, turns=turns)
        )

    train_len = int(len(dialogues) * 0.8)
    train = [t for d in dialogues[:train_len] for t in d.turns]
    dev = [t for d in dialogues[train_len:] for t in d.turns]
    return Dataset(
        name=dataset_name,
        task="vis",
        feature="Multi-turn",
        databases=databases,
        splits={"train": Split("train", train), "dev": Split("dev", dev)},
        dialogues=dialogues,
    )
