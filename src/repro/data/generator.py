"""Random database content generation.

Given a schema (typically from :mod:`repro.data.domains`) the generator
fills tables with plausible, referentially-consistent rows: primary keys
are unique integers, foreign keys reference existing parent rows (tables
are filled in FK-topological order), and value distributions come from the
domain's vocabulary pools or from type-appropriate numeric ranges.

A controllable fraction of NULLs and (for BIRD-style knowledge-grounded
benchmarks) *dirty values* — inconsistent casing, stray whitespace, coded
abbreviations — can be injected, reproducing the database-content
challenges the survey highlights for knowledge-intensive datasets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.database import Database
from repro.data.domains import Domain
from repro.data.schema import Column, ColumnType, Schema, TableSchema
from repro.data.values import Value


@dataclass
class GeneratorConfig:
    """Knobs for database content generation."""

    rows_per_table: int = 24
    null_fraction: float = 0.04
    dirty_fraction: float = 0.0  # BIRD-style inconsistent values
    numeric_max: int = 1000

    def __post_init__(self) -> None:
        if self.rows_per_table < 0:
            raise ValueError("rows_per_table must be non-negative")
        if not 0.0 <= self.null_fraction <= 1.0:
            raise ValueError("null_fraction must be within [0, 1]")
        if not 0.0 <= self.dirty_fraction <= 1.0:
            raise ValueError("dirty_fraction must be within [0, 1]")


#: Fallback word pool used when a domain supplies no vocabulary for a column.
_GENERIC_WORDS = (
    "alpha", "bravo", "cedar", "delta", "ember", "fable", "grove", "harbor",
    "iris", "juniper", "krill", "lumen", "maple", "nectar", "onyx", "pine",
    "quartz", "raven", "sable", "tundra",
)


class DatabaseGenerator:
    """Deterministic, seedable generator of database contents."""

    def __init__(self, seed: int = 0, config: GeneratorConfig | None = None) -> None:
        self._rng = random.Random(seed)
        self.config = config or GeneratorConfig()

    def populate(self, domain: Domain, rows_per_table: int | None = None) -> Database:
        """Build a database for *domain* with generated contents."""
        return self.populate_schema(
            domain.schema, domain.vocabulary, rows_per_table
        )

    def populate_schema(
        self,
        schema: Schema,
        vocabulary: dict[str, tuple[str, ...]] | None = None,
        rows_per_table: int | None = None,
    ) -> Database:
        """Build a database for an arbitrary *schema*."""
        vocabulary = vocabulary or {}
        count = rows_per_table if rows_per_table is not None else (
            self.config.rows_per_table
        )
        db = Database(schema=schema)
        for table in _topological_tables(schema):
            self._fill_table(db, schema, table, vocabulary, count)
        return db

    # ------------------------------------------------------------------
    def _fill_table(
        self,
        db: Database,
        schema: Schema,
        table: TableSchema,
        vocabulary: dict[str, tuple[str, ...]],
        count: int,
    ) -> None:
        fk_by_column = {
            fk.column.lower(): fk
            for fk in schema.foreign_keys
            if fk.table.lower() == table.name.lower()
        }
        pk = table.primary_key.lower() if table.primary_key else None
        for row_index in range(count):
            row: list[Value] = []
            for column in table.columns:
                name = column.name.lower()
                if pk is not None and name == pk:
                    row.append(row_index + 1)
                    continue
                fk = fk_by_column.get(name)
                if fk is not None:
                    row.append(self._foreign_value(db, fk))
                    continue
                row.append(
                    self._column_value(column, table.name, vocabulary)
                )
            db.insert(table.name, tuple(row))

    def _foreign_value(self, db: Database, fk) -> Value:
        parent = db.table(fk.ref_table)
        values = [v for v in parent.column_values(fk.ref_column) if v is not None]
        if not values:
            return None
        return self._rng.choice(values)

    def _column_value(
        self,
        column: Column,
        table_name: str,
        vocabulary: dict[str, tuple[str, ...]],
    ) -> Value:
        if self._rng.random() < self.config.null_fraction:
            return None
        if column.type is ColumnType.BOOLEAN:
            return self._rng.random() < 0.5
        if column.type is ColumnType.NUMBER:
            return self._numeric_value(column.name.lower())
        pool = self._pool_for(
            column.name.lower(), table_name.lower(), vocabulary
        )
        value = self._rng.choice(pool)
        if self._rng.random() < self.config.dirty_fraction:
            value = self._make_dirty(value)
        return value

    def _numeric_value(self, name: str) -> Value:
        rng = self._rng
        if "year" in name:
            return rng.randint(1980, 2025)
        if "age" in name:
            return rng.randint(1, 95)
        if "rating" in name or "score" in name or "stars" in name:
            return round(rng.uniform(1.0, 5.0), 1)
        if "price" in name or "cost" in name or "salary" in name:
            return round(rng.uniform(5.0, float(self.config.numeric_max)), 2)
        if rng.random() < 0.3:
            return round(rng.uniform(0, self.config.numeric_max), 2)
        return rng.randint(0, self.config.numeric_max)

    def _pool_for(
        self,
        name: str,
        table_name: str,
        vocabulary: dict[str, tuple[str, ...]],
    ) -> tuple[str, ...]:
        # a table-specific pool wins for generic column names ("name" in
        # the products table draws product words, not person names)
        singular_table = table_name.rstrip("s")
        if name in ("name", "title") and singular_table in vocabulary:
            return vocabulary[singular_table]
        # exact key, then keyword containment, then the generic pool
        if name in vocabulary:
            return vocabulary[name]
        for keyword, pool in vocabulary.items():
            if keyword in name:
                return pool
        if "date" in name and "date" in vocabulary:
            return vocabulary["date"]
        return _GENERIC_WORDS

    def _make_dirty(self, value: str) -> str:
        """Perturb a text value the way real-world databases are dirty."""
        choice = self._rng.randrange(4)
        if choice == 0:
            return value.upper()
        if choice == 1:
            return value.lower()
        if choice == 2:
            return f" {value} "
        return value[:3].upper() + "."  # coded abbreviation


def _topological_tables(schema: Schema) -> list[TableSchema]:
    """Tables ordered so FK parents come before children (cycles broken)."""
    remaining = {t.name.lower(): t for t in schema.tables}
    depends: dict[str, set[str]] = {name: set() for name in remaining}
    for fk in schema.foreign_keys:
        child, parent = fk.table.lower(), fk.ref_table.lower()
        if child != parent and child in depends and parent in remaining:
            depends[child].add(parent)
    ordered: list[TableSchema] = []
    while remaining:
        ready = [
            name
            for name, deps in depends.items()
            if name in remaining and not (deps & set(remaining))
        ]
        if not ready:  # FK cycle: emit the rest in schema order
            ordered.extend(
                t for t in schema.tables if t.name.lower() in remaining
            )
            break
        for name in sorted(ready):
            ordered.append(remaining.pop(name))
    return ordered
