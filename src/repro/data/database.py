"""In-memory relational store: tables of typed rows plus a schema.

The :class:`Database` is the ``D`` in the survey's problem definition: the
thing the execution engine ``E`` runs functional expressions against.  It
supports CSV round-trips (one file per table) so generated benchmarks can be
persisted and inspected, and cheap structural cloning for the test-suite
metric's database-variant fuzzing.
"""

from __future__ import annotations

import csv
import io
import pathlib
from dataclasses import dataclass, field

from repro.data.schema import Schema, TableSchema
from repro.data.values import Value, coerce_value, render_value
from repro.errors import AnalysisError


@dataclass
class Table:
    """A table's contents: the schema of its columns plus a list of rows.

    Rows are tuples aligned with ``schema.columns``.  The class is mutable
    (rows can be appended) because generators build content incrementally,
    but consumers should treat the row tuples themselves as immutable.
    """

    schema: TableSchema
    rows: list[tuple[Value, ...]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def version(self) -> int:
        """Monotonic mutation counter, bumped by :meth:`append`."""
        return getattr(self, "_version", 0)

    def cache_token(self) -> tuple[int, int]:
        """Stamp identifying this table's current contents.

        Derived caches (statistics, indexes, column batches) key their
        entries by this token so any mutation — ``append``, a bulk
        :meth:`replace_rows`, or even a raw swap of the ``rows`` list —
        retires them.  Raw swaps are detected by holding a strong
        reference to the last-seen list and bumping the version when
        ``self.rows`` is no longer that object; the strong reference is
        what makes the ``is`` check sound (an earlier scheme put
        ``id(rows)`` in the token itself, but a swapped-in list can be
        allocated at a garbage-collected predecessor's address and alias
        its token).  In-place mutation of an existing row tuple's slot is
        the one thing it cannot see; row tuples are immutable by contract.
        """
        rows = self.rows
        if getattr(self, "_token_rows", None) is not rows:
            self._token_rows = rows
            self._version = self.version + 1
        return (self.version, len(rows))

    def invalidate_caches(self) -> None:
        """Force derived caches (stats, indexes) to rebuild on next use."""
        self._version = self.version + 1

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, col in enumerate(self.schema.columns):
            if col.name.lower() == lowered:
                return i
        raise AnalysisError(f"table {self.name!r} has no column {name!r}")

    def column_values(self, name: str) -> list[Value]:
        """All values of one column, in row order."""
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    def append(self, row: tuple[Value, ...]) -> None:
        if len(row) != len(self.schema.columns):
            raise AnalysisError(
                f"row arity {len(row)} does not match table {self.name!r} "
                f"with {len(self.schema.columns)} columns"
            )
        self.rows.append(row)
        self._version = self.version + 1

    def replace_rows(self, rows: list[tuple[Value, ...]]) -> None:
        """Swap in a whole new row list, invalidating derived caches."""
        self.rows = rows
        self._version = self.version + 1

    def copy(self) -> "Table":
        return Table(schema=self.schema, rows=list(self.rows))

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class Database:
    """A schema plus the contents of each of its tables."""

    schema: Schema
    tables: dict[str, Table] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # normalize keys so lookups are case-insensitive
        self.tables = {name.lower(): tbl for name, tbl in self.tables.items()}
        for table_schema in self.schema.tables:
            self.tables.setdefault(
                table_schema.name.lower(), Table(schema=table_schema)
            )

    @property
    def db_id(self) -> str:
        return self.schema.db_id

    def table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise AnalysisError(
                f"database {self.db_id!r} has no table {name!r}"
            ) from None

    def insert(self, table_name: str, row: tuple[Value, ...]) -> None:
        self.table(table_name).append(row)

    def copy(self) -> "Database":
        """Structural copy sharing schemas but not row lists."""
        return Database(
            schema=self.schema,
            tables={name: table.copy() for name, table in self.tables.items()},
        )

    def row_count(self) -> int:
        return sum(len(table) for table in self.tables.values())

    # ------------------------------------------------------------------
    # CSV persistence
    # ------------------------------------------------------------------
    def to_csv_dir(self, directory: str | pathlib.Path) -> None:
        """Write one ``<table>.csv`` per table (header row included)."""
        path = pathlib.Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        for table in self.tables.values():
            with open(path / f"{table.name}.csv", "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(table.schema.column_names())
                for row in table.rows:
                    writer.writerow([render_value(v) for v in row])

    @classmethod
    def from_csv_dir(cls, schema: Schema, directory: str | pathlib.Path) -> "Database":
        """Load table contents from ``<table>.csv`` files under *directory*.

        Missing files produce empty tables; cells are re-typed with
        :func:`~repro.data.values.coerce_value`.
        """
        path = pathlib.Path(directory)
        db = cls(schema=schema)
        for table_schema in schema.tables:
            file_path = path / f"{table_schema.name}.csv"
            if not file_path.exists():
                continue
            with open(file_path, newline="") as handle:
                db._load_csv(table_schema.name, handle)
        return db

    def _load_csv(self, table_name: str, handle: io.TextIOBase) -> None:
        reader = csv.reader(handle)
        header = next(reader, None)
        table = self.table(table_name)
        expected = [c.lower() for c in table.schema.column_names()]
        if header is None:
            return
        if [h.strip().lower() for h in header] != expected:
            raise AnalysisError(
                f"CSV header for table {table_name!r} does not match schema"
            )
        for row in reader:
            table.append(tuple(coerce_value(cell) for cell in row))
