"""Value domain shared by the data model and the SQL executor.

SQL values in this library are Python ``None`` (NULL), ``bool``, ``int``,
``float``, and ``str``.  This module centralizes the comparison and coercion
rules so the executor, metrics, and generators agree exactly — including the
SQL convention that any comparison involving NULL is unknown.
"""

from __future__ import annotations

from typing import Union

Value = Union[None, bool, int, float, str]

#: Total order over type families used only for deterministic ORDER BY of
#: mixed-type columns: NULLs first, then numbers, then text.
_TYPE_RANK = {"null": 0, "number": 1, "text": 2}


def value_type_of(value: Value) -> str:
    """Classify *value* into the families ``null``, ``number``, or ``text``."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "number"
    if isinstance(value, (int, float)):
        return "number"
    return "text"


def looks_temporal(value: Value) -> bool:
    """Whether *value* is an ISO-8601 date string (``YYYY-MM-DD``).

    The single temporal-detection rule shared by the runtime spec compiler
    (:func:`repro.vis.spec.field_type`) and the static output-schema typer
    (:mod:`repro.sql.typer`), so static and runtime temporal classification
    cannot drift.
    """
    if not isinstance(value, str) or len(value) != 10:
        return False
    return value[4] == "-" and value[7] == "-" and value[:4].isdigit()


def compare_values(left: Value, right: Value) -> int | None:
    """Three-valued SQL comparison.

    Returns a negative/zero/positive int like :func:`cmp`, or ``None`` when
    either side is NULL (SQL's *unknown*).  Numbers compare numerically,
    strings lexicographically; comparing a number to a string compares their
    type ranks, which keeps the ordering total and deterministic.
    """
    if left is None or right is None:
        return None
    lrank = _TYPE_RANK[value_type_of(left)]
    rrank = _TYPE_RANK[value_type_of(right)]
    if lrank != rrank:
        return -1 if lrank < rrank else 1
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if left == right:
        return 0
    return -1 if left < right else 1  # type: ignore[operator]


def sort_key(value: Value) -> tuple[int, float | str]:
    """Key usable with :func:`sorted` that matches :func:`compare_values`.

    NULLs sort first (SQL ``NULLS FIRST`` behaviour of SQLite's default
    ascending order), then numbers, then text.
    """
    family = value_type_of(value)
    if family == "null":
        return (0, 0.0)
    if family == "number":
        return (1, float(value))  # type: ignore[arg-type]
    return (2, str(value))


def coerce_value(text: str | None) -> Value:
    """Parse a CSV/text cell into the closest typed value.

    Empty strings and the literal ``NULL`` become ``None``; otherwise an int,
    then float, then the original string is attempted, in that order.
    """
    if text is None:
        return None
    stripped = text.strip()
    if stripped == "" or stripped.upper() == "NULL":
        return None
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return text


def render_value(value: Value) -> str:
    """Render a value for CSV output; inverse of :func:`coerce_value`."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)
