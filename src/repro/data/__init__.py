"""Data substrate: typed values, schemas, tables, and in-memory databases.

This package provides the structured-data side of the NLI problem
definition (Section 2.2 of the survey): the database ``D`` with schema ``s``
containing tables ``T`` and columns ``C`` that semantic parsers translate
questions against and executors run queries over.
"""

from repro.data.database import Database, Table
from repro.data.generator import DatabaseGenerator, GeneratorConfig
from repro.data.schema import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.data.values import coerce_value, compare_values, value_type_of

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "DatabaseGenerator",
    "ForeignKey",
    "GeneratorConfig",
    "Schema",
    "Table",
    "TableSchema",
    "coerce_value",
    "compare_values",
    "value_type_of",
]
