"""Curated domain library: realistic schemas for benchmark synthesis.

Cross-domain datasets like Spider draw their difficulty from schema
diversity: different subject areas, naming conventions, table counts, and
foreign-key shapes.  This module provides a library of hand-designed domain
schemas (with natural-language synonyms on tables and columns, which the
NLG channel and schema linkers use) plus per-domain vocabulary pools the
content generator samples values from.

Each domain is a factory returning a fresh :class:`Schema`, so callers can
instantiate independent copies with distinct ``db_id`` values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.schema import Column, ColumnType, ForeignKey, Schema, TableSchema

_NUM = ColumnType.NUMBER
_TXT = ColumnType.TEXT
_DATE = ColumnType.DATE


@dataclass(frozen=True)
class Domain:
    """A named domain: its schema factory plus value vocabulary pools."""

    name: str
    schema: Schema
    #: column-name keyword -> pool of plausible text values
    vocabulary: dict[str, tuple[str, ...]]


def _col(name: str, type_: ColumnType = _TXT, *synonyms: str) -> Column:
    return Column(name=name, type=type_, synonyms=tuple(synonyms))


_PEOPLE = (
    "Alice Chen", "Bob Müller", "Carlos Diaz", "Dana Levi", "Erik Sato",
    "Fatima Khan", "George Okafor", "Hana Kim", "Ivan Petrov", "Julia Rossi",
    "Kwame Mensah", "Lena Novak", "Miguel Torres", "Nadia Haddad",
    "Oscar Lindgren", "Priya Sharma", "Quinn Walsh", "Rosa Martinez",
    "Samir Patel", "Tara Nguyen", "Umar Farouk", "Vera Kowalski",
    "Wei Zhang", "Ximena Lopez", "Yusuf Demir", "Zoe Laurent",
)
_CITIES = (
    "Springfield", "Riverton", "Lakewood", "Fairview", "Greenville",
    "Bristol", "Clayton", "Dayton", "Easton", "Franklin", "Georgetown",
    "Hudson", "Kingston", "Madison", "Newport", "Oxford", "Salem",
    "Troy", "Vienna", "Winchester",
)
_COUNTRIES = (
    "USA", "Canada", "Mexico", "Brazil", "France", "Germany", "Spain",
    "Italy", "China", "Japan", "Korea", "India", "Australia", "Egypt",
    "Kenya", "Norway",
)
_QUARTERS = ("Q1", "Q2", "Q3", "Q4")
_DATES = tuple(
    f"20{year:02d}-{month:02d}-{day:02d}"
    for year in range(18, 26)
    for month in (1, 4, 7, 10)
    for day in (5, 15, 25)
)


def _sales_domain() -> Domain:
    schema = Schema(
        db_id="sales",
        domain="sales",
        tables=(
            TableSchema(
                "products",
                (
                    _col("product_id", _NUM, "product number"),
                    _col("name", _TXT, "product name", "title"),
                    _col("category", _TXT, "product category", "type"),
                    _col("price", _NUM, "cost", "unit price"),
                    _col("stock", _NUM, "inventory", "quantity in stock"),
                ),
                primary_key="product_id",
                synonyms=("items", "goods"),
            ),
            TableSchema(
                "customers",
                (
                    _col("customer_id", _NUM),
                    _col("name", _TXT, "customer name"),
                    _col("city", _TXT, "location"),
                    _col("segment", _TXT, "customer segment", "tier"),
                ),
                primary_key="customer_id",
                synonyms=("clients", "buyers"),
            ),
            TableSchema(
                "orders",
                (
                    _col("order_id", _NUM),
                    _col("customer_id", _NUM),
                    _col("product_id", _NUM),
                    _col("quantity", _NUM, "amount", "units"),
                    _col("order_date", _DATE, "date", "purchase date"),
                    _col("quarter", _TXT, "fiscal quarter"),
                ),
                primary_key="order_id",
                synonyms=("sales", "purchases", "transactions"),
            ),
        ),
        foreign_keys=(
            ForeignKey("orders", "customer_id", "customers", "customer_id"),
            ForeignKey("orders", "product_id", "products", "product_id"),
        ),
    )
    vocabulary = {
        "name": _PEOPLE,
        "product": (
            "Widget", "Gadget", "Sprocket", "Gizmo", "Doohickey", "Contraption",
            "Apparatus", "Fixture", "Module", "Bracket", "Coupler", "Flange",
        ),
        "category": ("electronics", "furniture", "clothing", "toys", "food",
                     "sports", "books", "garden"),
        "city": _CITIES,
        "segment": ("consumer", "corporate", "home office", "small business"),
        "quarter": _QUARTERS,
        "date": _DATES,
    }
    return Domain(name="sales", schema=schema, vocabulary=vocabulary)


def _flights_domain() -> Domain:
    schema = Schema(
        db_id="flights",
        domain="flights",
        tables=(
            TableSchema(
                "airlines",
                (
                    _col("airline_id", _NUM),
                    _col("name", _TXT, "airline name", "carrier"),
                    _col("country", _TXT, "home country"),
                ),
                primary_key="airline_id",
                synonyms=("carriers",),
            ),
            TableSchema(
                "airports",
                (
                    _col("airport_id", _NUM),
                    _col("code", _TXT, "airport code", "iata code"),
                    _col("city", _TXT, "location"),
                    _col("country", _TXT,),
                ),
                primary_key="airport_id",
            ),
            TableSchema(
                "flights",
                (
                    _col("flight_id", _NUM),
                    _col("airline_id", _NUM),
                    _col("source_airport", _NUM, "origin", "departure airport"),
                    _col("dest_airport", _NUM, "destination", "arrival airport"),
                    _col("distance", _NUM, "miles", "flight distance"),
                    _col("departure_date", _DATE, "date"),
                ),
                primary_key="flight_id",
                synonyms=("routes",),
            ),
        ),
        foreign_keys=(
            ForeignKey("flights", "airline_id", "airlines", "airline_id"),
            ForeignKey("flights", "source_airport", "airports", "airport_id"),
            ForeignKey("flights", "dest_airport", "airports", "airport_id"),
        ),
    )
    vocabulary = {
        "name": (
            "Aurora Air", "BlueJet", "Cirrus Lines", "Delta Wind", "EagleFly",
            "Falcon Express", "Glide Air", "Horizon Jet", "Island Hopper",
            "Jetstream", "Kestrel Air", "Longhaul",
        ),
        "code": ("SPR", "RVT", "LKW", "FRV", "GRV", "BRL", "CLY", "DYT",
                 "EST", "FRK", "GTW", "HUD", "KGS", "MDS", "NWP", "OXF"),
        "city": _CITIES,
        "country": _COUNTRIES,
        "date": _DATES,
    }
    return Domain(name="flights", schema=schema, vocabulary=vocabulary)


def _geography_domain() -> Domain:
    schema = Schema(
        db_id="geography",
        domain="geography",
        tables=(
            TableSchema(
                "states",
                (
                    _col("state_id", _NUM),
                    _col("name", _TXT, "state name"),
                    _col("population", _NUM, "number of people", "inhabitants"),
                    _col("area", _NUM, "size", "square miles"),
                    _col("country", _TXT),
                ),
                primary_key="state_id",
                synonyms=("provinces", "regions"),
            ),
            TableSchema(
                "cities",
                (
                    _col("city_id", _NUM),
                    _col("name", _TXT, "city name"),
                    _col("state_id", _NUM),
                    _col("population", _NUM, "number of residents"),
                ),
                primary_key="city_id",
                synonyms=("towns", "municipalities"),
            ),
            TableSchema(
                "rivers",
                (
                    _col("river_id", _NUM),
                    _col("name", _TXT, "river name"),
                    _col("length", _NUM, "river length", "miles long"),
                    _col("state_id", _NUM, "traverses"),
                ),
                primary_key="river_id",
            ),
        ),
        foreign_keys=(
            ForeignKey("cities", "state_id", "states", "state_id"),
            ForeignKey("rivers", "state_id", "states", "state_id"),
        ),
    )
    vocabulary = {
        "name": _CITIES + ("Rio Verde", "Silver River", "Stone Creek",
                           "North Fork", "Clearwater"),
        "country": _COUNTRIES,
    }
    return Domain(name="geography", schema=schema, vocabulary=vocabulary)


def _academic_domain() -> Domain:
    schema = Schema(
        db_id="academic",
        domain="academic",
        tables=(
            TableSchema(
                "authors",
                (
                    _col("author_id", _NUM),
                    _col("name", _TXT, "author name", "researcher"),
                    _col("affiliation", _TXT, "institution", "university"),
                    _col("h_index", _NUM, "h index", "citation index"),
                ),
                primary_key="author_id",
                synonyms=("researchers", "scholars"),
            ),
            TableSchema(
                "papers",
                (
                    _col("paper_id", _NUM),
                    _col("title", _TXT, "paper title"),
                    _col("venue", _TXT, "conference", "journal"),
                    _col("year", _NUM, "publication year"),
                    _col("citations", _NUM, "citation count", "times cited"),
                ),
                primary_key="paper_id",
                synonyms=("publications", "articles"),
            ),
            TableSchema(
                "writes",
                (
                    _col("author_id", _NUM),
                    _col("paper_id", _NUM),
                ),
                synonyms=("authorship",),
            ),
        ),
        foreign_keys=(
            ForeignKey("writes", "author_id", "authors", "author_id"),
            ForeignKey("writes", "paper_id", "papers", "paper_id"),
        ),
    )
    vocabulary = {
        "name": _PEOPLE,
        "affiliation": (
            "State University", "Institute of Technology", "Polytechnic",
            "National Lab", "City College", "Riverside University",
        ),
        "title": (
            "Neural Parsing at Scale", "Graphs for Schemas",
            "Prompting Revisited", "On Compositionality",
            "Robust Semantic Parsing", "Learning to Rank Queries",
            "Tables as Graphs", "Grammar Constrained Decoding",
        ),
        "venue": ("ACL", "EMNLP", "ICDE", "VLDB", "SIGMOD", "NeurIPS",
                  "KDD", "NAACL"),
    }
    return Domain(name="academic", schema=schema, vocabulary=vocabulary)


def _healthcare_domain() -> Domain:
    schema = Schema(
        db_id="healthcare",
        domain="healthcare",
        tables=(
            TableSchema(
                "patients",
                (
                    _col("patient_id", _NUM),
                    _col("name", _TXT, "patient name"),
                    _col("age", _NUM, "years old"),
                    _col("city", _TXT),
                ),
                primary_key="patient_id",
            ),
            TableSchema(
                "doctors",
                (
                    _col("doctor_id", _NUM),
                    _col("name", _TXT, "doctor name", "physician"),
                    _col("specialty", _TXT, "specialization", "department"),
                ),
                primary_key="doctor_id",
                synonyms=("physicians",),
            ),
            TableSchema(
                "visits",
                (
                    _col("visit_id", _NUM),
                    _col("patient_id", _NUM),
                    _col("doctor_id", _NUM),
                    _col("visit_date", _DATE, "date", "appointment date"),
                    _col("cost", _NUM, "bill", "charge"),
                ),
                primary_key="visit_id",
                synonyms=("appointments", "consultations"),
            ),
        ),
        foreign_keys=(
            ForeignKey("visits", "patient_id", "patients", "patient_id"),
            ForeignKey("visits", "doctor_id", "doctors", "doctor_id"),
        ),
    )
    vocabulary = {
        "name": _PEOPLE,
        "city": _CITIES,
        "specialty": ("cardiology", "oncology", "pediatrics", "neurology",
                      "dermatology", "radiology", "surgery"),
        "date": _DATES,
    }
    return Domain(name="healthcare", schema=schema, vocabulary=vocabulary)


def _restaurants_domain() -> Domain:
    schema = Schema(
        db_id="restaurants",
        domain="restaurants",
        tables=(
            TableSchema(
                "restaurants",
                (
                    _col("restaurant_id", _NUM),
                    _col("name", _TXT, "restaurant name"),
                    _col("cuisine", _TXT, "food type", "kind of food"),
                    _col("city", _TXT, "location"),
                    _col("rating", _NUM, "stars", "score"),
                ),
                primary_key="restaurant_id",
                synonyms=("eateries", "places to eat"),
            ),
            TableSchema(
                "reviews",
                (
                    _col("review_id", _NUM),
                    _col("restaurant_id", _NUM),
                    _col("reviewer", _TXT, "reviewer name"),
                    _col("score", _NUM, "review score", "grade"),
                ),
                primary_key="review_id",
            ),
        ),
        foreign_keys=(
            ForeignKey("reviews", "restaurant_id", "restaurants",
                       "restaurant_id"),
        ),
    )
    vocabulary = {
        "name": (
            "Golden Fork", "Blue Plate", "Corner Bistro", "Harvest Table",
            "Luna Cafe", "Red Lantern", "Sage Kitchen", "The Olive Branch",
        ),
        "cuisine": ("italian", "mexican", "thai", "indian", "french",
                    "japanese", "american", "greek"),
        "city": _CITIES,
        "reviewer": _PEOPLE,
    }
    return Domain(name="restaurants", schema=schema, vocabulary=vocabulary)


def _movies_domain() -> Domain:
    schema = Schema(
        db_id="movies",
        domain="movies",
        tables=(
            TableSchema(
                "movies",
                (
                    _col("movie_id", _NUM),
                    _col("title", _TXT, "movie title", "film"),
                    _col("genre", _TXT, "category"),
                    _col("year", _NUM, "release year"),
                    _col("gross", _NUM, "box office", "revenue"),
                ),
                primary_key="movie_id",
                synonyms=("films",),
            ),
            TableSchema(
                "directors",
                (
                    _col("director_id", _NUM),
                    _col("name", _TXT, "director name"),
                    _col("country", _TXT, "nationality"),
                ),
                primary_key="director_id",
            ),
            TableSchema(
                "directed_by",
                (
                    _col("movie_id", _NUM),
                    _col("director_id", _NUM),
                ),
            ),
        ),
        foreign_keys=(
            ForeignKey("directed_by", "movie_id", "movies", "movie_id"),
            ForeignKey("directed_by", "director_id", "directors",
                       "director_id"),
        ),
    )
    vocabulary = {
        "title": (
            "Midnight Harbor", "The Last Signal", "Paper Skies",
            "Winter Orchard", "Glass Horizon", "Echoes of June",
            "Static City", "The Ninth Door",
        ),
        "genre": ("drama", "comedy", "action", "thriller", "horror",
                  "romance", "documentary", "animation"),
        "name": _PEOPLE,
        "country": _COUNTRIES,
    }
    return Domain(name="movies", schema=schema, vocabulary=vocabulary)


def _employees_domain() -> Domain:
    schema = Schema(
        db_id="company",
        domain="company",
        tables=(
            TableSchema(
                "departments",
                (
                    _col("department_id", _NUM),
                    _col("name", _TXT, "department name", "division"),
                    _col("budget", _NUM, "funding"),
                ),
                primary_key="department_id",
                synonyms=("divisions",),
            ),
            TableSchema(
                "employees",
                (
                    _col("employee_id", _NUM),
                    _col("name", _TXT, "employee name", "staff member"),
                    _col("department_id", _NUM),
                    _col("salary", _NUM, "wage", "pay"),
                    _col("hire_date", _DATE, "date hired", "start date"),
                ),
                primary_key="employee_id",
                synonyms=("staff", "workers", "personnel"),
            ),
        ),
        foreign_keys=(
            ForeignKey("employees", "department_id", "departments",
                       "department_id"),
        ),
    )
    vocabulary = {
        "name": _PEOPLE + ("Engineering", "Marketing", "Finance", "Legal",
                           "Operations", "Research", "Support", "Design"),
        "date": _DATES,
    }
    return Domain(name="company", schema=schema, vocabulary=vocabulary)


def _library_domain() -> Domain:
    schema = Schema(
        db_id="library",
        domain="library",
        tables=(
            TableSchema(
                "books",
                (
                    _col("book_id", _NUM),
                    _col("title", _TXT, "book title"),
                    _col("author", _TXT, "writer"),
                    _col("pages", _NUM, "page count", "length"),
                    _col("year", _NUM, "publication year"),
                ),
                primary_key="book_id",
            ),
            TableSchema(
                "loans",
                (
                    _col("loan_id", _NUM),
                    _col("book_id", _NUM),
                    _col("member", _TXT, "borrower", "member name"),
                    _col("loan_date", _DATE, "date borrowed"),
                ),
                primary_key="loan_id",
                synonyms=("checkouts", "borrowings"),
            ),
        ),
        foreign_keys=(ForeignKey("loans", "book_id", "books", "book_id"),),
    )
    vocabulary = {
        "title": (
            "The Quiet Valley", "A History of Maps", "Practical Gardens",
            "River Mathematics", "Letters from Nowhere", "The Coral Atlas",
            "Night Trains", "Field Notes",
        ),
        "author": _PEOPLE,
        "member": _PEOPLE,
        "date": _DATES,
    }
    return Domain(name="library", schema=schema, vocabulary=vocabulary)


def _sports_domain() -> Domain:
    schema = Schema(
        db_id="sports",
        domain="sports",
        tables=(
            TableSchema(
                "teams",
                (
                    _col("team_id", _NUM),
                    _col("name", _TXT, "team name", "club"),
                    _col("city", _TXT, "home city"),
                    _col("wins", _NUM, "victories", "games won"),
                    _col("losses", _NUM, "defeats", "games lost"),
                ),
                primary_key="team_id",
                synonyms=("clubs", "squads"),
            ),
            TableSchema(
                "players",
                (
                    _col("player_id", _NUM),
                    _col("name", _TXT, "player name", "athlete"),
                    _col("team_id", _NUM),
                    _col("position", _TXT, "role"),
                    _col("points", _NUM, "score", "points scored"),
                ),
                primary_key="player_id",
                synonyms=("athletes", "roster"),
            ),
        ),
        foreign_keys=(ForeignKey("players", "team_id", "teams", "team_id"),),
    )
    vocabulary = {
        "name": _PEOPLE + ("Falcons", "Rovers", "Comets", "Pioneers",
                           "Harbor Sharks", "Summit Bears", "River Hawks",
                           "Iron Wolves"),
        "city": _CITIES,
        "position": ("guard", "forward", "center", "keeper", "striker",
                     "midfielder", "defender"),
    }
    return Domain(name="sports", schema=schema, vocabulary=vocabulary)


_FACTORIES = (
    _sales_domain,
    _flights_domain,
    _geography_domain,
    _academic_domain,
    _healthcare_domain,
    _restaurants_domain,
    _movies_domain,
    _employees_domain,
    _library_domain,
    _sports_domain,
)


def all_domains() -> list[Domain]:
    """Fresh copies of every curated domain, in a stable order."""
    return [factory() for factory in _FACTORIES]


def domain_by_name(name: str) -> Domain:
    """Look up one domain by its name; raise KeyError when unknown."""
    for domain in all_domains():
        if domain.name == name:
            return domain
    raise KeyError(f"unknown domain {name!r}")


def domain_names() -> list[str]:
    return [domain.name for domain in all_domains()]
