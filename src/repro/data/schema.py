"""Relational schema model: columns, tables, keys, and whole-schema graph.

The schema is the ``s`` in the survey's problem definition ``x = {q, s}``:
it is what semantic parsers link question tokens against.  The model keeps
names case-preserved but all lookups are case-insensitive, matching the SQL
substrate.  :meth:`Schema.graph` exposes the schema as a ``networkx`` graph
for the graph-encoder parser family (RAT-SQL, SADGA, LGESQL lineage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx

from repro.errors import AnalysisError


class ColumnType(enum.Enum):
    """Logical column type used by generators, linkers, and the analyzer."""

    NUMBER = "number"
    TEXT = "text"
    DATE = "date"  # stored as ISO-8601 text; compares lexicographically
    BOOLEAN = "boolean"

    @property
    def family(self) -> str:
        """Collapse to the executor's ``number``/``text`` families."""
        if self in (ColumnType.NUMBER, ColumnType.BOOLEAN):
            return "number"
        return "text"


@dataclass(frozen=True)
class Column:
    """A column: name, logical type, and optional human-readable synonyms.

    ``synonyms`` are alternative natural-language names ("salary" for
    column ``wage``) used by the NLG channel and by schema linkers.
    """

    name: str
    type: ColumnType = ColumnType.TEXT
    synonyms: tuple[str, ...] = ()

    def mentions(self) -> tuple[str, ...]:
        """All natural-language surface forms for this column."""
        readable = self.name.replace("_", " ").lower()
        return (readable,) + tuple(s.lower() for s in self.synonyms)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge ``table.column -> ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str


@dataclass(frozen=True)
class TableSchema:
    """A table: name, ordered columns, optional primary key and synonyms."""

    name: str
    columns: tuple[Column, ...]
    primary_key: str | None = None
    synonyms: tuple[str, ...] = ()

    def column(self, name: str) -> Column:
        """Look up a column case-insensitively; raise AnalysisError if absent."""
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        raise AnalysisError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(col.name.lower() == lowered for col in self.columns)

    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def mentions(self) -> tuple[str, ...]:
        """All natural-language surface forms for this table."""
        readable = self.name.replace("_", " ").lower()
        return (readable,) + tuple(s.lower() for s in self.synonyms)


@dataclass(frozen=True)
class Schema:
    """A database schema: named tables plus foreign-key edges.

    ``db_id`` identifies the database in benchmark datasets (mirroring
    Spider's ``db_id``); ``domain`` tags the subject area for cross-domain
    dataset construction.
    """

    db_id: str
    tables: tuple[TableSchema, ...]
    foreign_keys: tuple[ForeignKey, ...] = ()
    domain: str = "general"

    def table(self, name: str) -> TableSchema:
        """Look up a table case-insensitively; raise AnalysisError if absent."""
        lowered = name.lower()
        for table in self.tables:
            if table.name.lower() == lowered:
                return table
        raise AnalysisError(f"schema {self.db_id!r} has no table {name!r}")

    def has_table(self, name: str) -> bool:
        lowered = name.lower()
        return any(t.name.lower() == lowered for t in self.tables)

    def table_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tables)

    def columns_of(self, table_name: str) -> tuple[Column, ...]:
        return self.table(table_name).columns

    def all_columns(self) -> list[tuple[str, Column]]:
        """All (table name, column) pairs in schema order."""
        return [(t.name, c) for t in self.tables for c in t.columns]

    def foreign_keys_between(self, left: str, right: str) -> list[ForeignKey]:
        """Foreign keys connecting *left* and *right* in either direction."""
        left_l, right_l = left.lower(), right.lower()
        found = []
        for fk in self.foreign_keys:
            pair = (fk.table.lower(), fk.ref_table.lower())
            if pair in ((left_l, right_l), (right_l, left_l)):
                found.append(fk)
        return found

    def graph(self) -> nx.Graph:
        """Schema graph: table and column nodes, membership and FK edges.

        Node names are ``"table:<name>"`` and ``"column:<table>.<col>"``;
        edge ``kind`` attributes are ``"member"``, ``"fk"``, or
        ``"primary"``.  This is the structure graph-based encoders consume.
        """
        graph = nx.Graph()
        for table in self.tables:
            tnode = f"table:{table.name.lower()}"
            graph.add_node(tnode, kind="table", label=table.name)
            for col in table.columns:
                cnode = f"column:{table.name.lower()}.{col.name.lower()}"
                graph.add_node(
                    cnode, kind="column", label=col.name, type=col.type.value
                )
                edge_kind = (
                    "primary"
                    if table.primary_key
                    and col.name.lower() == table.primary_key.lower()
                    else "member"
                )
                graph.add_edge(tnode, cnode, kind=edge_kind)
        for fk in self.foreign_keys:
            src = f"column:{fk.table.lower()}.{fk.column.lower()}"
            dst = f"column:{fk.ref_table.lower()}.{fk.ref_column.lower()}"
            if graph.has_node(src) and graph.has_node(dst):
                graph.add_edge(src, dst, kind="fk")
        return graph

    def join_path(self, left: str, right: str) -> list[str]:
        """Shortest table-level join path from *left* to *right* via FK edges.

        Returns the list of table names along the path (inclusive).  Raises
        :class:`AnalysisError` when the tables are not connected.
        """
        graph = nx.Graph()
        for table in self.tables:
            graph.add_node(table.name.lower())
        for fk in self.foreign_keys:
            graph.add_edge(fk.table.lower(), fk.ref_table.lower())
        try:
            path = nx.shortest_path(graph, left.lower(), right.lower())
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise AnalysisError(
                f"no join path between {left!r} and {right!r} in {self.db_id!r}"
            ) from exc
        return [self.table(name).name for name in path]

    def validate(self) -> None:
        """Check internal consistency; raise AnalysisError on any problem."""
        seen: set[str] = set()
        for table in self.tables:
            lowered = table.name.lower()
            if lowered in seen:
                raise AnalysisError(f"duplicate table name {table.name!r}")
            seen.add(lowered)
            col_seen: set[str] = set()
            for col in table.columns:
                if col.name.lower() in col_seen:
                    raise AnalysisError(
                        f"duplicate column {col.name!r} in table {table.name!r}"
                    )
                col_seen.add(col.name.lower())
            if table.primary_key and not table.has_column(table.primary_key):
                raise AnalysisError(
                    f"primary key {table.primary_key!r} missing from "
                    f"table {table.name!r}"
                )
        for fk in self.foreign_keys:
            self.table(fk.table).column(fk.column)
            self.table(fk.ref_table).column(fk.ref_column)
