"""Feature extraction for the neural-stage models.

Two feature families:

- **question features** (for sketch-bit classifiers): hashed unigrams and
  (configurable) bigrams of the question;
- **role-column features** (for schema rankers): lexical overlap between a
  column/table's surface forms and the question, type flags, and
  (configurable) *context* features describing which cue region of the
  question the mention occurs in, plus (configurable) *graph* features
  describing FK adjacency — the relation-aware encoding that separates the
  RAT-SQL family from plain sequence encoders in the survey's taxonomy.

Everything is deterministic: hashing uses a fixed polynomial hash, not
Python's randomized ``hash``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.data.schema import Column, ColumnType, Schema, TableSchema


@dataclass(frozen=True)
class FeatureConfig:
    """Feature switches selecting the neural sub-family.

    ``bigrams``      richer question encoding (Transformer-era models)
    ``context``      role-context features (relation-aware encoders)
    ``graph``        FK/graph features (graph-based encoders)
    ``value_link``   database content matching for value features
    ``dim``          hashed question-feature dimensionality
    """

    bigrams: bool = True
    context: bool = True
    graph: bool = True
    value_link: bool = True
    world_knowledge: bool = False
    dim: int = 2048


_WORD_RE = re.compile(r"[a-z0-9']+")

#: cue words whose presence near a mention signals its role
_ROLE_CUES: dict[str, tuple[str, ...]] = {
    "condition": ("whose", "that", "have", "is", "equals", "greater",
                  "less", "above", "below", "exceeds", "between",
                  "contains", "includes", "least", "most"),
    "group": ("each", "per", "grouped", "broken", "down"),
    "order": ("sorted", "ordered", "ascending", "descending", "order",
              "top", "bottom", "high", "low", "decreasing"),
    "agg": ("average", "mean", "typical", "total", "sum", "combined",
            "minimum", "maximum", "lowest", "highest", "smallest",
            "largest", "number", "many", "count"),
    "projection": ("show", "list", "what", "give", "return", "find",
                   "display", "of"),
}

ROLES = tuple(_ROLE_CUES)


def tokenize_question(question: str) -> list[str]:
    return _WORD_RE.findall(question.lower())


def _stable_hash(text: str) -> int:
    value = 2166136261
    for ch in text:
        value = ((value ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return value


def question_vector(question: str, config: FeatureConfig) -> np.ndarray:
    """Hashed bag-of-ngrams vector for the sketch-bit classifiers.

    Two synthetic indicator tokens are added — quoted-span presence and
    numeral presence — the structural cues pointer decoders condition on.
    """
    tokens = tokenize_question(question)
    vec = np.zeros(config.dim, dtype=np.float32)
    for token in tokens:
        vec[_stable_hash("u:" + token) % config.dim] += 1.0
    if config.bigrams:
        for left, right in zip(tokens, tokens[1:]):
            vec[_stable_hash(f"b:{left}_{right}") % config.dim] += 1.0
    if "'" in question:
        vec[_stable_hash("ind:quoted") % config.dim] += 1.0
    if re.search(r"\d", question):
        vec[_stable_hash("ind:number") % config.dim] += 1.0
    norm = np.linalg.norm(vec)
    if norm > 0:
        vec /= norm
    return vec


# ----------------------------------------------------------------------
# role-column features
# ----------------------------------------------------------------------
#: fixed feature layout for the column ranker
COLUMN_FEATURES = (
    "exact_overlap", "partial_overlap", "synonym_overlap", "is_numeric",
    "is_text", "is_date", "is_key", "in_main_table", "fk_adjacent",
    "cue_condition", "cue_group", "cue_order", "cue_agg", "cue_projection",
    "mention_early", "mention_late", "value_type_match", "bias",
)


def column_features(
    question: str,
    column: Column,
    table: TableSchema,
    main_table: TableSchema | None,
    schema: Schema,
    role: str,
    config: FeatureConfig,
    value_is_numeric: bool | None = None,
) -> np.ndarray:
    """Feature vector scoring *column* as the filler of *role*."""
    lowered = question.lower()
    tokens = tokenize_question(question)
    vec = np.zeros(len(COLUMN_FEATURES), dtype=np.float32)
    idx = {name: i for i, name in enumerate(COLUMN_FEATURES)}

    mentions = column.mentions()
    if config.world_knowledge:
        # PLM/LLM-grade lexical knowledge: out-of-schema synonyms link too
        from repro.nlg.perturb import OUT_OF_SCHEMA_SYNONYMS

        mentions = mentions + OUT_OF_SCHEMA_SYNONYMS.get(mentions[0], ())
    position = -1
    exact = 0.0
    partial = 0.0
    synonym = 0.0
    for m_index, mention in enumerate(mentions):
        pos = lowered.find(mention)
        if pos >= 0:
            exact = 1.0
            if m_index > 0:
                synonym = 1.0
            position = pos
            break
    if exact == 0.0:
        base_words = set(mentions[0].split())
        shared = base_words & set(tokens)
        if shared:
            partial = len(shared) / len(base_words)
            position = min(
                (lowered.find(w) for w in shared if lowered.find(w) >= 0),
                default=-1,
            )

    vec[idx["exact_overlap"]] = exact
    vec[idx["partial_overlap"]] = partial
    vec[idx["synonym_overlap"]] = synonym
    vec[idx["is_numeric"]] = float(column.type is ColumnType.NUMBER)
    vec[idx["is_text"]] = float(column.type is ColumnType.TEXT)
    vec[idx["is_date"]] = float(column.type is ColumnType.DATE)
    name = column.name.lower()
    vec[idx["is_key"]] = float(name == "id" or name.endswith("_id"))
    if main_table is not None:
        vec[idx["in_main_table"]] = float(
            table.name.lower() == main_table.name.lower()
        )
        if config.graph and table.name.lower() != main_table.name.lower():
            vec[idx["fk_adjacent"]] = float(
                bool(schema.foreign_keys_between(main_table.name, table.name))
            )

    if config.context and position >= 0:
        window = _window_words(lowered, position, radius=28)
        for cue_role, cues in _ROLE_CUES.items():
            if any(cue in window for cue in cues):
                vec[idx[f"cue_{cue_role}"]] = 1.0
        vec[idx["mention_early"]] = float(position < len(lowered) * 0.4)
        vec[idx["mention_late"]] = float(position > len(lowered) * 0.6)

    if config.value_link and value_is_numeric is not None:
        matches = (
            value_is_numeric and column.type is ColumnType.NUMBER
        ) or (not value_is_numeric and column.type is not ColumnType.NUMBER)
        vec[idx["value_type_match"]] = float(matches)

    vec[idx["bias"]] = 1.0
    return vec


TABLE_FEATURES = (
    "exact_overlap", "partial_overlap", "synonym_overlap",
    "column_mentions", "has_fk", "bias",
)


def table_features(
    question: str,
    table: TableSchema,
    schema: Schema,
    config: FeatureConfig,
) -> np.ndarray:
    """Feature vector scoring *table* as the query's main table."""
    lowered = question.lower()
    tokens = set(tokenize_question(question))
    vec = np.zeros(len(TABLE_FEATURES), dtype=np.float32)
    idx = {name: i for i, name in enumerate(TABLE_FEATURES)}

    for m_index, mention in enumerate(table.mentions()):
        variants = (mention, mention.rstrip("s"), mention + "s")
        if any(v in lowered for v in variants):
            vec[idx["exact_overlap"]] = 1.0
            if m_index > 0:
                vec[idx["synonym_overlap"]] = 1.0
            break
    else:
        base_words = set(table.mentions()[0].split())
        shared = base_words & tokens
        if shared:
            vec[idx["partial_overlap"]] = len(shared) / len(base_words)

    column_hits = 0
    for column in table.columns:
        if column.mentions()[0] in lowered:
            column_hits += 1
    vec[idx["column_mentions"]] = min(column_hits, 4) / 4.0

    if config.graph:
        vec[idx["has_fk"]] = float(
            any(
                fk.table.lower() == table.name.lower()
                or fk.ref_table.lower() == table.name.lower()
                for fk in schema.foreign_keys
            )
        )
    vec[idx["bias"]] = 1.0
    return vec


def _window_words(text: str, position: int, radius: int) -> str:
    start = max(0, position - radius)
    end = min(len(text), position + radius)
    return text[start:end]
