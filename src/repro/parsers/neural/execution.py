"""Execution-guided decoding (Wang et al. 2018; SQLova's EG mode).

The wrapper takes any base parser's ranked candidate list, executes each
candidate against the database, and keeps the first one that (a) executes
without error and (b) — in strict mode — returns a non-empty result.  When
every candidate fails, the base parser's original best is kept, so the
wrapper can only help, exactly as the surveyed execution-guided decoders
report.
"""

from __future__ import annotations

from repro.data.database import Database
from repro.errors import SQLError
from repro.parsers.base import ParseRequest, ParseResult, Parser
from repro.sql.ast import Query
from repro.sql.executor import execute


class ExecutionGuidedParser(Parser):
    """Wrap a base parser with execution-guided candidate filtering."""

    def __init__(
        self,
        base: Parser,
        strict_nonempty: bool = True,
        name: str | None = None,
    ) -> None:
        self.base = base
        self.strict_nonempty = strict_nonempty
        self.name = name or f"{base.name} + execution-guided"
        self.stage = base.stage
        self.year = max(base.year, 2018)

    def train(self, examples, databases) -> None:
        self.base.train(examples, databases)

    def parse(self, request: ParseRequest) -> ParseResult:
        result = self.base.parse(request)
        if result.query is None or request.db is None:
            return result
        candidates = result.candidates or [result.query]
        chosen = self._first_executable(candidates, request.db)
        if chosen is None:
            return result
        return ParseResult(
            query=chosen,
            candidates=candidates,
            confidence=result.confidence,
            notes=result.notes,
        )

    def _first_executable(
        self, candidates: list[Query], db: Database
    ) -> Query | None:
        fallback = None
        for candidate in candidates:
            try:
                result = execute(candidate, db)
            except SQLError:
                continue
            if fallback is None:
                fallback = candidate
            if not self.strict_nonempty or result.rows:
                return candidate
        return fallback
