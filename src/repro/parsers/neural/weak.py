"""Weakly supervised learning from denotations (survey Section 6.3).

The survey's "advanced learning methods" direction: reduce the reliance on
gold SQL annotations by learning from *weak* signals.  This module
implements the classic denotation-supervision recipe (hard-EM style, in
the lineage of weakly supervised semantic parsing):

1. the trainer sees only (question, answer rows) pairs — never gold SQL;
2. a weight-free candidate enumerator proposes queries from lexical
   overlap, cue words, and pointer values (the searcher's inductive bias);
3. candidates whose execution matches the denotation become pseudo-gold
   (ties broken by query simplicity — an Occam prior);
4. the standard grammar parser trains on the pseudo-gold corpus.

On our benchmarks the weakly supervised parser recovers most of the fully
supervised accuracy (see ``tests/test_parsers_weak.py``), the survey's
motivating claim for the direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.database import Database
from repro.data.schema import ColumnType, Schema, TableSchema
from repro.data.values import Value
from repro.datasets.base import Example
from repro.errors import SQLError
from repro.metrics.execution import results_equal
from repro.parsers.base import NEURAL
from repro.parsers.neural.grammar import GrammarNeuralParser
from repro.parsers.neural.values import (
    extract_numbers,
    string_candidates,
)
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Query,
    Select,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.executor import execute
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql


@dataclass(frozen=True)
class Denotation:
    """One weak training signal: a question and its answer rows."""

    question: str
    db_id: str
    rows: tuple[tuple[Value, ...], ...]

    @classmethod
    def from_example(cls, example: Example, db: Database) -> "Denotation":
        """Derive the denotation by executing the gold — the trainer then
        only ever sees the rows, never the SQL."""
        result = execute(parse_sql(example.sql), db)
        return cls(
            question=example.question,
            db_id=example.db_id,
            rows=tuple(result.rows),
        )


_AGG_CUES = {
    "count": ("how many", "number of", "count of"),
    "avg": ("average", "mean", "typical"),
    "sum": ("total", "sum", "combined"),
    "min": ("minimum", "lowest", "smallest"),
    "max": ("maximum", "highest", "largest"),
}

_GROUP_CUES = ("each", "per", "grouped by", "broken down by")


def enumerate_candidates(
    question: str,
    schema: Schema,
    db: Database,
    limit: int = 300,
) -> list[Query]:
    """Weight-free candidate search over the query space.

    No learned parameters: tables/columns come from lexical overlap with
    the question, aggregates from cue words, values from the pointer
    channels.  The enumeration order is simplest-first so the Occam tie
    break falls out of taking the first denotation match.
    """
    lowered = question.lower()
    tables = _mentioned_tables(lowered, schema) or list(schema.tables)
    numbers = [c.value for c in extract_numbers(question)]
    strings = [
        c.value for c in string_candidates(question, db, value_link=True)
    ]

    aggs = [
        func
        for func, cues in _AGG_CUES.items()
        if any(cue in lowered for cue in cues)
    ]
    wants_group = any(cue in lowered for cue in _GROUP_CUES)

    candidates: list[Query] = []
    for table in tables[:2]:
        overlap_columns = _overlap_columns(lowered, table)
        projections = overlap_columns or [table.columns[0]]
        condition_columns = list(table.columns)

        heads: list[tuple[SelectItem, ...]] = []
        if aggs:
            for func in aggs:
                if func == "count":
                    heads.append(
                        (SelectItem(expr=FuncCall("count", (Star(),))),)
                    )
                else:
                    for column in table.columns:
                        if column.type is not ColumnType.NUMBER:
                            continue
                        heads.append(
                            (
                                SelectItem(
                                    expr=FuncCall(
                                        func,
                                        (ColumnRef(column.name.lower()),),
                                    )
                                ),
                            )
                        )
        else:
            for column in projections[:3]:
                heads.append(
                    (SelectItem(expr=ColumnRef(column.name.lower())),)
                )

        group_columns = (
            [
                c
                for c in table.columns
                if c.type is ColumnType.TEXT
            ][:3]
            if wants_group
            else [None]
        )

        for head in heads:
            for group in group_columns:
                items = head
                group_by = ()
                if group is not None:
                    group_ref = ColumnRef(group.name.lower())
                    items = (SelectItem(expr=group_ref),) + head
                    group_by = (group_ref,)
                base = Select(
                    items=items,
                    from_=TableRef(name=table.name.lower()),
                    group_by=group_by,
                )
                candidates.append(base)
                for column in condition_columns:
                    values: list[Value]
                    ops: tuple[str, ...]
                    if column.type is ColumnType.NUMBER:
                        values = numbers
                        ops = ("=", ">", "<", ">=", "<=")
                    else:
                        values = strings
                        ops = ("=",)
                    for value in values[:3]:
                        for op in ops:
                            condition = BinaryOp(
                                op=op,
                                left=ColumnRef(column.name.lower()),
                                right=_literal(value),
                            )
                            candidates.append(
                                Select(
                                    items=items,
                                    from_=TableRef(name=table.name.lower()),
                                    where=condition,
                                    group_by=group_by,
                                )
                            )
                            if len(candidates) >= limit:
                                return candidates
    return candidates


class WeaklySupervisedParser(GrammarNeuralParser):
    """Grammar parser trained from denotations only."""

    stage = NEURAL
    name = "weakly supervised parser"
    year = 2021

    def train_from_denotations(
        self,
        denotations: list[Denotation],
        databases: dict[str, Database],
    ) -> None:
        """Hard-EM training: search → pseudo-label → supervised fit."""
        pseudo: list[Example] = []
        self.search_hits = 0
        for signal in denotations:
            db = databases.get(signal.db_id)
            if db is None:
                continue
            match = self._search(signal, db)
            if match is None:
                continue
            self.search_hits += 1
            pseudo.append(
                Example(
                    question=signal.question,
                    db_id=signal.db_id,
                    sql=to_sql(match),
                )
            )
        self.pseudo_corpus = pseudo
        super().train(pseudo, databases)

    def _search(self, signal: Denotation, db: Database) -> Query | None:
        from repro.sql.executor import Result

        target = Result(columns=[], rows=list(signal.rows), ordered=False)
        for candidate in enumerate_candidates(
            signal.question, db.schema, db
        ):
            try:
                result = execute(candidate, db)
            except SQLError:
                continue
            if results_equal(result, target):
                return candidate
        return None


# ----------------------------------------------------------------------
def _mentioned_tables(lowered: str, schema: Schema) -> list[TableSchema]:
    out = []
    for table in schema.tables:
        for mention in table.mentions():
            variants = (mention, mention.rstrip("s"))
            if any(v in lowered for v in variants):
                out.append(table)
                break
    return out


def _overlap_columns(lowered: str, table: TableSchema):
    out = []
    for column in table.columns:
        if any(mention in lowered for mention in column.mentions()):
            out.append(column)
    return out


def _literal(value: Value):
    from repro.sql.ast import Literal

    return Literal(value)
