"""Minimal learners used by the neural-stage parsers.

Two numpy models, trained by plain minibatch SGD:

- :class:`SoftmaxClassifier` — multinomial logistic regression, used for
  sketch-bit prediction (aggregate choice, clause presence, set-op type);
- :class:`LinearRanker` — a pairwise hinge-loss ranker over feature
  vectors, used for table and column scoring (a linear stand-in for the
  attention-based pointer scorers of the surveyed models).

Both are deterministic given their seed and expose ``state_dict`` /
``load_state`` so the PLM stage can pretrain, snapshot, and fine-tune.
"""

from __future__ import annotations

import numpy as np


class SoftmaxClassifier:
    """Multinomial logistic regression with L2 regularization."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        learning_rate: float = 1.0,
        l2: float = 1e-5,
        epochs: int = 60,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.weights = np.zeros((num_features, num_classes), dtype=np.float32)
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Train on (N, F) features and (N,) integer labels."""
        if len(features) == 0:
            return
        rng = np.random.default_rng(self.seed)
        n = len(features)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                x = features[batch]
                y = labels[batch]
                probs = self._softmax(x @ self.weights)
                grad = x.T @ (probs - _one_hot(y, self.weights.shape[1]))
                grad /= len(batch)
                grad += self.l2 * self.weights
                self.weights -= self.learning_rate * grad

    def predict(self, features: np.ndarray) -> int:
        return int(np.argmax(features @ self.weights))

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self._softmax(features @ self.weights)

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        logits = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=-1, keepdims=True)

    def state_dict(self) -> dict:
        return {"weights": self.weights.copy()}

    def load_state(self, state: dict) -> None:
        self.weights = state["weights"].copy()


class LinearRanker:
    """Pairwise hinge-loss ranker: score(x) = w·x, gold above negatives."""

    def __init__(
        self,
        num_features: int,
        learning_rate: float = 0.2,
        l2: float = 1e-4,
        epochs: int = 10,
        margin: float = 0.2,
        seed: int = 0,
    ) -> None:
        self.weights = np.zeros(num_features, dtype=np.float32)
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.margin = margin
        self.seed = seed

    def fit(self, groups: list[tuple[np.ndarray, int]]) -> None:
        """Train on groups of (candidate feature matrix, gold row index)."""
        if not groups:
            return
        rng = np.random.default_rng(self.seed)
        for _ in range(self.epochs):
            for index in rng.permutation(len(groups)):
                candidates, gold = groups[index]
                if len(candidates) < 2:
                    continue
                scores = candidates @ self.weights
                gold_score = scores[gold]
                for row in range(len(candidates)):
                    if row == gold:
                        continue
                    if scores[row] + self.margin > gold_score:
                        update = self.learning_rate * (
                            candidates[gold] - candidates[row]
                        )
                        self.weights += update
                        self.weights -= (
                            self.learning_rate * self.l2 * self.weights
                        )

    def score(self, candidates: np.ndarray) -> np.ndarray:
        return candidates @ self.weights

    def best(self, candidates: np.ndarray) -> int:
        return int(np.argmax(self.score(candidates)))

    def state_dict(self) -> dict:
        return {"weights": self.weights.copy()}

    def load_state(self, state: dict) -> None:
        self.weights = state["weights"].copy()


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    out = np.zeros((len(labels), num_classes), dtype=np.float32)
    out[np.arange(len(labels)), labels] = 1.0
    return out
