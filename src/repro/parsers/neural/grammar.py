"""Grammar-decoding neural parser (IRNet / RAT-SQL / LGESQL lineage).

The parser predicts a query in two learned stages, mirroring the surveyed
grammar-based decoders:

1. **sketch bits** — softmax classifiers over hashed question features
   decide the clause skeleton: aggregate choice, grouping, ordering and
   direction, limit presence, condition count and kind, set operation,
   nesting, distinctness, projection arity;
2. **slot filling** — linear rankers score schema tables/columns as the
   filler of each role (main table, projection, condition, group, order,
   aggregate argument), using lexical-overlap, type, role-context, and —
   when :class:`~repro.parsers.neural.features.FeatureConfig` enables graph
   features — FK-adjacency features (the RAT-SQL relation-aware channel).

Values are copied from the question via the pointer channel
(:mod:`repro.parsers.neural.values`).  Everything is trained with SGD on
gold slots; nothing consults the gold at inference.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import Database
from repro.data.schema import Column, ColumnType, Schema, TableSchema
from repro.datasets.base import Example
from repro.errors import NLParseError, SQLError
from repro.parsers.base import NEURAL, ParseRequest, ParseResult, Parser
from repro.parsers.neural.features import (
    COLUMN_FEATURES,
    FeatureConfig,
    TABLE_FEATURES,
    column_features,
    question_vector,
    table_features,
)
from repro.parsers.neural.models import LinearRanker, SoftmaxClassifier
from repro.parsers.neural.slots import (
    AGG_CLASSES,
    COND_AVG,
    COND_BETWEEN,
    COND_COMPARE,
    COND_LIKE,
    GoldSlots,
    OP_CLASSES,
    SETOP_CLASSES,
    extract_slots,
)
from repro.parsers.neural.values import (
    extract_numbers,
    extract_quoted,
    extract_reserved_number,
    string_candidates,
)
from repro.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InSubquery,
    Join,
    Like,
    Literal,
    OrderItem,
    Query,
    ScalarSubquery,
    Select,
    SelectItem,
    SetOperation,
    Star,
    TableRef,
)
from repro.sql.parser import parse_sql

#: the learned role rankers
_ROLES = ("projection", "condition", "group", "order", "agg")

#: sketch-bit classifier heads: name -> number of classes
_HEADS = {
    "agg": len(AGG_CLASSES),
    "group": 2,
    "order": 3,       # none / asc / desc
    "limit": 2,
    "n_conds": 3,     # 0 / 1 / 2
    "cond_kind": 4,   # compare / like / between / avg_compare
    "setop": len(SETOP_CLASSES),
    "nested": 2,
    "distinct": 2,
    "n_proj": 2,      # 1 or 2 projection columns
}

_COND_KINDS = (COND_COMPARE, COND_LIKE, COND_BETWEEN, COND_AVG)


class GrammarNeuralParser(Parser):
    """See module docstring."""

    stage = NEURAL
    year = 2019

    def __init__(
        self,
        config: FeatureConfig | None = None,
        name: str = "grammar neural parser",
        year: int = 2019,
        seed: int = 0,
        epochs: int = 60,
    ) -> None:
        self.config = config or FeatureConfig()
        self.name = name
        self.year = year
        self.seed = seed
        self.epochs = epochs
        self.heads = {
            head: SoftmaxClassifier(
                self.config.dim, classes, epochs=epochs, seed=seed
            )
            for head, classes in _HEADS.items()
        }
        self.op_head = SoftmaxClassifier(
            self.config.dim, len(OP_CLASSES), epochs=epochs, seed=seed
        )
        self.table_ranker = LinearRanker(
            len(TABLE_FEATURES), epochs=epochs, seed=seed
        )
        self.role_rankers = {
            role: LinearRanker(len(COLUMN_FEATURES), epochs=epochs, seed=seed)
            for role in _ROLES
        }
        self.trained = False

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(
        self,
        examples: list[Example],
        databases: dict[str, Database],
    ) -> None:
        head_features: dict[str, list[np.ndarray]] = {h: [] for h in _HEADS}
        head_labels: dict[str, list[int]] = {h: [] for h in _HEADS}
        op_features: list[np.ndarray] = []
        op_labels: list[int] = []
        table_groups: list[tuple[np.ndarray, int]] = []
        role_groups: dict[str, list[tuple[np.ndarray, int]]] = {
            role: [] for role in _ROLES
        }

        for example in examples:
            db = databases.get(example.db_id)
            if db is None:
                continue
            slots = self._gold_slots(example)
            if slots is None:
                continue
            schema = db.schema
            question = example.question

            qvec = question_vector(question, self.config)
            labels = {
                "agg": slots.agg_label(),
                "group": slots.group_label(),
                "order": slots.order_label(),
                "limit": slots.limit_label(),
                "n_conds": slots.conds_label(),
                "cond_kind": slots.cond_kind_label(),
                "setop": slots.setop_label(),
                "nested": slots.nested_label(),
                "distinct": slots.distinct_label(),
                "n_proj": min(len(slots.projection), 2) - 1
                if slots.projection
                else 0,
            }
            for head, label in labels.items():
                head_features[head].append(qvec)
                head_labels[head].append(label)

            self._collect_table_group(
                question, schema, slots.main_table, table_groups
            )
            self._collect_role_groups(
                question, schema, slots, role_groups
            )
            self._collect_op_examples(
                question, schema, slots, op_features, op_labels
            )

        for head, classifier in self.heads.items():
            if head_features[head]:
                classifier.fit(
                    np.stack(head_features[head]),
                    np.array(head_labels[head]),
                )
        if op_features:
            self.op_head.fit(np.stack(op_features), np.array(op_labels))
        self.table_ranker.fit(table_groups)
        for role, ranker in self.role_rankers.items():
            ranker.fit(role_groups[role])
        self.trained = True

    def _gold_slots(self, example: Example) -> GoldSlots | None:
        try:
            query = parse_sql(example.sql)
        except SQLError:
            return None
        return extract_slots(query)

    def _collect_table_group(
        self,
        question: str,
        schema: Schema,
        gold_table: str,
        groups: list[tuple[np.ndarray, int]],
    ) -> None:
        tables = list(schema.tables)
        if len(tables) < 2:
            return
        features = np.stack(
            [table_features(question, t, schema, self.config) for t in tables]
        )
        gold = next(
            (
                i
                for i, t in enumerate(tables)
                if t.name.lower() == gold_table
            ),
            None,
        )
        if gold is not None:
            groups.append((features, gold))

    def _collect_role_groups(
        self,
        question: str,
        schema: Schema,
        slots: GoldSlots,
        role_groups: dict[str, list[tuple[np.ndarray, int]]],
    ) -> None:
        main = schema.table(slots.main_table)
        role_targets: dict[str, tuple[str | None, str] | None] = {
            "projection": slots.projection[0] if slots.projection else None,
            "condition": (
                slots.conditions[0].column if slots.conditions else None
            ),
            "group": slots.group,
            "order": slots.order,
            "agg": slots.agg_column,
        }
        all_columns = schema.all_columns()
        for role, target in role_targets.items():
            if target is None:
                continue
            target_table = target[0] or slots.main_table
            features = []
            gold = None
            for index, (table_name, column) in enumerate(all_columns):
                table = schema.table(table_name)
                features.append(
                    column_features(
                        question, column, table, main, schema, role,
                        self.config,
                    )
                )
                if (
                    table_name.lower() == target_table.lower()
                    and column.name.lower() == target[1]
                ):
                    gold = index
            if gold is not None and len(features) > 1:
                role_groups[role].append((np.stack(features), gold))

    def _collect_op_examples(
        self,
        question: str,
        schema: Schema,
        slots: GoldSlots,
        op_features: list[np.ndarray],
        op_labels: list[int],
    ) -> None:
        for condition in slots.conditions:
            if condition.kind != COND_COMPARE:
                continue
            window = self._op_window(question, schema, condition.column)
            op_features.append(question_vector(window, self.config))
            op_labels.append(OP_CLASSES.index(condition.op))

    def _op_window(
        self, question: str, schema: Schema, column: tuple[str | None, str]
    ) -> str:
        """The question span following the condition column's mention."""
        lowered = question.lower()
        surfaces = [column[1].replace("_", " ")]
        for table in schema.tables:
            if column[0] is not None and table.name.lower() != column[0]:
                continue
            for col in table.columns:
                if col.name.lower() == column[1]:
                    surfaces = list(col.mentions())
                    break
        position = -1
        for surface in surfaces:
            position = lowered.find(surface)
            if position >= 0:
                break
        if position < 0:
            return question
        return question[position : position + 60]

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def parse(self, request: ParseRequest) -> ParseResult:
        if not self.trained:
            return ParseResult(query=None, notes="parser is not trained")
        try:
            query, alternatives = self._predict(request)
        except NLParseError as exc:
            return ParseResult(query=None, notes=str(exc))
        return ParseResult(
            query=query, candidates=[query] + alternatives, confidence=0.7
        )

    # capability switches overridden by the sketch subclass
    supports_join = True
    supports_group = True
    supports_order = True
    supports_nested = True
    supports_setop = True

    def _predict(self, request: ParseRequest) -> tuple[Query, list[Query]]:
        question = request.question
        schema = request.schema
        qvec = question_vector(question, self.config)
        bits = {
            head: classifier.predict(qvec)
            for head, classifier in self.heads.items()
        }

        main = self._predict_table(question, schema)
        joins: list[str] = []

        items: list[SelectItem] = []
        group_ref: ColumnRef | None = None

        if bits["group"] == 1 and self.supports_group:
            group_col = self._predict_column(
                question, schema, main, "group",
                type_filter=(ColumnType.TEXT, ColumnType.DATE),
            )
            if group_col is not None:
                group_ref = self._make_ref(group_col, main, joins)

        agg = AGG_CLASSES[bits["agg"]]
        if agg != "none":
            if agg == "count":
                agg_expr = FuncCall(name="count", args=(Star(),))
            else:
                agg_col = self._predict_column(
                    question, schema, main, "agg",
                    type_filter=(ColumnType.NUMBER,),
                )
                if agg_col is None:
                    raise NLParseError("no aggregate column candidate")
                agg_expr = FuncCall(
                    name=agg, args=(self._make_ref(agg_col, main, joins),)
                )
            if group_ref is not None:
                items.append(SelectItem(expr=group_ref))
            items.append(SelectItem(expr=agg_expr))
        else:
            n_proj = bits["n_proj"] + 1
            columns = self._predict_columns(
                question, schema, main, "projection", top_k=n_proj
            )
            if not columns:
                raise NLParseError("no projection candidates")
            if group_ref is not None:
                items.append(SelectItem(expr=group_ref))
            for column in columns:
                items.append(
                    SelectItem(expr=self._make_ref(column, main, joins))
                )

        where = None
        n_conds = bits["n_conds"] if self.supports_group else min(
            bits["n_conds"], 2
        )
        nested_expr = None
        if bits["nested"] == 1 and self.supports_nested:
            nested_expr = self._predict_nested(question, schema, main)
        elif n_conds > 0:
            where = self._predict_conditions(
                question, schema, main, joins, n_conds,
                _COND_KINDS[bits["cond_kind"]], request.db,
            )
        if nested_expr is not None:
            where = (
                nested_expr
                if where is None
                else BinaryOp(op="and", left=where, right=nested_expr)
            )

        order_by: tuple[OrderItem, ...] = ()
        limit = None
        if bits["order"] > 0 and self.supports_order:
            order_col = self._predict_column(
                question, schema, main, "order",
                type_filter=(ColumnType.NUMBER,),
            )
            if order_col is not None:
                order_ref = self._make_ref(order_col, main, joins)
                order_by = (
                    OrderItem(expr=order_ref, descending=bits["order"] == 2),
                )
                if (
                    agg == "none"
                    and group_ref is None
                    and not any(
                        isinstance(i.expr, ColumnRef)
                        and i.expr.column == order_ref.column
                        for i in items
                    )
                    and bits["limit"] == 1
                    and extract_reserved_number(question, "top") is not None
                ):
                    items.append(SelectItem(expr=order_ref))
        if bits["limit"] == 1 and self.supports_order:
            limit = (
                extract_reserved_number(question, "top")
                or extract_reserved_number(question, "bottom")
                or 1
            )

        having = None
        having_min = extract_reserved_number(question, "at least")
        if having_min is not None and group_ref is not None:
            having = BinaryOp(
                op=">=",
                left=FuncCall(name="count", args=(Star(),)),
                right=Literal(having_min),
            )

        select = self._assemble(
            schema, main, items, joins, where, group_ref, having, order_by,
            limit, bool(bits["distinct"]),
        )

        setop = SETOP_CLASSES[bits["setop"]]
        if setop != "none" and self.supports_setop:
            second = self._predict_second_branch(
                question, schema, main, items, request.db
            )
            if second is not None:
                from dataclasses import replace as dc_replace

                return (
                    SetOperation(
                        op=setop,
                        left=dc_replace(select, order_by=(), limit=None),
                        right=second,
                    ),
                    [],
                )
        return select, []

    # ------------------------------------------------------------------
    def _predict_table(self, question: str, schema: Schema) -> TableSchema:
        tables = list(schema.tables)
        if len(tables) == 1:
            return tables[0]
        features = np.stack(
            [table_features(question, t, schema, self.config) for t in tables]
        )
        return tables[self.table_ranker.best(features)]

    def _candidate_columns(
        self,
        schema: Schema,
        main: TableSchema,
        type_filter: tuple[ColumnType, ...] | None,
    ) -> list[tuple[TableSchema, Column]]:
        out = []
        for table in schema.tables:
            if not self.supports_join and table.name != main.name:
                continue
            for column in table.columns:
                if type_filter and column.type not in type_filter:
                    continue
                out.append((table, column))
        return out

    def _score_columns(
        self,
        question: str,
        schema: Schema,
        main: TableSchema,
        role: str,
        candidates: list[tuple[TableSchema, Column]],
    ) -> np.ndarray:
        features = np.stack(
            [
                column_features(
                    question, column, table, main, schema, role, self.config
                )
                for table, column in candidates
            ]
        )
        return self.role_rankers[role].score(features)

    def _predict_column(
        self,
        question: str,
        schema: Schema,
        main: TableSchema,
        role: str,
        type_filter: tuple[ColumnType, ...] | None = None,
    ) -> tuple[TableSchema, Column] | None:
        columns = self._predict_columns(
            question, schema, main, role, top_k=1, type_filter=type_filter
        )
        return columns[0] if columns else None

    def _predict_columns(
        self,
        question: str,
        schema: Schema,
        main: TableSchema,
        role: str,
        top_k: int,
        type_filter: tuple[ColumnType, ...] | None = None,
    ) -> list[tuple[TableSchema, Column]]:
        candidates = self._candidate_columns(schema, main, type_filter)
        if not candidates:
            return []
        scores = self._score_columns(question, schema, main, role, candidates)
        order = np.argsort(-scores)
        return [candidates[int(i)] for i in order[:top_k]]

    def _make_ref(
        self,
        pick: tuple[TableSchema, Column],
        main: TableSchema,
        joins: list[str],
    ) -> ColumnRef:
        table, column = pick
        if table.name.lower() != main.name.lower():
            joins.append(table.name)
            return ColumnRef(
                column=column.name.lower(), table=table.name.lower()
            )
        return ColumnRef(column=column.name.lower())

    # ------------------------------------------------------------------
    def _predict_conditions(
        self,
        question: str,
        schema: Schema,
        main: TableSchema,
        joins: list[str],
        n_conds: int,
        first_kind: str,
        db: Database | None,
    ):
        numbers = extract_numbers(question)
        quoted = extract_quoted(question)
        strings = string_candidates(question, db, self.config.value_link)
        used_numbers = 0
        used_strings = 0

        picks = self._predict_columns(
            question, schema, main, "condition", top_k=n_conds
        )
        exprs = []
        for index, pick in enumerate(picks):
            kind = first_kind if index == 0 else COND_COMPARE
            table, column = pick
            ref = self._make_ref(pick, main, joins)
            if kind == COND_LIKE and quoted:
                exprs.append(
                    Like(
                        expr=ref,
                        pattern=Literal(f"%{quoted[0].value}%"),
                    )
                )
                continue
            if kind == COND_BETWEEN and len(numbers) - used_numbers >= 2:
                low = numbers[used_numbers].value
                high = numbers[used_numbers + 1].value
                used_numbers += 2
                if isinstance(low, (int, float)) and isinstance(
                    high, (int, float)
                ) and low > high:
                    low, high = high, low
                exprs.append(
                    Between(expr=ref, low=Literal(low), high=Literal(high))
                )
                continue
            if kind == COND_AVG:
                op = ">" if "above" in question.lower() else "<"
                inner = Select(
                    items=(
                        SelectItem(
                            expr=FuncCall(
                                name="avg",
                                args=(ColumnRef(column=ref.column),),
                            )
                        ),
                    ),
                    from_=TableRef(name=table.name.lower()),
                )
                exprs.append(
                    BinaryOp(op=op, left=ref, right=ScalarSubquery(inner))
                )
                continue
            # plain comparison
            op = OP_CLASSES[
                self.op_head.predict(
                    question_vector(
                        self._op_window(
                            question, schema,
                            (table.name.lower(), column.name.lower()),
                        ),
                        self.config,
                    )
                )
            ]
            if column.type is ColumnType.NUMBER:
                if used_numbers < len(numbers):
                    value = numbers[used_numbers].value
                    used_numbers += 1
                else:
                    continue
            else:
                if used_strings < len(strings):
                    value = strings[used_strings].value
                    used_strings += 1
                elif quoted:
                    value = quoted[0].value
                else:
                    continue
            exprs.append(BinaryOp(op=op, left=ref, right=Literal(value)))

        if not exprs:
            return None
        where = exprs[0]
        for expr in exprs[1:]:
            where = BinaryOp(op="and", left=where, right=expr)
        return where

    def _predict_nested(
        self, question: str, schema: Schema, main: TableSchema
    ):
        # child table: best non-main table by the table ranker
        others = [
            t
            for t in schema.tables
            if t.name.lower() != main.name.lower()
            and schema.foreign_keys_between(main.name, t.name)
        ]
        if not others:
            return None
        features = np.stack(
            [
                table_features(question, t, schema, self.config)
                for t in others
            ]
        )
        child = others[self.table_ranker.best(features)]
        fk = schema.foreign_keys_between(main.name, child.name)[0]
        if fk.table.lower() == child.name.lower():
            child_col, parent_col = fk.column, fk.ref_column
        else:
            child_col, parent_col = fk.ref_column, fk.column
        inner_joins: list[str] = []
        inner_where = self._predict_conditions(
            question, schema, child, inner_joins, 1, COND_COMPARE, None
        )
        if inner_where is None:
            return None
        inner = Select(
            items=(SelectItem(expr=ColumnRef(column=child_col.lower())),),
            from_=TableRef(name=child.name.lower()),
            where=inner_where,
        )
        return InSubquery(
            expr=ColumnRef(column=parent_col.lower()), query=inner
        )

    def _predict_second_branch(
        self,
        question: str,
        schema: Schema,
        main: TableSchema,
        items: list[SelectItem],
        db: Database | None,
    ) -> Select | None:
        """Second operand of a set operation: same projection, last value."""
        strings = string_candidates(question, db, self.config.value_link)
        numbers = extract_numbers(question)
        pick = self._predict_column(question, schema, main, "condition")
        if pick is None:
            return None
        table, column = pick
        if table.name.lower() != main.name.lower():
            return None
        ref = ColumnRef(column=column.name.lower())
        value = None
        if column.type is ColumnType.NUMBER and numbers:
            value = numbers[-1].value
        elif strings:
            value = strings[-1].value
        if value is None:
            return None
        plain_items = tuple(
            item for item in items if isinstance(item.expr, ColumnRef)
        )
        if not plain_items:
            return None
        return Select(
            items=plain_items,
            from_=TableRef(name=main.name.lower()),
            where=BinaryOp(op="=", left=ref, right=Literal(value)),
        )

    # ------------------------------------------------------------------
    def _assemble(
        self,
        schema: Schema,
        main: TableSchema,
        items: list[SelectItem],
        joins: list[str],
        where,
        group_ref,
        having,
        order_by,
        limit,
        distinct: bool,
    ) -> Select:
        from repro.parsers.semantic import _Qualifier

        from_clause = TableRef(name=main.name.lower())
        seen = {main.name.lower()}
        for other in joins:
            lowered = other.lower()
            if lowered in seen:
                continue
            fks = schema.foreign_keys_between(main.name, other)
            if not fks:
                continue
            fk = fks[0]
            condition = BinaryOp(
                op="=",
                left=ColumnRef(
                    column=fk.column.lower(), table=fk.table.lower()
                ),
                right=ColumnRef(
                    column=fk.ref_column.lower(), table=fk.ref_table.lower()
                ),
            )
            from_clause = Join(
                left=from_clause,
                right=TableRef(name=lowered),
                kind="inner",
                condition=condition,
            )
            seen.add(lowered)

        if isinstance(from_clause, Join):
            qualify = _Qualifier(main.name.lower())
            items = [
                SelectItem(expr=qualify(i.expr), alias=i.alias) for i in items
            ]
            where = qualify(where) if where is not None else None
            if group_ref is not None:
                group_ref = qualify(group_ref)
            order_by = tuple(
                OrderItem(expr=qualify(o.expr), descending=o.descending)
                for o in order_by
            )

        return Select(
            items=tuple(items),
            from_=from_clause,
            where=where,
            group_by=(group_ref,) if group_ref is not None else (),
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )
