"""Neural-network-stage parsers (survey Section 4.1.2), trained with numpy.

The three encoder/decoder families the survey profiles are each
represented by a trainable model:

- :class:`~repro.parsers.neural.sketch.SketchParser` — SQLNet/TypeSQL-style
  sketch-based slot filling; single-table sketches only, which is why the
  family reports WikiSQL numbers and no Spider numbers in Table 2;
- :class:`~repro.parsers.neural.grammar.GrammarNeuralParser` — IRNet /
  RAT-SQL / LGESQL-style grammar decoding with learned sketch bits and
  schema rankers; feature configuration selects the sub-family (sequence
  features only vs. graph/relation-aware features);
- :class:`~repro.parsers.neural.execution.ExecutionGuidedParser` — the
  execution-guided decoding wrapper (Wang et al., 2018; SQLova).

Training is honest supervised learning: gold slots are read off gold SQL
ASTs (:mod:`repro.parsers.neural.slots`), featurized
(:mod:`repro.parsers.neural.features`), and fit by SGD
(:mod:`repro.parsers.neural.models`).  No model sees gold queries at
inference time.
"""

from repro.parsers.neural.execution import ExecutionGuidedParser
from repro.parsers.neural.features import FeatureConfig
from repro.parsers.neural.grammar import GrammarNeuralParser
from repro.parsers.neural.sketch import SketchParser

__all__ = [
    "ExecutionGuidedParser",
    "FeatureConfig",
    "GrammarNeuralParser",
    "SketchParser",
]
