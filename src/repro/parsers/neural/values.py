"""Value candidate extraction (the copy/pointer mechanism, rule edition).

Neural Text-to-SQL models copy condition values out of the question with
pointer networks; TypeSQL additionally matched question spans against
database content ("type-aware value linking").  This module provides both
channels as deterministic candidate extraction:

- numeric literals (with guards so LIMIT/HAVING numbers are not consumed
  as condition values);
- quoted substrings (LIKE patterns);
- database value linking — question spans matching stored cell values,
  returning the *stored* casing (available only to configurations with
  ``value_link``, reproducing the TypeSQL/BRIDGE advantage);
- capitalized-span fallback for configurations without value linking.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.data.database import Database
from repro.data.values import Value


@dataclass
class ValueCandidate:
    """One potential condition value found in the question."""

    value: Value
    position: int
    numeric: bool


_NUMBER_RE = re.compile(r"\b\d+(?:\.\d+)?\b")
_QUOTED_RE = re.compile(r"'([^']+)'")
#: numbers in these contexts belong to LIMIT / HAVING, not conditions
_RESERVED_BEFORE = re.compile(r"(?:top|bottom|least)\s*$", re.IGNORECASE)
_RESERVED_AFTER = re.compile(r"^\s*entries", re.IGNORECASE)


def extract_numbers(question: str) -> list[ValueCandidate]:
    """Numeric literals usable as condition values, in question order."""
    out = []
    for match in _NUMBER_RE.finditer(question):
        before = question[: match.start()]
        after = question[match.end():]
        if _RESERVED_BEFORE.search(before) or _RESERVED_AFTER.search(after):
            continue
        text = match.group()
        value: Value = float(text) if "." in text else int(text)
        out.append(
            ValueCandidate(value=value, position=match.start(), numeric=True)
        )
    return out


def extract_quoted(question: str) -> list[ValueCandidate]:
    """Quoted substrings (LIKE patterns and explicit string values)."""
    return [
        ValueCandidate(value=m.group(1), position=m.start(), numeric=False)
        for m in _QUOTED_RE.finditer(question)
    ]


def extract_reserved_number(question: str, cue: str) -> int | None:
    """The number following a reserved cue ("top 3", "at least 2")."""
    match = re.search(
        re.escape(cue) + r"\s+(\d+)", question, flags=re.IGNORECASE
    )
    if match:
        return int(match.group(1))
    return None


def extract_db_strings(
    question: str, db: Database, max_cells: int = 4000
) -> list[ValueCandidate]:
    """Question spans matching stored cell values, with stored casing."""
    lowered = question.lower()
    out: list[ValueCandidate] = []
    seen: set[str] = set()
    scanned = 0
    for table in db.tables.values():
        for row in table.rows:
            for value in row:
                scanned += 1
                if scanned > max_cells:
                    return _sorted(out)
                if not isinstance(value, str) or len(value) < 2:
                    continue
                key = value.lower()
                if key in seen:
                    continue
                position = lowered.find(key)
                if position >= 0:
                    seen.add(key)
                    out.append(
                        ValueCandidate(
                            value=value, position=position, numeric=False
                        )
                    )
    return _sorted(out)


_CAPITALIZED_RE = re.compile(r"\b([A-Z][a-zA-Z]+(?:\s+[A-Z][a-zA-Z0-9]+)*)\b")


def extract_capitalized(question: str) -> list[ValueCandidate]:
    """Capitalized spans as string-value guesses (no-value-link fallback).

    The question-initial word is skipped — it is the opener, not a value.
    """
    out = []
    for match in _CAPITALIZED_RE.finditer(question):
        if match.start() == 0:
            continue
        out.append(
            ValueCandidate(
                value=match.group(1), position=match.start(), numeric=False
            )
        )
    return out


def string_candidates(
    question: str, db: Database | None, value_link: bool
) -> list[ValueCandidate]:
    """The string-value channel for one configuration."""
    if value_link and db is not None:
        linked = extract_db_strings(question, db)
        if linked:
            return linked
    return extract_capitalized(question)


def _sorted(candidates: list[ValueCandidate]) -> list[ValueCandidate]:
    # prefer longer matches at equal positions (more specific values)
    return sorted(
        candidates,
        key=lambda c: (c.position, -len(str(c.value))),
    )
