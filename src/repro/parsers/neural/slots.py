"""Gold slot extraction: reading training targets off gold SQL ASTs.

The neural-stage models are trained on *slots* — the sketch bits and role
fillers that the surveyed sketch/grammar decoders predict.  This module
maps a gold query AST to its :class:`GoldSlots`, the supervision used by
:mod:`repro.parsers.neural.sketch` and :mod:`repro.parsers.neural.grammar`.
Queries outside the sketch space (deep nesting beyond one level, arbitrary
expressions) yield ``None`` and are skipped during training — mirroring how
sketch-based systems define their output space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.values import Value
from repro.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InSubquery,
    Like,
    Literal,
    Query,
    ScalarSubquery,
    Select,
    SetOperation,
    Star,
    from_tables,
)

#: aggregate classes, index = classifier label
AGG_CLASSES = ("none", "count", "avg", "sum", "min", "max")

#: condition kinds
COND_COMPARE = "compare"
COND_LIKE = "like"
COND_BETWEEN = "between"
COND_AVG = "avg_compare"

#: set-op classes, index = classifier label
SETOP_CLASSES = ("none", "union", "intersect", "except")

#: comparison operators, index = classifier label
OP_CLASSES = ("=", ">", "<", ">=", "<=", "<>")


@dataclass
class GoldCondition:
    """One WHERE conjunct in slot form."""

    kind: str
    column: tuple[str | None, str]  # (table or None, column)
    op: str = "="
    value: Value = None
    low: Value = None
    high: Value = None
    substring: str = ""


@dataclass
class GoldSlots:
    """The complete slot decomposition of one gold query."""

    main_table: str
    projection: list[tuple[str | None, str]] = field(default_factory=list)
    agg: str = "none"
    agg_column: tuple[str | None, str] | None = None
    conditions: list[GoldCondition] = field(default_factory=list)
    group: tuple[str | None, str] | None = None
    having_min: int | None = None
    order: tuple[str | None, str] | None = None
    order_desc: bool = False
    limit: int | None = None
    distinct: bool = False
    set_op: str = "none"
    second_conditions: list[GoldCondition] = field(default_factory=list)
    nested_table: str | None = None
    nested_conditions: list[GoldCondition] = field(default_factory=list)
    join_tables: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # sketch bits (classifier targets)
    # ------------------------------------------------------------------
    def agg_label(self) -> int:
        return AGG_CLASSES.index(self.agg)

    def group_label(self) -> int:
        return int(self.group is not None)

    def order_label(self) -> int:
        if self.order is None:
            return 0
        return 2 if self.order_desc else 1

    def limit_label(self) -> int:
        return int(self.limit is not None)

    def conds_label(self) -> int:
        return min(len(self.conditions), 2)

    def cond_kind_label(self) -> int:
        kinds = (COND_COMPARE, COND_LIKE, COND_BETWEEN, COND_AVG)
        if not self.conditions:
            return 0
        return kinds.index(self.conditions[0].kind)

    def setop_label(self) -> int:
        return SETOP_CLASSES.index(self.set_op)

    def nested_label(self) -> int:
        return int(self.nested_table is not None)

    def distinct_label(self) -> int:
        return int(self.distinct)


def extract_slots(query: Query) -> GoldSlots | None:
    """Decompose *query* into :class:`GoldSlots`, or None when outside the
    sketch space."""
    set_op = "none"
    second: list[GoldCondition] = []
    if isinstance(query, SetOperation):
        if isinstance(query.left, SetOperation) or isinstance(
            query.right, SetOperation
        ):
            return None
        set_op = "union" if query.op == "union all" else query.op
        right = query.right
        if not isinstance(right, Select) or right.where is None:
            return None
        second = _extract_conditions(right.where)
        if second is None:
            return None
        query = query.left
    if not isinstance(query, Select):
        return None

    tables = [ref.name.lower() for ref in from_tables(query.from_)]
    if not tables:
        return None
    slots = GoldSlots(main_table=tables[0])
    slots.join_tables = tables[1:]
    slots.set_op = set_op
    slots.second_conditions = second
    slots.distinct = query.distinct
    slots.limit = query.limit

    # projection / aggregate
    for item in query.items:
        expr = item.expr
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            slots.agg = expr.name.lower()
            if expr.args and isinstance(expr.args[0], ColumnRef):
                slots.agg_column = _colref(expr.args[0])
            elif expr.args and isinstance(expr.args[0], Star):
                slots.agg_column = None
            else:
                return None
        elif isinstance(expr, ColumnRef):
            slots.projection.append(_colref(expr))
        elif isinstance(expr, Star):
            slots.projection.append((None, "*"))
        else:
            return None

    # group by
    if query.group_by:
        if len(query.group_by) != 1 or not isinstance(
            query.group_by[0], ColumnRef
        ):
            return None
        slots.group = _colref(query.group_by[0])
        # group column is projected first by convention; drop the duplicate
        if slots.projection and slots.projection[0] == slots.group:
            slots.projection = slots.projection[1:]

    # having (only the COUNT(*) >= n form)
    if query.having is not None:
        having = query.having
        if (
            isinstance(having, BinaryOp)
            and having.op == ">="
            and isinstance(having.left, FuncCall)
            and having.left.name.lower() == "count"
            and isinstance(having.right, Literal)
            and isinstance(having.right.value, int)
        ):
            slots.having_min = having.right.value
        else:
            return None

    # order by
    if query.order_by:
        if len(query.order_by) != 1 or not isinstance(
            query.order_by[0].expr, ColumnRef
        ):
            return None
        slots.order = _colref(query.order_by[0].expr)
        slots.order_desc = query.order_by[0].descending
        # the ordered column often also appears in the projection; keep both

    # where
    if query.where is not None:
        extracted = _extract_where(query.where, slots)
        if extracted is None:
            return None
    return slots


def _extract_where(expr, slots: GoldSlots) -> bool | None:
    conjuncts = _flatten_and(expr)
    for conjunct in conjuncts:
        if isinstance(conjunct, InSubquery):
            nested = _extract_nested(conjunct)
            if nested is None:
                return None
            slots.nested_table, slots.nested_conditions = nested
            continue
        condition = _extract_condition(conjunct)
        if condition is None:
            return None
        slots.conditions.append(condition)
    return True


def _extract_conditions(expr) -> list[GoldCondition] | None:
    out = []
    for conjunct in _flatten_and(expr):
        condition = _extract_condition(conjunct)
        if condition is None:
            return None
        out.append(condition)
    return out


def _extract_condition(expr) -> GoldCondition | None:
    if isinstance(expr, BinaryOp) and expr.op in OP_CLASSES:
        if not isinstance(expr.left, ColumnRef):
            return None
        if isinstance(expr.right, Literal):
            return GoldCondition(
                kind=COND_COMPARE,
                column=_colref(expr.left),
                op=expr.op,
                value=expr.right.value,
            )
        if isinstance(expr.right, ScalarSubquery):
            inner = expr.right.query
            if (
                isinstance(inner, Select)
                and len(inner.items) == 1
                and isinstance(inner.items[0].expr, FuncCall)
                and inner.items[0].expr.name.lower() == "avg"
            ):
                return GoldCondition(
                    kind=COND_AVG, column=_colref(expr.left), op=expr.op
                )
        return None
    if isinstance(expr, Like):
        if not isinstance(expr.expr, ColumnRef) or not isinstance(
            expr.pattern, Literal
        ):
            return None
        pattern = str(expr.pattern.value)
        return GoldCondition(
            kind=COND_LIKE,
            column=_colref(expr.expr),
            substring=pattern.strip("%"),
        )
    if isinstance(expr, Between):
        if (
            isinstance(expr.expr, ColumnRef)
            and isinstance(expr.low, Literal)
            and isinstance(expr.high, Literal)
        ):
            return GoldCondition(
                kind=COND_BETWEEN,
                column=_colref(expr.expr),
                low=expr.low.value,
                high=expr.high.value,
            )
    return None


def _extract_nested(
    expr: InSubquery,
) -> tuple[str, list[GoldCondition]] | None:
    inner = expr.query
    if not isinstance(inner, Select) or inner.where is None:
        return None
    tables = from_tables(inner.from_)
    if len(tables) != 1:
        return None
    conditions = _extract_conditions(inner.where)
    if conditions is None:
        return None
    return tables[0].name.lower(), conditions


def _flatten_and(expr) -> list:
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _colref(ref: ColumnRef) -> tuple[str | None, str]:
    return (
        ref.table.lower() if ref.table else None,
        ref.column.lower(),
    )
