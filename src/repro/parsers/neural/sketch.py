"""Sketch-based slot-filling parser (SQLNet / TypeSQL lineage).

SQLNet fixed a single-table SQL sketch — ``SELECT $AGG $COL FROM $TABLE
WHERE $COL $OP $VALUE (AND ...)`` — and predicted each slot independently.
This parser is exactly that output space: the grammar parser's machinery
restricted to one table, no grouping/ordering/nesting/set operations.

The restriction is the point: on WikiSQL-like data the sketch covers the
whole benchmark and the parser performs well; on Spider-like data most
queries fall outside the sketch, reproducing why Table 2 reports SQLNet
and its descendants on WikiSQL only.  ``TypeSQL``'s improvement — value
linking against database content — corresponds to the ``value_link``
feature flag.
"""

from __future__ import annotations

from repro.parsers.base import NEURAL
from repro.parsers.neural.features import FeatureConfig
from repro.parsers.neural.grammar import GrammarNeuralParser


class SketchParser(GrammarNeuralParser):
    """Single-table sketch filler; see module docstring."""

    stage = NEURAL

    supports_join = False
    supports_group = False
    supports_order = False
    supports_nested = False
    supports_setop = False

    def __init__(
        self,
        config: FeatureConfig | None = None,
        name: str = "sketch slot-filling parser",
        year: int = 2017,
        seed: int = 0,
        epochs: int = 60,
    ) -> None:
        config = config or FeatureConfig(graph=False)
        super().__init__(
            config=config, name=name, year=year, seed=seed, epochs=epochs
        )
