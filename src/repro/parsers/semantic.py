"""Grammar-based semantic parser: the parsing-based system representative.

This parser inverts the question grammar of :mod:`repro.nlg`: it extracts
clause-level cues (aggregates, grouping, ordering, superlatives, set-op
connectives, condition markers), links schema mentions, resolves values
against database content, and composes a SQL AST.  It is the library's
representative of the survey's *parsing-based* architecture (Seq2Tree /
SQLova style systems that "convert natural language questions into
syntactic structures or logical forms").

Capability knobs model what separates the approach stages:

- ``world_knowledge`` — out-of-schema synonym linking (PLM/LLM-grade);
- ``fuzzy`` — typo-tolerant linking;
- ``languages`` — which question languages the parser understands;
- ``use_knowledge`` — whether BIRD-style external evidence is consumed;
- ``use_history`` — whether conversational follow-ups are resolved;
- ``guess_unlinked`` — whether unresolvable mentions are guessed by type
  (needed on Spider-realistic-style inputs).

The simulated LLM (:mod:`repro.llm`) uses this parser, at full capability,
as its internal solver — see DESIGN.md's substitution table.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace as dc_replace

from repro.data.database import Database
from repro.data.schema import Column, ColumnType, Schema, TableSchema
from repro.data.values import Value
from repro.errors import NLParseError
from repro.nlg.translate import reverse_translate
from repro.parsers.base import (
    ParseRequest,
    ParseResult,
    Parser,
    TRADITIONAL,
)
from repro.parsers.linker import SchemaLinker
from repro.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InSubquery,
    Join,
    Like,
    Literal,
    OrderItem,
    Query,
    ScalarSubquery,
    Select,
    SelectItem,
    SetOperation,
    Star,
    TableRef,
)

_OPENERS = (
    "show", "list", "what are", "what is", "give me", "return", "find",
    "display", "tell me", "compute", "draw", "plot", "visualize",
)

#: op-phrase -> SQL operator, longest phrases first at match time.
_OP_PHRASES: dict[str, str] = {
    "is greater than or equal to": ">=",
    "is less than or equal to": "<=",
    "is no less than": ">=",
    "is no more than": "<=",
    "is at least": ">=",
    "is at most": "<=",
    "is greater than": ">",
    "is more than": ">",
    "is smaller than": "<",
    "is less than": "<",
    "is different from": "<>",
    "does not equal": "<>",
    "is not": "<>",
    "is above": ">",
    "is below": "<",
    "is under": "<",
    "exceeds": ">",
    "is exactly": "=",
    "equals": "=",
    "is": "=",
}

_AGG_CUES: tuple[tuple[str, str], ...] = (
    ("average", "avg"), ("mean", "avg"), ("typical", "avg"),
    ("total", "sum"), ("sum of", "sum"), ("combined", "sum"),
    ("minimum", "min"), ("lowest", "min"), ("smallest", "min"),
    ("maximum", "max"), ("highest", "max"), ("largest", "max"),
)

#: connective regex -> set operation.  The bare " or " pattern must not
#: fire inside comparative phrases like "greater than or equal to".
_SET_CONNECTIVES: tuple[tuple[str, str], ...] = (
    (r"\s+but not\s+", "except"),
    (r"\s+excluding\s+", "except"),
    (r"\s+and also\s+", "intersect"),
    (r"\s+that also\s+", "intersect"),
    (r"\s+as well as\s+", "union"),
    (r"(?<!than)\s+or\s+(?!equal\b)", "union"),
)


@dataclass
class _Clauses:
    """Intermediate clause structure pulled out of a question."""

    head: str
    conditions: str | None = None
    nested_table: str | None = None
    nested_conditions: str | None = None
    group_phrase: str | None = None
    order_phrase: str | None = None
    order_desc: bool = False
    superlative_phrase: str | None = None
    superlative_desc: bool = True
    limit: int | None = None
    having_min: int | None = None
    set_op: str | None = None
    set_second: str | None = None
    distinct: bool = False


class GrammarSemanticParser(Parser):
    """See module docstring."""

    name = "grammar semantic parser"
    stage = TRADITIONAL
    year = 2016

    def __init__(
        self,
        world_knowledge: bool = False,
        fuzzy: bool = False,
        languages: tuple[str, ...] = ("en",),
        use_knowledge: bool = False,
        use_history: bool = False,
        guess_unlinked: bool = True,
    ) -> None:
        self.world_knowledge = world_knowledge
        self.fuzzy = fuzzy
        self.languages = languages
        self.use_knowledge = use_knowledge
        self.use_history = use_history
        self.guess_unlinked = guess_unlinked
        self._linkers: dict[str, SchemaLinker] = {}

    # ------------------------------------------------------------------
    def parse(self, request: ParseRequest) -> ParseResult:
        try:
            query = self._parse(request)
        except NLParseError as exc:
            return ParseResult(query=None, notes=str(exc))
        return ParseResult(query=query, candidates=[query], confidence=0.9)

    # ------------------------------------------------------------------
    def _parse(self, request: ParseRequest) -> Query:
        question = request.question
        if request.language != "en":
            if request.language not in self.languages:
                raise NLParseError(
                    f"language {request.language!r} not supported"
                )
            question = reverse_translate(question, request.language)

        linker = self._linker_for(request.schema)

        if self.use_history and request.history:
            followup = self._try_followup(question, request, linker)
            if followup is not None:
                return followup

        knowledge_cond: BinaryOp | None = None
        if self.use_knowledge and request.knowledge:
            question, knowledge_cond = self._apply_knowledge(
                question, request.knowledge, linker
            )

        clauses = self._extract_clauses(question)
        query = self._build_query(clauses, request, linker)
        if knowledge_cond is not None and isinstance(query, Select):
            where = (
                knowledge_cond
                if query.where is None
                else BinaryOp(op="and", left=query.where, right=knowledge_cond)
            )
            query = dc_replace(query, where=where)
        return query

    def _linker_for(self, schema: Schema) -> SchemaLinker:
        key = schema.db_id
        if key not in self._linkers:
            self._linkers[key] = SchemaLinker(
                schema,
                world_knowledge=self.world_knowledge,
                fuzzy=self.fuzzy,
            )
        return self._linkers[key]

    # ------------------------------------------------------------------
    # clause extraction
    # ------------------------------------------------------------------
    def _extract_clauses(self, question: str) -> _Clauses:
        text = question.strip().rstrip("?").strip()

        clauses = _Clauses(head=text)

        text, having_min = _extract_having(text)
        clauses.having_min = having_min

        text, group_phrase = _extract_group(text)
        clauses.group_phrase = group_phrase

        text, order_phrase, order_desc = _extract_order(text)
        clauses.order_phrase = order_phrase
        clauses.order_desc = order_desc

        text, sup_phrase, sup_desc = _extract_superlative(text)
        clauses.superlative_phrase = sup_phrase
        clauses.superlative_desc = sup_desc

        text, limit, limit_desc = _extract_topn(text)
        if limit is not None:
            clauses.limit = limit
            if clauses.order_phrase is None and clauses.superlative_phrase is None:
                clauses.order_desc = limit_desc

        # nested: "that have <child> whose <cond>"
        nested = re.search(
            r"\bthat have\s+(.+?)\s+whose\s+(.+)$", text, flags=re.IGNORECASE
        )
        if nested:
            clauses.nested_table = nested.group(1).strip()
            clauses.nested_conditions = nested.group(2).strip()
            text = text[: nested.start()].strip()
        else:
            parts = re.split(r"\bwhose\b", text, maxsplit=1, flags=re.IGNORECASE)
            if len(parts) == 2:
                text = parts[0].strip()
                conditions = parts[1].strip()
                for connective, op in _SET_CONNECTIVES:
                    match = re.search(
                        connective, conditions, flags=re.IGNORECASE
                    )
                    if match:
                        clauses.set_op = op
                        clauses.set_second = conditions[match.end():].strip()
                        conditions = conditions[: match.start()].strip()
                        break
                clauses.conditions = conditions

        if re.search(r"\bdistinct\b", text, flags=re.IGNORECASE):
            clauses.distinct = True

        clauses.head = _strip_opener(text)
        return clauses

    # ------------------------------------------------------------------
    # query assembly
    # ------------------------------------------------------------------
    def _build_query(
        self, clauses: _Clauses, request: ParseRequest, linker: SchemaLinker
    ) -> Query:
        head = clauses.head
        agg, agg_col_phrase, table_phrase = _extract_head_agg(head)

        # resolve the main table
        main_table = self._resolve_table(
            table_phrase if table_phrase else head, linker
        )
        if main_table is None:
            raise NLParseError(f"no table found in {head!r}")
        schema = request.schema
        table = schema.table(main_table)

        joins: list[str] = []  # other tables we must join in

        # projection / aggregate
        items: list[SelectItem] = []
        group_ref: ColumnRef | None = None

        if clauses.group_phrase is not None:
            group_table, group_col = self._resolve_column_phrase(
                clauses.group_phrase, linker, table, request,
                prefer_types=(ColumnType.TEXT, ColumnType.DATE),
            )
            if group_table.lower() != table.name.lower():
                joins.append(group_table)
                group_ref = ColumnRef(
                    column=group_col.lower(), table=group_table.lower()
                )
            else:
                group_ref = ColumnRef(column=group_col.lower())

        if agg is not None:
            if agg == "count":
                agg_expr: FuncCall = FuncCall(name="count", args=(Star(),))
            else:
                agg_table, agg_col = self._resolve_column_phrase(
                    agg_col_phrase or "", linker, table, request,
                    prefer_types=(ColumnType.NUMBER,),
                )
                if agg_table.lower() != table.name.lower():
                    joins.append(agg_table)
                    col_ref = ColumnRef(
                        column=agg_col.lower(), table=agg_table.lower()
                    )
                else:
                    col_ref = ColumnRef(column=agg_col.lower())
                agg_expr = FuncCall(name=agg, args=(col_ref,))
            if group_ref is not None:
                items.append(SelectItem(expr=group_ref))
            items.append(SelectItem(expr=agg_expr))
        else:
            projection = self._resolve_projection(
                head, table_phrase, linker, table, request
            )
            items.extend(SelectItem(expr=ref) for ref in projection)
            if group_ref is not None:
                items.insert(0, SelectItem(expr=group_ref))

        # conditions
        where = None
        if clauses.conditions:
            where, cond_joins = self._parse_conditions(
                clauses.conditions, linker, table, request
            )
            joins.extend(cond_joins)
        if clauses.nested_table and clauses.nested_conditions:
            where_nested = self._build_nested(
                clauses, linker, table, request
            )
            where = (
                where_nested
                if where is None
                else BinaryOp(op="and", left=where, right=where_nested)
            )

        # ordering
        order_by: tuple[OrderItem, ...] = ()
        limit = clauses.limit
        order_source = clauses.order_phrase or clauses.superlative_phrase
        if order_source is not None:
            descending = (
                clauses.order_desc
                if clauses.order_phrase is not None
                else clauses.superlative_desc
            )
            order_table, order_col = self._resolve_column_phrase(
                order_source, linker, table, request,
                prefer_types=(ColumnType.NUMBER,),
            )
            if order_table.lower() != table.name.lower():
                joins.append(order_table)
                order_ref = ColumnRef(
                    column=order_col.lower(), table=order_table.lower()
                )
            else:
                order_ref = ColumnRef(column=order_col.lower())
            order_by = (OrderItem(expr=order_ref, descending=descending),)
            if clauses.superlative_phrase is not None and limit is None:
                limit = 1
            # the order_limit pattern projects the ordered column as well
            if (
                clauses.limit is not None
                and agg is None
                and group_ref is None
                and not any(
                    isinstance(i.expr, ColumnRef)
                    and i.expr.column == order_ref.column
                    for i in items
                )
            ):
                items.append(SelectItem(expr=order_ref))

        having = None
        if clauses.having_min is not None:
            having = BinaryOp(
                op=">=",
                left=FuncCall(name="count", args=(Star(),)),
                right=Literal(clauses.having_min),
            )

        from_clause = self._build_from(table, joins, schema, items, where,
                                       group_ref, order_by)

        if isinstance(from_clause, Join):
            # with several tables in scope, unqualified refs to the main
            # table become ambiguous; qualify them all
            qualify = _Qualifier(table.name.lower())
            items = [
                SelectItem(expr=qualify(i.expr), alias=i.alias) for i in items
            ]
            where = qualify(where) if where is not None else None
            if group_ref is not None:
                group_ref = qualify(group_ref)
            order_by = tuple(
                OrderItem(expr=qualify(o.expr), descending=o.descending)
                for o in order_by
            )

        group_by = (group_ref,) if group_ref is not None else ()
        select = Select(
            items=tuple(items),
            from_=from_clause,
            where=where,
            group_by=tuple(g for g in group_by if g is not None),
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=clauses.distinct,
        )

        if clauses.set_op and clauses.set_second:
            second_where, second_joins = self._parse_conditions(
                clauses.set_second, linker, table, request
            )
            right = Select(
                items=tuple(items),
                from_=self._build_from(
                    table, second_joins, schema, items, second_where, None, ()
                ),
                where=second_where,
            )
            left = dc_replace(select, order_by=(), limit=None)
            return SetOperation(op=clauses.set_op, left=left, right=right)
        return select

    # ------------------------------------------------------------------
    def _build_from(
        self,
        table: TableSchema,
        joins: list[str],
        schema: Schema,
        items,
        where,
        group_ref,
        order_by,
    ):
        from_clause = TableRef(name=table.name.lower())
        seen: set[str] = {table.name.lower()}
        clause = from_clause
        for other in joins:
            lowered = other.lower()
            if lowered in seen:
                continue
            fks = schema.foreign_keys_between(table.name, other)
            if not fks:
                continue
            fk = fks[0]
            condition = BinaryOp(
                op="=",
                left=ColumnRef(column=fk.column.lower(), table=fk.table.lower()),
                right=ColumnRef(
                    column=fk.ref_column.lower(), table=fk.ref_table.lower()
                ),
            )
            clause = Join(
                left=clause,
                right=TableRef(name=lowered),
                kind="inner",
                condition=condition,
            )
            seen.add(lowered)
        if len(seen) > 1:
            # qualify unqualified refs with the main table where ambiguous
            return clause
        return clause

    # ------------------------------------------------------------------
    def _resolve_table(self, phrase: str, linker: SchemaLinker) -> str | None:
        tables = linker.tables_in(phrase)
        if tables:
            return tables[-1]
        return None

    def _resolve_column_phrase(
        self,
        phrase: str,
        linker: SchemaLinker,
        main_table: TableSchema,
        request: ParseRequest,
        prefer_types: tuple[ColumnType, ...] = (),
    ) -> tuple[str, str]:
        """Resolve a short phrase to (table, column), with table context.

        Phrases like ``customers segment`` carry their own table; plain
        ``segment`` resolves against the main table first, then any table
        reachable by one FK hop.
        """
        mentions = linker.link(phrase)
        column_mentions = [m for m in mentions if m.kind == "column"]
        table_mentions = [m for m in mentions if m.kind == "table"]

        if column_mentions:
            mention = column_mentions[-1]
            candidates = linker.column_candidates(mention.surface)
            if not candidates:
                candidates = [(mention.table, mention.column or "")]
            # context table named in the phrase wins
            for table_mention in table_mentions:
                for cand_table, cand_col in candidates:
                    if cand_table.lower() == table_mention.table.lower():
                        return cand_table, cand_col
            # else prefer the main table
            for cand_table, cand_col in candidates:
                if cand_table.lower() == main_table.name.lower():
                    return cand_table, cand_col
            # else prefer FK-adjacent tables
            for cand_table, cand_col in candidates:
                if request.schema.foreign_keys_between(
                    main_table.name, cand_table
                ):
                    return cand_table, cand_col
            first = candidates[0]
            return first[0], first[1]

        if self.guess_unlinked:
            guess = _guess_column(main_table, prefer_types)
            if guess is not None:
                return main_table.name, guess.name
        raise NLParseError(f"cannot resolve column phrase {phrase!r}")

    def _resolve_projection(
        self,
        head: str,
        table_phrase: str | None,
        linker: SchemaLinker,
        table: TableSchema,
        request: ParseRequest,
    ) -> list[ColumnRef]:
        match = re.search(
            r"^(?:the\s+)?(.+?)\s+(?:values\s+)?of\s+(.+)$",
            head,
            flags=re.IGNORECASE,
        )
        col_region = match.group(1) if match else head
        col_region = re.sub(
            r"\bdistinct\b", " ", col_region, flags=re.IGNORECASE
        )
        pieces = re.split(r",|\band\b", col_region)
        refs: list[ColumnRef] = []
        for piece in pieces:
            piece = piece.strip()
            if not piece:
                continue
            try:
                col_table, col = self._resolve_column_phrase(
                    piece, linker, table, request
                )
            except NLParseError:
                continue
            if col_table.lower() != table.name.lower():
                refs.append(
                    ColumnRef(column=col.lower(), table=col_table.lower())
                )
            else:
                refs.append(ColumnRef(column=col.lower()))
        if not refs:
            if self.guess_unlinked:
                guess = _name_column(table)
                refs.append(ColumnRef(column=guess.name.lower()))
            else:
                raise NLParseError(f"no projection columns in {head!r}")
        # drop duplicates while preserving order
        unique: list[ColumnRef] = []
        for ref in refs:
            if ref not in unique:
                unique.append(ref)
        return unique

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------
    def _parse_conditions(
        self,
        text: str,
        linker: SchemaLinker,
        table: TableSchema,
        request: ParseRequest,
    ) -> tuple:
        joins: list[str] = []
        # protect the AND inside "between X and Y" from the conjunct split
        masked = re.sub(
            r"(between\s+\S+)\s+and\b",
            r"\1 __between_and__",
            text,
            flags=re.IGNORECASE,
        )
        conjuncts = re.split(r"\band\b(?! also)", masked, flags=re.IGNORECASE)
        exprs = []
        for conjunct in conjuncts:
            conjunct = conjunct.replace("__between_and__", "and")
            conjunct = conjunct.strip().rstrip("?,. ")
            if not conjunct:
                continue
            expr, join_table = self._parse_condition(
                conjunct, linker, table, request
            )
            exprs.append(expr)
            if join_table is not None:
                joins.append(join_table)
        if not exprs:
            raise NLParseError(f"no conditions parsed from {text!r}")
        where = exprs[0]
        for expr in exprs[1:]:
            where = BinaryOp(op="and", left=where, right=expr)
        return where, joins

    def _parse_condition(
        self,
        text: str,
        linker: SchemaLinker,
        table: TableSchema,
        request: ParseRequest,
    ) -> tuple:
        # "are" is a reverse-translation artifact of "is" in several
        # languages; normalize before matching op phrases
        text = re.sub(r"\bare\b", "is", text, flags=re.IGNORECASE)
        # LIKE
        match = re.search(
            r"^(.*?)\s*(?:contains the substring|includes|has)\s+'(.+?)'",
            text,
            flags=re.IGNORECASE,
        )
        if match:
            ref, join_table = self._condition_column(
                match.group(1), linker, table, request,
                prefer_types=(ColumnType.TEXT,),
            )
            return (
                Like(expr=ref, pattern=Literal(f"%{match.group(2)}%")),
                join_table,
            )

        # BETWEEN
        match = re.search(
            r"^(.*?)\s*(?:is between|falls between)\s+(\S+)\s+and\s+(\S+)",
            text,
            flags=re.IGNORECASE,
        ) or re.search(
            r"^(.*?)\s*is in the range\s+(\S+)\s+to\s+(\S+)",
            text,
            flags=re.IGNORECASE,
        )
        if match:
            ref, join_table = self._condition_column(
                match.group(1), linker, table, request,
                prefer_types=(ColumnType.NUMBER,),
            )
            return (
                Between(
                    expr=ref,
                    low=Literal(_parse_value(match.group(2))),
                    high=Literal(_parse_value(match.group(3))),
                ),
                join_table,
            )

        # compare against the table average
        match = re.search(
            r"^(.*?)\s*is\s+(above|below)\s+the average",
            text,
            flags=re.IGNORECASE,
        )
        if match:
            ref, join_table = self._condition_column(
                match.group(1), linker, table, request,
                prefer_types=(ColumnType.NUMBER,),
            )
            inner_table = (ref.table or table.name).lower()
            inner = Select(
                items=(
                    SelectItem(
                        expr=FuncCall(
                            name="avg",
                            args=(ColumnRef(column=ref.column),),
                        )
                    ),
                ),
                from_=TableRef(name=inner_table),
            )
            op = ">" if match.group(2).lower() == "above" else "<"
            return (
                BinaryOp(op=op, left=ref, right=ScalarSubquery(query=inner)),
                join_table,
            )

        # plain comparison: find the longest matching op phrase
        lowered = text.lower()
        for phrase in sorted(_OP_PHRASES, key=len, reverse=True):
            index = _find_word_phrase(lowered, phrase)
            if index < 0:
                continue
            col_part = text[:index].strip()
            val_part = text[index + len(phrase):].strip().rstrip("?,. ")
            if not val_part:
                continue
            op = _OP_PHRASES[phrase]
            ref, join_table = self._condition_column(
                col_part, linker, table, request
            )
            value = _parse_value(val_part)
            if isinstance(value, str) and request.db is not None:
                value = _restore_value_case(
                    value, ref, table, request.db
                )
            return (BinaryOp(op=op, left=ref, right=Literal(value)), join_table)

        raise NLParseError(f"cannot parse condition {text!r}")

    def _condition_column(
        self,
        phrase: str,
        linker: SchemaLinker,
        table: TableSchema,
        request: ParseRequest,
        prefer_types: tuple[ColumnType, ...] = (),
    ) -> tuple[ColumnRef, str | None]:
        col_table, col = self._resolve_column_phrase(
            phrase, linker, table, request, prefer_types
        )
        if col_table.lower() != table.name.lower():
            return (
                ColumnRef(column=col.lower(), table=col_table.lower()),
                col_table,
            )
        return ColumnRef(column=col.lower()), None

    def _build_nested(
        self,
        clauses: _Clauses,
        linker: SchemaLinker,
        parent: TableSchema,
        request: ParseRequest,
    ):
        child_name = self._resolve_table(clauses.nested_table or "", linker)
        if child_name is None:
            raise NLParseError(
                f"cannot resolve nested table {clauses.nested_table!r}"
            )
        child = request.schema.table(child_name)
        fks = request.schema.foreign_keys_between(parent.name, child.name)
        if not fks:
            raise NLParseError(
                f"no FK between {parent.name!r} and {child.name!r}"
            )
        fk = fks[0]
        # orient the FK: child side holds the referencing column
        if fk.table.lower() == child.name.lower():
            child_col, parent_col = fk.column, fk.ref_column
        else:
            child_col, parent_col = fk.ref_column, fk.column
        inner_where, _ = self._parse_conditions(
            clauses.nested_conditions or "", linker, child, request
        )
        inner = Select(
            items=(SelectItem(expr=ColumnRef(column=child_col.lower())),),
            from_=TableRef(name=child.name.lower()),
            where=inner_where,
        )
        return InSubquery(
            expr=ColumnRef(column=parent_col.lower()), query=inner
        )

    # ------------------------------------------------------------------
    # follow-ups (multi-turn)
    # ------------------------------------------------------------------
    def _try_followup(
        self, question: str, request: ParseRequest, linker: SchemaLinker
    ) -> Query | None:
        previous = request.history[-1][1]
        if not isinstance(previous, Select):
            return None
        text = question.strip().rstrip("?").strip()
        text = re.sub(
            r"^(now|next,?|and|also|then)\s+", "", text, flags=re.IGNORECASE
        )

        if re.fullmatch(
            r"(how many (are there|is that)|count them)", text,
            flags=re.IGNORECASE,
        ):
            return dc_replace(
                previous,
                items=(
                    SelectItem(expr=FuncCall(name="count", args=(Star(),))),
                ),
                order_by=(),
                limit=None,
            )

        match = re.match(
            r"keep only those whose\s+(.+)$", text, flags=re.IGNORECASE
        )
        if match:
            table = self._main_table_of(previous, request.schema)
            condition, _ = self._parse_conditions(
                match.group(1), linker, table, request
            )
            where = (
                condition
                if previous.where is None
                else BinaryOp(op="and", left=previous.where, right=condition)
            )
            return dc_replace(previous, where=where)

        match = re.match(
            r"show only the (\d+) with the (highest|lowest)\s+(.+)$",
            text,
            flags=re.IGNORECASE,
        )
        if match:
            table = self._main_table_of(previous, request.schema)
            col_table, col = self._resolve_column_phrase(
                match.group(3), linker, table, request,
                prefer_types=(ColumnType.NUMBER,),
            )
            ref = ColumnRef(column=col.lower())
            items = previous.items
            if not any(
                isinstance(i.expr, ColumnRef) and i.expr.column == ref.column
                for i in items
            ):
                items = items + (SelectItem(expr=ref),)
            return dc_replace(
                previous,
                items=items,
                order_by=(
                    OrderItem(
                        expr=ref,
                        descending=match.group(2).lower() == "highest",
                    ),
                ),
                limit=int(match.group(1)),
            )

        match = re.match(
            r"show their\s+(.+?)\s+instead$", text, flags=re.IGNORECASE
        )
        if match:
            table = self._main_table_of(previous, request.schema)
            col_table, col = self._resolve_column_phrase(
                match.group(1), linker, table, request
            )
            return dc_replace(
                previous,
                items=(SelectItem(expr=ColumnRef(column=col.lower())),),
            )
        return None

    def _main_table_of(self, select: Select, schema: Schema) -> TableSchema:
        from repro.sql.ast import from_tables

        tables = from_tables(select.from_)
        if not tables:
            raise NLParseError("previous query has no FROM table")
        return schema.table(tables[0].name)

    # ------------------------------------------------------------------
    # knowledge grounding
    # ------------------------------------------------------------------
    def _apply_knowledge(
        self, question: str, knowledge: str, linker: SchemaLinker
    ) -> tuple[str, BinaryOp | None]:
        match = re.match(
            r"^(?P<alias>.+?)\s+are\s+(?P<table>.+?)\s+whose\s+(?P<cond>.+?)\.?$",
            knowledge.strip(),
        )
        if not match:
            return question, None
        alias = match.group("alias").strip()
        cond_text = match.group("cond").strip()
        table_name = self._resolve_table(match.group("table"), linker)
        if table_name is None:
            return question, None
        replacement = match.group("table").strip()
        if alias.lower() not in question.lower():
            # alias adjective alone may appear ("premium" vs "premium
            # products"); try the first word
            adjective = alias.split()[0].lower()
            if adjective not in question.lower():
                return question, None
            alias = adjective
            replacement = ""
        # rewrite the alias to the plain table noun so the head parses
        rewritten = re.sub(
            re.escape(alias), replacement, question, flags=re.IGNORECASE
        )
        rewritten = " ".join(rewritten.split())
        schema_table = linker.schema.table(table_name)
        try:
            condition, _ = self._parse_conditions(
                cond_text, linker, schema_table, ParseRequest(
                    question=question, schema=linker.schema
                )
            )
        except NLParseError:
            return question, None
        return rewritten, condition


class _Qualifier:
    """Rewrites unqualified column refs to carry an explicit table."""

    def __init__(self, table: str) -> None:
        self.table = table

    def __call__(self, expr):
        if isinstance(expr, ColumnRef) and expr.table is None:
            return ColumnRef(column=expr.column, table=self.table)
        if isinstance(expr, FuncCall):
            return FuncCall(
                name=expr.name,
                args=tuple(self(a) for a in expr.args),
                distinct=expr.distinct,
            )
        if isinstance(expr, BinaryOp):
            return BinaryOp(op=expr.op, left=self(expr.left),
                            right=self(expr.right))
        if isinstance(expr, Between):
            return Between(expr=self(expr.expr), low=self(expr.low),
                           high=self(expr.high), negated=expr.negated)
        if isinstance(expr, Like):
            return Like(expr=self(expr.expr), pattern=expr.pattern,
                        negated=expr.negated)
        if isinstance(expr, InSubquery):
            return InSubquery(expr=self(expr.expr), query=expr.query,
                              negated=expr.negated)
        return expr


# ----------------------------------------------------------------------
# clause-extraction helpers (module level, regex based)
# ----------------------------------------------------------------------
def _strip_opener(text: str) -> str:
    lowered = text.lower()
    for opener in sorted(_OPENERS, key=len, reverse=True):
        if lowered.startswith(opener + " "):
            return text[len(opener):].strip()
    return text


def _extract_having(text: str) -> tuple[str, int | None]:
    match = re.search(
        r",?\s*considering only groups with at least (\d+) entries",
        text,
        flags=re.IGNORECASE,
    )
    if not match:
        return text, None
    return _cut(text, match), int(match.group(1))


_GROUP_RE = re.compile(
    r"\b(?:for each|per|grouped by|broken down by)\s+"
    r"(.+?)(?=,|\?|$|\s+whose\b|\s+sorted\b|\s+ordered\b|\s+in\s+(?:ascending|descending)|\s+considering\b)",
    flags=re.IGNORECASE,
)


def _extract_group(text: str) -> tuple[str, str | None]:
    match = _GROUP_RE.search(text)
    if not match:
        return text, None
    return _cut(text, match), match.group(1).strip()


_ORDER_PATTERNS: tuple[tuple[str, bool | None], ...] = (
    (r"in (ascending) order of\s+(.+?)(?=,|\?|$)", False),
    (r"in (descending) order of\s+(.+?)(?=,|\?|$)", True),
    (r"sorted by\s+(.+?) from (high to low)", True),
    (r"sorted by\s+(.+?) from (low to high)", False),
    (r"ordered by decreasing\s+(.+?)(?=,|\?|$)", True),
    (r"ordered by\s+(.+?) from (low to high)", False),
    (r"sorted by\s+(.+?)(?=,|\?|$)", False),
)


def _extract_order(text: str) -> tuple[str, str | None, bool]:
    for pattern, descending in _ORDER_PATTERNS:
        match = re.search(pattern, text, flags=re.IGNORECASE)
        if match:
            groups = match.groups()
            column_phrase = groups[1] if len(groups) > 1 and groups[0] in (
                "ascending", "descending"
            ) else groups[0]
            return _cut(text, match), column_phrase.strip(), bool(descending)
    return text, None, False


_SUPERLATIVE_RE = re.compile(
    r"with the (highest|largest|greatest|most|lowest|smallest|least)\s+"
    r"(.+?)(?=,|\?|$)",
    flags=re.IGNORECASE,
)


def _extract_superlative(text: str) -> tuple[str, str | None, bool]:
    match = _SUPERLATIVE_RE.search(text)
    if not match:
        return text, None, True
    descending = match.group(1).lower() in (
        "highest", "largest", "greatest", "most"
    )
    return _cut(text, match), match.group(2).strip(), descending


_TOPN_RE = re.compile(r"\bthe (top|bottom) (\d+)\b", flags=re.IGNORECASE)


def _extract_topn(text: str) -> tuple[str, int | None, bool]:
    match = _TOPN_RE.search(text)
    if not match:
        return text, None, True
    descending = match.group(1).lower() == "top"
    out = text[: match.start()] + " the " + text[match.end():]
    return " ".join(out.split()), int(match.group(2)), descending


def _extract_head_agg(head: str) -> tuple[str | None, str | None, str | None]:
    """Detect an aggregate cue in the head.

    Returns (agg, column_phrase, table_phrase); all None when the head is a
    plain projection.
    """
    lowered = head.lower()
    count_match = re.search(
        r"\b(?:(?:the\s+)?number of|how many|(?:the\s+)?count of)\s+(.+)$",
        lowered,
    )
    if count_match:
        return "count", None, head[count_match.start(1):].strip()

    match = re.search(
        r"\b(?:the\s+)?(average|mean|typical|total|combined|minimum|lowest"
        r"|smallest|maximum|highest|largest)\s+(.+?)\s+(?:of|for)\s+(.+)$",
        head,
        flags=re.IGNORECASE,
    )
    if match:
        cue = match.group(1).lower()
        agg = dict(_AGG_CUES).get(cue)
        if agg is None:
            agg = {"total": "sum", "combined": "sum"}.get(cue)
        return agg, match.group(2).strip(), match.group(3).strip()

    match = re.search(
        r"\b(?:the\s+)?sum of\s+(.+?)\s+for\s+(.+)$",
        head,
        flags=re.IGNORECASE,
    )
    if match:
        return "sum", match.group(1).strip(), match.group(2).strip()
    return None, None, None


def _cut(text: str, match: re.Match) -> str:
    out = text[: match.start()] + " " + text[match.end():]
    return " ".join(out.split())


def _find_word_phrase(text: str, phrase: str) -> int:
    """Find *phrase* at word boundaries; -1 when absent."""
    pattern = r"\b" + re.escape(phrase) + r"\b"
    match = re.search(pattern, text)
    return match.start() if match else -1


def _parse_value(text: str) -> Value:
    text = text.strip().strip("'\"")
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _restore_value_case(
    value: str, ref: ColumnRef, table: TableSchema, db: Database
) -> str:
    """Recover a stored value's canonical casing from database content."""
    table_name = ref.table or table.name
    try:
        contents = db.table(table_name)
        stored = contents.column_values(ref.column)
    except Exception:
        return value
    lowered = value.lower()
    for candidate in stored:
        if isinstance(candidate, str) and candidate.lower() == lowered:
            return candidate
    return value


def _guess_column(
    table: TableSchema, prefer_types: tuple[ColumnType, ...]
) -> Column | None:
    candidates = [
        c
        for c in table.columns
        if not c.name.lower().endswith("id") and c.name.lower() != "id"
    ]
    if prefer_types:
        typed = [c for c in candidates if c.type in prefer_types]
        if typed:
            return typed[0]
    return candidates[0] if candidates else None


def _name_column(table: TableSchema) -> Column:
    for column in table.columns:
        if column.name.lower() in ("name", "title"):
            return column
    for column in table.columns:
        if column.type is ColumnType.TEXT:
            return column
    return table.columns[0]
