"""Semantic parsing approaches: one working representative per surveyed family.

The survey's approach taxonomy (Section 4, Fig. 4) has three stages for
each task; every family below is implemented and benchmarked:

==================  ==========================================  ==============
Stage               Text-to-SQL family                          Module
==================  ==========================================  ==============
Traditional         keyword/rule-based (PRECISE/NaLIR lineage)  ``rule``
Traditional         grammar-template semantic parsing           ``semantic``
Neural network      sketch/slot-filling (SQLNet lineage)        ``sketch``
Neural network      grammar-constrained decoding (IRNet/PICARD) ``grammar``
Neural network      graph-encoded schema (RAT-SQL lineage)      ``graph``
Neural network      execution-guided decoding                   ``execution``
Foundation (PLM)    pretrain-then-finetune (TaBERT/Grappa)      ``plm``
Foundation (LLM)    prompting strategies (C3/DIN-SQL/SQL-PaLM)  ``llm``
Any stage           Text-to-Vis counterparts                    ``vis``
==================  ==========================================  ==============
"""

from repro.parsers.base import (
    ParseRequest,
    ParseResult,
    Parser,
    TRADITIONAL,
    NEURAL,
    PLM,
    LLM,
)
from repro.parsers.linker import SchemaLinker
from repro.parsers.rule import KeywordRuleParser
from repro.parsers.semantic import GrammarSemanticParser

__all__ = [
    "KeywordRuleParser",
    "GrammarSemanticParser",
    "LLM",
    "NEURAL",
    "PLM",
    "ParseRequest",
    "ParseResult",
    "Parser",
    "SchemaLinker",
    "TRADITIONAL",
]
