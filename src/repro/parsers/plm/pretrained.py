"""The PLM-stage parser: grammar decoding plus pretraining.

``PLMParser`` is the :class:`~repro.parsers.neural.grammar.GrammarNeuralParser`
architecture with the two PLM-stage ingredients added:

1. **additional pretraining** (TaBERT/Grappa/GAP recipe) — before seeing
   the target benchmark, the model is fitted on a large self-synthesized
   cross-domain corpus of (question, SQL) pairs over the domain library;
   fine-tuning then continues from the pretrained weights.  On small
   target training sets this transfers exactly the way the survey
   describes pretraining helping.
2. **world-knowledge linking** — pretrained representations match
   out-of-schema synonyms, which is what lets PLM-stage systems hold up on
   Spider-SYN-style perturbations where exact-linking neural models drop.

``make_pretraining_corpus`` is exposed so ablation benchmarks can pretrain
with controlled corpus sizes.
"""

from __future__ import annotations

import random

from repro.data.database import Database
from repro.data.domains import all_domains
from repro.data.generator import DatabaseGenerator
from repro.datasets.base import Example
from repro.datasets.patterns import ALL_PATTERNS, PatternContext, sample_instance
from repro.datasets.sql import clone_domain
from repro.parsers.base import PLM
from repro.parsers.neural.features import FeatureConfig
from repro.parsers.neural.grammar import GrammarNeuralParser


def make_pretraining_corpus(
    size: int = 1500, seed: int = 77
) -> tuple[list[Example], dict[str, Database]]:
    """Synthesize a cross-domain pretraining corpus (Grappa recipe)."""
    rng = random.Random(seed)
    generator = DatabaseGenerator(seed=rng.randrange(1 << 30))
    databases: dict[str, Database] = {}
    contexts: list[tuple[str, PatternContext]] = []
    for domain in all_domains():
        db_id = f"{domain.name}_pretrain"
        clone = clone_domain(domain, db_id)
        databases[db_id] = generator.populate(clone)
        contexts.append((db_id, PatternContext(clone, databases[db_id], rng)))

    examples: list[Example] = []
    for index in range(size):
        db_id, ctx = contexts[index % len(contexts)]
        instance = sample_instance(ctx, ALL_PATTERNS)
        examples.append(
            Example(
                question=instance.question,
                db_id=db_id,
                sql=instance.sql,
                hardness=instance.hardness,
                pattern=instance.pattern,
            )
        )
    return examples, databases


class PLMParser(GrammarNeuralParser):
    """Pretrain-then-finetune grammar parser; see module docstring."""

    stage = PLM

    def __init__(
        self,
        config: FeatureConfig | None = None,
        name: str = "plm pretrained parser",
        year: int = 2021,
        seed: int = 0,
        epochs: int = 60,
        pretrain_size: int = 1500,
        pretrain: bool = True,
    ) -> None:
        config = config or FeatureConfig(world_knowledge=True)
        super().__init__(
            config=config, name=name, year=year, seed=seed, epochs=epochs
        )
        self.pretrain_size = pretrain_size
        self.pretrain = pretrain
        self._pretrained = False

    def train(
        self,
        examples: list[Example],
        databases: dict[str, Database],
    ) -> None:
        if self.pretrain and not self._pretrained and self.pretrain_size > 0:
            corpus, corpus_dbs = make_pretraining_corpus(
                self.pretrain_size, seed=self.seed + 77
            )
            super().train(corpus, corpus_dbs)
            self._pretrained = True
        # fine-tune: SGD continues from the pretrained weights
        super().train(examples, databases)
