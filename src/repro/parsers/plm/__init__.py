"""PLM-stage parsers: pretrain-then-finetune (survey Section 4.1.3).

The pretrained-language-model stage differs from the neural stage in two
reproducible ways: (1) models arrive with *pretraining* — TaBERT/Grappa/GAP
additionally pretrain on synthesized question-SQL pairs over tables, which
is exactly what :class:`~repro.parsers.plm.pretrained.PLMParser` does with
a self-generated cross-domain corpus; and (2) pretrained representations
carry lexical world knowledge, modelled by world-knowledge schema linking.
"""

from repro.parsers.plm.pretrained import PLMParser, make_pretraining_corpus

__all__ = ["PLMParser", "make_pretraining_corpus"]
