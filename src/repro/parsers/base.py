"""Parser interface shared by every approach family.

A parser maps a :class:`ParseRequest` — the survey's input ``x = {q, s}``
plus the optional evidence channels the literature added over time
(database content for value linking, external knowledge à la BIRD,
dialogue history à la SParC) — to a :class:`ParseResult` holding the
predicted query (and candidates, for rankers and self-consistency).

Trainable parsers additionally implement ``train(examples, datasets)``;
rule-based and prompting-based parsers are training-free, matching the
survey's taxonomy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.data.database import Database
from repro.data.schema import Schema
from repro.datasets.base import Example
from repro.sql.ast import Query

#: Approach-stage tags (Fig. 4's three colored eras; the foundation stage
#: splits into PLM and LLM, as Section 4.1.3 does).
TRADITIONAL = "traditional"
NEURAL = "neural"
PLM = "plm"
LLM = "llm"

STAGES = (TRADITIONAL, NEURAL, PLM, LLM)


@dataclass
class ParseRequest:
    """One parsing problem instance."""

    question: str
    schema: Schema
    db: Database | None = None
    knowledge: str | None = None
    history: list[tuple[str, Query]] = field(default_factory=list)
    language: str = "en"


@dataclass
class ParseResult:
    """A parser's answer: best query plus ranked alternatives."""

    query: Query | None
    candidates: list[Query] = field(default_factory=list)
    confidence: float = 0.0
    notes: str = ""

    @property
    def failed(self) -> bool:
        return self.query is None


class Parser(abc.ABC):
    """Base class for all Text-to-SQL parsers."""

    #: human-readable approach name, e.g. "SQLNet-like sketch parser"
    name: str = "parser"
    #: stage tag (one of :data:`STAGES`)
    stage: str = TRADITIONAL
    #: publication year of the family's representative (Fig. 4 timeline)
    year: int = 2000

    @abc.abstractmethod
    def parse(self, request: ParseRequest) -> ParseResult:
        """Translate the request's question into a SQL query AST."""

    def train(
        self,
        examples: list[Example],
        databases: dict[str, Database],
    ) -> None:
        """Fit the parser on training examples (no-op for rule/LLM parsers)."""
        del examples, databases

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} stage={self.stage}>"
