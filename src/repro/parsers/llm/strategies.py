"""Prompting strategies (see package docstring)."""

from __future__ import annotations

import random

from repro.data.database import Database
from repro.datasets.base import Example
from repro.errors import SQLError
from repro.llm.interface import SimulatedLLM
from repro.llm.profiles import ModelProfile
from repro.llm.prompts import PromptBuilder, extract_sql
from repro.parsers.base import LLM, ParseRequest, ParseResult, Parser
from repro.resilience import deadline as _deadline
from repro.sql.ast import Query
from repro.sql.executor import execute
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql


class LLMParserBase(Parser):
    """Shared plumbing: model handle, prompt building, output extraction."""

    stage = LLM
    year = 2022

    def __init__(
        self,
        model: str | ModelProfile = "chatgpt-like",
        seed: int = 0,
        clear_prompting: bool = True,
        name: str | None = None,
    ) -> None:
        self.llm = SimulatedLLM(model, seed=seed)
        self.clear_prompting = clear_prompting
        self.seed = seed
        if name:
            self.name = name

    # ------------------------------------------------------------------
    def _builder(self, chain_of_thought: bool = False) -> PromptBuilder:
        return PromptBuilder(
            include_schema=True,
            include_descriptions=self.clear_prompting,
            include_foreign_keys=self.clear_prompting,
            chain_of_thought=chain_of_thought,
        )

    def _history_text(
        self, request: ParseRequest
    ) -> list[tuple[str, str]]:
        return [(q, to_sql(query)) for q, query in request.history]

    def _completions_to_queries(self, completions) -> list[Query]:
        queries = []
        for completion in completions:
            if _deadline._ACTIVE:
                _deadline.checkpoint("llm candidate parsing")
            sql = extract_sql(completion.text)
            try:
                queries.append(parse_sql(sql))
            except SQLError:
                continue
        return queries

    def _single(self, prompt: str, temperature: float = 0.0) -> Query | None:
        completions = self.llm.complete(prompt, temperature=temperature)
        queries = self._completions_to_queries(completions)
        return queries[0] if queries else None


class ZeroShotLLMParser(LLMParserBase):
    """Zero-shot prompting; ``clear_prompting`` adds C3's ingredients."""

    name = "zero-shot llm"
    year = 2022

    def parse(self, request: ParseRequest) -> ParseResult:
        prompt = self._builder().build(
            question=request.question,
            schema=request.schema,
            knowledge=request.knowledge,
            history=self._history_text(request) or None,
        )
        query = self._single(prompt)
        if query is None:
            return ParseResult(query=None, notes="no parseable completion")
        return ParseResult(query=query, candidates=[query], confidence=0.7)


class FewShotLLMParser(LLMParserBase):
    """In-context learning with demonstration selection."""

    name = "few-shot llm"
    year = 2023

    def __init__(
        self,
        model: str | ModelProfile = "chatgpt-like",
        seed: int = 0,
        num_demos: int = 4,
        selection: str = "similar",  # "random" | "similar" | "diverse"
        clear_prompting: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(model, seed, clear_prompting, name)
        self.num_demos = num_demos
        self.selection = selection
        self.pool: list[tuple[str, str]] = []

    def train(
        self, examples: list[Example], databases: dict[str, Database]
    ) -> None:
        self.pool = [(e.question, e.sql) for e in examples]

    # ------------------------------------------------------------------
    def _select_demos(self, question: str) -> list[tuple[str, str]]:
        if not self.pool:
            return []
        k = min(self.num_demos, len(self.pool))
        if self.selection == "random":
            rng = random.Random(self.seed)
            return rng.sample(self.pool, k)
        scored = sorted(
            self.pool,
            key=lambda pair: -_similarity(question, pair[0]),
        )
        if self.selection == "similar":
            return scored[:k]
        # diverse: greedy max-min over the similarity-ranked shortlist
        shortlist = scored[: max(k * 5, 20)]
        chosen: list[tuple[str, str]] = [shortlist[0]]
        while len(chosen) < k and len(chosen) < len(shortlist):
            best = max(
                (c for c in shortlist if c not in chosen),
                key=lambda c: min(
                    1.0 - _similarity(c[0], picked[0]) for picked in chosen
                ),
            )
            chosen.append(best)
        return chosen

    def parse(self, request: ParseRequest) -> ParseResult:
        demos = self._select_demos(request.question)
        prompt = self._builder().build(
            question=request.question,
            schema=request.schema,
            demonstrations=demos or None,
            knowledge=request.knowledge,
            history=self._history_text(request) or None,
        )
        query = self._single(prompt)
        if query is None:
            return ParseResult(query=None, notes="no parseable completion")
        return ParseResult(query=query, candidates=[query], confidence=0.75)


class ChainOfThoughtLLMParser(FewShotLLMParser):
    """Few-shot plus a chain-of-thought instruction."""

    name = "chain-of-thought llm"
    year = 2023

    def parse(self, request: ParseRequest) -> ParseResult:
        demos = self._select_demos(request.question)
        prompt = self._builder(chain_of_thought=True).build(
            question=request.question,
            schema=request.schema,
            demonstrations=demos or None,
            knowledge=request.knowledge,
            history=self._history_text(request) or None,
        )
        query = self._single(prompt)
        if query is None:
            return ParseResult(query=None, notes="no parseable completion")
        return ParseResult(query=query, candidates=[query], confidence=0.8)


class SelfConsistencyLLMParser(FewShotLLMParser):
    """Execution-based self-consistency voting (SQL-PaLM recipe)."""

    name = "self-consistency llm"
    year = 2023

    def __init__(
        self,
        model: str | ModelProfile = "palm-like",
        seed: int = 0,
        num_demos: int = 4,
        samples: int = 7,
        temperature: float = 0.7,
        clear_prompting: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(
            model, seed, num_demos, "similar", clear_prompting, name
        )
        self.samples = samples
        self.temperature = temperature

    def parse(self, request: ParseRequest) -> ParseResult:
        demos = self._select_demos(request.question)
        prompt = self._builder(chain_of_thought=True).build(
            question=request.question,
            schema=request.schema,
            demonstrations=demos or None,
            knowledge=request.knowledge,
            history=self._history_text(request) or None,
        )
        completions = self.llm.complete(
            prompt, temperature=self.temperature, n=self.samples
        )
        queries = self._completions_to_queries(completions)
        if not queries:
            return ParseResult(query=None, notes="no parseable completion")
        chosen = _majority_by_execution(queries, request.db)
        return ParseResult(query=chosen, candidates=queries, confidence=0.85)


class MultiStageLLMParser(FewShotLLMParser):
    """DIN-SQL-style decomposition with self-correction.

    Stage 1 (classification): estimate question hardness from surface cues.
    Stage 2 (generation): easy questions get a plain few-shot prompt; hard
    questions get chain-of-thought.  Stage 3 (self-correction): execute the
    candidate; on error or empty result, issue a repair prompt carrying the
    failure, up to ``max_repairs`` times.
    """

    name = "multi-stage llm"
    year = 2023

    def __init__(
        self,
        model: str | ModelProfile = "chatgpt-like",
        seed: int = 0,
        num_demos: int = 4,
        max_repairs: int = 2,
        clear_prompting: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(
            model, seed, num_demos, "similar", clear_prompting, name
        )
        self.max_repairs = max_repairs

    _HARD_CUES = (
        "for each", "per", "grouped", "broken down", "that have",
        "average", "at least", "sorted", "top", "bottom", "but not",
        "as well as", "also",
    )

    def _is_hard(self, question: str) -> bool:
        lowered = question.lower()
        return any(cue in lowered for cue in self._HARD_CUES)

    def parse(self, request: ParseRequest) -> ParseResult:
        demos = self._select_demos(request.question)
        cot = self._is_hard(request.question)
        builder = self._builder(chain_of_thought=cot)
        prompt = builder.build(
            question=request.question,
            schema=request.schema,
            demonstrations=demos or None,
            knowledge=request.knowledge,
            history=self._history_text(request) or None,
        )
        query = self._single(prompt)
        candidates = [query] if query is not None else []

        for _ in range(self.max_repairs):
            failure = self._failure_of(query, request.db)
            if failure is None:
                break
            previous = to_sql(query) if query is not None else "(unparseable)"
            repair_prompt = builder.build(
                question=request.question,
                schema=request.schema,
                demonstrations=demos or None,
                knowledge=request.knowledge,
                history=self._history_text(request) or None,
                repair_of=previous,
                error=failure,
            )
            repaired = self._single(repair_prompt)
            if repaired is None:
                break
            query = repaired
            candidates.append(repaired)

        if query is None:
            return ParseResult(query=None, notes="no parseable completion")
        return ParseResult(query=query, candidates=candidates, confidence=0.85)

    def _failure_of(
        self, query: Query | None, db: Database | None
    ) -> str | None:
        if query is None:
            return "the answer was not valid SQL"
        if db is None:
            return None
        try:
            result = execute(query, db)
        except SQLError as exc:
            return str(exc)
        if not result.rows:
            return "the query returned an empty result"
        return None


class RetrievalRevisionLLMParser(MultiStageLLMParser):
    """Retrieval-augmented prompting with a dynamic revision chain.

    Guo et al.'s recipe: sample-aware demonstrations (nearest neighbours
    from the pool) plus an iterative revision loop driven by execution
    feedback — structurally the multi-stage parser with retrieval-first
    demo selection and more revision rounds.
    """

    name = "retrieval-revision llm"
    year = 2023

    def __init__(
        self,
        model: str | ModelProfile = "chatgpt-like",
        seed: int = 0,
        num_demos: int = 6,
        max_repairs: int = 3,
        clear_prompting: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(
            model, seed, num_demos, max_repairs, clear_prompting, name
        )


# ----------------------------------------------------------------------
def _similarity(a: str, b: str) -> float:
    ta, tb = set(a.lower().split()), set(b.lower().split())
    union = ta | tb
    return len(ta & tb) / len(union) if union else 0.0


def _majority_by_execution(
    queries: list[Query], db: Database | None
) -> Query:
    """Self-consistency vote: group candidates by execution result."""
    if db is None or len(queries) == 1:
        return queries[0]
    buckets: dict[tuple, list[Query]] = {}
    order: list[tuple] = []
    for query in queries:
        try:
            result = execute(query, db)
            key = ("ok", tuple(sorted(map(str, result.rows)))[:50])
        except SQLError:
            key = ("error",)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(query)
    best_key = max(
        order,
        key=lambda k: (len(buckets[k]), k[0] == "ok"),
    )
    return buckets[best_key][0]
