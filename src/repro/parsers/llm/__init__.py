"""LLM-stage parsers: prompting strategies over the simulated LLM.

One class per surveyed prompting family (Section 4.1.3, "LLM-based"):

- :class:`ZeroShotLLMParser` — zero-shot prompting (Rajkumar et al.,
  Liu et al.), with C3-style *clear prompting* as an option;
- :class:`FewShotLLMParser` — in-context learning with demonstration
  selection strategies (random / similar / diverse; Nan et al.);
- :class:`ChainOfThoughtLLMParser` — CoT prompting (Tai et al.,
  Divide-and-Prompt);
- :class:`SelfConsistencyLLMParser` — execution-based self-consistency
  sampling (SQL-PaLM);
- :class:`MultiStageLLMParser` — decomposed prompting with self-correction
  (DIN-SQL);
- :class:`RetrievalRevisionLLMParser` — retrieval-augmented prompting with
  a dynamic revision chain (Guo et al.).
"""

from repro.parsers.llm.strategies import (
    ChainOfThoughtLLMParser,
    FewShotLLMParser,
    LLMParserBase,
    MultiStageLLMParser,
    RetrievalRevisionLLMParser,
    SelfConsistencyLLMParser,
    ZeroShotLLMParser,
)

__all__ = [
    "ChainOfThoughtLLMParser",
    "FewShotLLMParser",
    "LLMParserBase",
    "MultiStageLLMParser",
    "RetrievalRevisionLLMParser",
    "SelfConsistencyLLMParser",
    "ZeroShotLLMParser",
]
