"""Keyword/rule-based parser: the traditional-stage representative.

PRECISE (2004) assumed a one-to-one correspondence between question words
and database elements; NaLIR (2014) matched parse-tree nodes to schema
elements with hand-written rules.  This parser reproduces the family's
essential character: a fixed set of keyword templates over *exact* schema
names (no synonym lexicon, no learned robustness), covering projections,
one comparison condition, and the four aggregates.

Its documented strengths and weaknesses (Table 4 of the survey) follow
directly: it is precise and predictable on in-template phrasings and
collapses on anything else — paraphrases, synonyms, joins, grouping,
nesting all fall outside its rule set.
"""

from __future__ import annotations

import re

from repro.data.schema import ColumnType, Schema, TableSchema
from repro.errors import NLParseError
from repro.parsers.base import ParseRequest, ParseResult, Parser, TRADITIONAL
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    Select,
    SelectItem,
    Star,
    TableRef,
)

#: The only operator phrasings the rules recognize (canonical forms only).
_RULE_OPS = (
    ("is greater than", ">"),
    ("is less than", "<"),
    ("is at least", ">="),
    ("is at most", "<="),
    ("is not", "<>"),
    ("equals", "="),
    ("is", "="),
)

#: The only aggregate keywords the rules recognize.
_RULE_AGGS = (
    ("how many", "count"),
    ("the number of", "count"),
    ("the average", "avg"),
    ("the total", "sum"),
    ("the minimum", "min"),
    ("the maximum", "max"),
)


class KeywordRuleParser(Parser):
    """See module docstring."""

    name = "keyword rule parser"
    stage = TRADITIONAL
    year = 2004

    def parse(self, request: ParseRequest) -> ParseResult:
        try:
            query = self._parse(request.question, request.schema)
        except NLParseError as exc:
            return ParseResult(query=None, notes=str(exc))
        return ParseResult(query=query, candidates=[query], confidence=0.6)

    # ------------------------------------------------------------------
    def _parse(self, question: str, schema: Schema) -> Select:
        text = question.strip().rstrip("?").strip()
        lowered = text.lower()

        table = self._find_table(lowered, schema)
        if table is None:
            raise NLParseError("no table keyword found")

        agg = None
        for phrase, func in _RULE_AGGS:
            if phrase in lowered:
                agg = func
                break

        where = self._find_condition(lowered, table)

        if agg == "count":
            items = (SelectItem(expr=FuncCall(name="count", args=(Star(),))),)
        elif agg is not None:
            column = self._column_after_agg(lowered, agg, table)
            if column is None:
                raise NLParseError("aggregate column not found")
            items = (
                SelectItem(
                    expr=FuncCall(
                        name=agg, args=(ColumnRef(column=column.lower()),)
                    )
                ),
            )
        else:
            columns = self._projection_columns(lowered, table)
            if not columns:
                raise NLParseError("no projection columns found")
            items = tuple(
                SelectItem(expr=ColumnRef(column=c.lower())) for c in columns
            )

        return Select(
            items=items,
            from_=TableRef(name=table.name.lower()),
            where=where,
        )

    # ------------------------------------------------------------------
    def _find_table(self, lowered: str, schema: Schema) -> TableSchema | None:
        # exact table-name match only (with a naive plural fallback)
        best: TableSchema | None = None
        best_pos = len(lowered) + 1
        for table in schema.tables:
            name = table.name.lower().replace("_", " ")
            for variant in (name, name.rstrip("s"), name + "s"):
                pos = lowered.find(variant)
                if 0 <= pos < best_pos:
                    best, best_pos = table, pos
        return best

    def _projection_columns(
        self, lowered: str, table: TableSchema
    ) -> list[str]:
        found: list[tuple[int, str]] = []
        for column in table.columns:
            name = column.name.lower().replace("_", " ")
            pos = lowered.find(name)
            if pos >= 0:
                found.append((pos, column.name))
        found.sort()
        # columns mentioned inside the condition clause are not projections
        condition_start = lowered.find(" whose ")
        if condition_start >= 0:
            found = [f for f in found if f[0] < condition_start]
        return [name for _, name in found]

    def _column_after_agg(
        self, lowered: str, agg: str, table: TableSchema
    ) -> str | None:
        for column in table.columns:
            if column.type is not ColumnType.NUMBER:
                continue
            name = column.name.lower().replace("_", " ")
            if name in lowered:
                return column.name
        return None

    def _find_condition(self, lowered: str, table: TableSchema):
        index = lowered.find(" whose ")
        if index < 0:
            return None
        clause = lowered[index + len(" whose "):]
        for phrase, op in _RULE_OPS:
            pattern = r"\b" + re.escape(phrase) + r"\b"
            match = re.search(pattern, clause)
            if not match:
                continue
            col_part = clause[: match.start()].strip()
            val_part = clause[match.end():].strip().rstrip("?,. ")
            column = None
            for candidate in table.columns:
                if candidate.name.lower().replace("_", " ") in col_part:
                    column = candidate
                    break
            if column is None or not val_part:
                continue
            value = _rule_value(val_part)
            return BinaryOp(
                op=op,
                left=ColumnRef(column=column.name.lower()),
                right=Literal(value),
            )
        raise NLParseError("condition outside rule templates")


def _rule_value(text: str):
    text = text.strip().strip("'\"")
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    # the rule parser title-cases bare string values, an approximation that
    # often misses the stored casing — a realistic rule-system failure mode
    return text
