"""Schema linking: finding schema-element mentions in a question.

Schema linking is, per the survey, the central sub-problem of Text-to-SQL
("elevating the schema linking challenge" is how Spider-SYN is described).
Every parser family in this library shares this linker; families differ in
the *knowledge* they bring to it:

- exact linking (rule/template parsers) matches schema names and declared
  schema synonyms only;
- ``world_knowledge=True`` (PLM/LLM-grade linking) additionally inverts the
  out-of-schema synonym table that the Spider-SYN-style perturbation draws
  from — modelling pretrained models' lexical knowledge;
- ``fuzzy=True`` tolerates small edit distances (typo robustness).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.data.schema import Column, Schema, TableSchema
from repro.nlg.perturb import OUT_OF_SCHEMA_SYNONYMS


@dataclass(frozen=True)
class Mention:
    """One linked schema mention inside a question."""

    start: int
    end: int
    surface: str
    kind: str  # "table" | "column"
    table: str
    column: str | None = None


class SchemaLinker:
    """Longest-match schema-mention finder over one schema."""

    def __init__(
        self,
        schema: Schema,
        world_knowledge: bool = False,
        fuzzy: bool = False,
    ) -> None:
        self.schema = schema
        self.world_knowledge = world_knowledge
        self.fuzzy = fuzzy
        self._index: dict[str, tuple[str, str, str | None]] = {}
        self._column_candidates: dict[str, list[tuple[str, str]]] = {}
        self._build_index()

    # ------------------------------------------------------------------
    def _build_index(self) -> None:
        for table in self.schema.tables:
            for surface in self._table_surfaces(table):
                self._index.setdefault(surface, ("table", table.name, None))
            for column in table.columns:
                for surface in self._column_surfaces(column):
                    self._index.setdefault(
                        surface, ("column", table.name, column.name)
                    )
                    candidates = self._column_candidates.setdefault(
                        surface, []
                    )
                    pair = (table.name, column.name)
                    if pair not in candidates:
                        candidates.append(pair)

    def column_candidates(self, surface: str) -> list[tuple[str, str]]:
        """All (table, column) pairs a surface form could refer to.

        Columns like ``city`` exist in several tables; the semantic parser
        disambiguates using a table mentioned nearby in the phrase.
        """
        return list(self._column_candidates.get(surface.lower(), ()))

    def _table_surfaces(self, table: TableSchema) -> list[str]:
        surfaces = []
        for mention in table.mentions():
            surfaces.extend(_number_variants(mention))
        return surfaces

    def _column_surfaces(self, column: Column) -> list[str]:
        surfaces = []
        for mention in column.mentions():
            surfaces.extend(_number_variants(mention))
        if self.world_knowledge:
            base = column.mentions()[0]
            for synonym in OUT_OF_SCHEMA_SYNONYMS.get(base, ()):
                surfaces.extend(_number_variants(synonym))
        return surfaces

    # ------------------------------------------------------------------
    def link(self, question: str) -> list[Mention]:
        """All non-overlapping mentions, longest-match, left to right."""
        lowered = question.lower()
        words = _word_spans(lowered)
        mentions: list[Mention] = []
        i = 0
        max_len = max((s.count(" ") + 1 for s in self._index), default=1)
        while i < len(words):
            match = self._match_at(lowered, words, i, max_len)
            if match is None and self.fuzzy:
                match = self._fuzzy_match_at(lowered, words, i)
            if match is None:
                i += 1
                continue
            mention, consumed = match
            mentions.append(mention)
            i += consumed
        return mentions

    def _match_at(
        self,
        lowered: str,
        words: list[tuple[int, int]],
        i: int,
        max_len: int,
    ) -> tuple[Mention, int] | None:
        for length in range(min(max_len, len(words) - i), 0, -1):
            start = words[i][0]
            end = words[i + length - 1][1]
            surface = lowered[start:end]
            hit = self._index.get(surface)
            if hit is not None:
                kind, table, column = hit
                return (
                    Mention(
                        start=start,
                        end=end,
                        surface=surface,
                        kind=kind,
                        table=table,
                        column=column,
                    ),
                    length,
                )
        return None

    def _fuzzy_match_at(
        self, lowered: str, words: list[tuple[int, int]], i: int
    ) -> tuple[Mention, int] | None:
        start, end = words[i]
        word = lowered[start:end]
        if len(word) < 4:
            return None
        best = None
        for surface, hit in self._index.items():
            if " " in surface or abs(len(surface) - len(word)) > 1:
                continue
            if _edit_distance_at_most_one(word, surface):
                best = (surface, hit)
                break
        if best is None:
            return None
        surface, (kind, table, column) = best
        return (
            Mention(
                start=start,
                end=end,
                surface=word,
                kind=kind,
                table=table,
                column=column,
            ),
            1,
        )

    # ------------------------------------------------------------------
    # convenience accessors used by parsers
    # ------------------------------------------------------------------
    def tables_in(self, question: str) -> list[str]:
        out = []
        for mention in self.link(question):
            if mention.kind == "table" and mention.table not in out:
                out.append(mention.table)
        return out

    def columns_in(self, question: str) -> list[tuple[str, str]]:
        out = []
        for mention in self.link(question):
            if mention.kind == "column":
                pair = (mention.table, mention.column or "")
                if pair not in out:
                    out.append(pair)
        return out

    def first_table(self, question: str) -> str | None:
        tables = self.tables_in(question)
        return tables[0] if tables else None

    def link_phrase(self, phrase: str) -> Mention | None:
        """Link a short phrase expected to be a single schema mention."""
        mentions = self.link(phrase)
        if not mentions:
            return None
        # prefer column mentions; they are the common case for phrases
        columns = [m for m in mentions if m.kind == "column"]
        return (columns or mentions)[-1]


def _word_spans(text: str) -> list[tuple[int, int]]:
    return [m.span() for m in re.finditer(r"[a-z0-9_']+", text)]


def _number_variants(mention: str) -> list[str]:
    """A mention plus naive singular/plural variants."""
    mention = mention.lower()
    variants = [mention]
    if mention.endswith("s"):
        variants.append(mention[:-1])
    else:
        variants.append(mention + "s")
    if mention.endswith("y"):
        variants.append(mention[:-1] + "ies")
    return variants


def _edit_distance_at_most_one(a: str, b: str) -> bool:
    if a == b:
        return True
    if abs(len(a) - len(b)) > 1:
        return False
    if len(a) > len(b):
        a, b = b, a
    # a is shorter or equal
    i = j = diffs = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            i += 1
            j += 1
            continue
        diffs += 1
        if diffs > 1:
            return False
        if len(a) == len(b):
            i += 1
        j += 1
    return True
