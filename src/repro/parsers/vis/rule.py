"""Template-based Text-to-Vis parser (DataTone / ADVISor / NL4DV lineage).

The traditional Vis systems filled a small set of visualization templates
from keyword matches: a chart-type keyword, an optional aggregate keyword,
an exact-named category column for the axis, and an exact-named measure.
This parser reproduces that template space — count/aggregate per category
(bar/pie/line) and numeric pair (scatter) — over exact schema names only,
with the documented brittleness to paraphrase and synonym variation.
"""

from __future__ import annotations

from repro.data.schema import ColumnType, TableSchema
from repro.parsers.base import ParseRequest
from repro.parsers.vis.base import VisParser, detect_chart_type
from repro.sql.ast import (
    ColumnRef,
    FuncCall,
    Select,
    SelectItem,
    Star,
    TableRef,
)

_AGG_KEYWORDS = (
    ("average", "avg"), ("mean", "avg"), ("total", "sum"), ("sum", "sum"),
    ("minimum", "min"), ("maximum", "max"),
)


class DataToneVisParser(VisParser):
    """See module docstring."""

    name = "template vis parser"
    stage = "traditional"
    year = 2015

    def parse_vis(self, request: ParseRequest) -> str | None:
        question = request.question.lower()
        chart_type = detect_chart_type(question)

        table = self._find_table(question, request)
        if table is None:
            return None

        if chart_type == "scatter":
            return self._scatter(question, table, chart_type)
        return self._category_chart(question, table, chart_type)

    # ------------------------------------------------------------------
    def _find_table(
        self, question: str, request: ParseRequest
    ) -> TableSchema | None:
        for table in request.schema.tables:
            name = table.name.lower().replace("_", " ")
            # removesuffix, not rstrip: rstrip("s") strips *all* trailing
            # 's' chars ("boss" -> "bo"), matching unrelated words
            if name in question or name.removesuffix("s") in question:
                return table
        return None

    def _scatter(
        self, question: str, table: TableSchema, chart_type: str
    ) -> str | None:
        numeric = [
            c
            for c in table.columns
            if c.type is ColumnType.NUMBER
            and c.name.lower().replace("_", " ") in question
        ]
        if len(numeric) < 2:
            return None
        query = Select(
            items=(
                SelectItem(expr=ColumnRef(column=numeric[0].name.lower())),
                SelectItem(expr=ColumnRef(column=numeric[1].name.lower())),
            ),
            from_=TableRef(name=table.name.lower()),
        )
        return self.assemble_vql(chart_type, query)

    def _category_chart(
        self, question: str, table: TableSchema, chart_type: str
    ) -> str | None:
        category = None
        for column in table.columns:
            if column.type is not ColumnType.TEXT:
                continue
            if column.name.lower().replace("_", " ") in question:
                category = column
                break
        if category is None:
            return None

        agg = "count"
        agg_column = None
        for keyword, func in _AGG_KEYWORDS:
            if keyword in question:
                numeric = [
                    c
                    for c in table.columns
                    if c.type is ColumnType.NUMBER
                    and c.name.lower().replace("_", " ") in question
                ]
                if numeric:
                    agg = func
                    agg_column = numeric[0]
                break

        if agg == "count":
            agg_expr = FuncCall(name="count", args=(Star(),))
        else:
            agg_expr = FuncCall(
                name=agg,
                args=(ColumnRef(column=agg_column.name.lower()),),
            )
        group_ref = ColumnRef(column=category.name.lower())
        query = Select(
            items=(SelectItem(expr=group_ref), SelectItem(expr=agg_expr)),
            from_=TableRef(name=table.name.lower()),
            group_by=(group_ref,),
        )
        return self.assemble_vql(chart_type, query)
