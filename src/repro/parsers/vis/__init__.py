"""Text-to-Vis parsers: one representative per surveyed family.

- :class:`DataToneVisParser` — traditional template parsing (DataTone /
  NL4DV lineage, 2015-2021);
- :class:`Seq2VisParser` — seq2seq-era neural parser (Seq2Vis, 2021):
  single-table sketch space, which is why its nvBench overall accuracy is
  the lowest of the neural family;
- :class:`NcNetParser` — transformer-era neural parser (ncNet, 2022):
  grammar decoding without graph features;
- :class:`RGVisNetParser` — retrieval-then-revision (RGVisNet, 2022):
  delexicalized VQL skeleton retrieval plus learned slot filling;
- :class:`Chat2VisParser` / :class:`NL2InterfaceParser` — LLM prompting
  (Chat2VIS zero-shot; NL2INTERFACE few-shot), 2022-2023.
"""

from repro.parsers.vis.base import VisParser
from repro.parsers.vis.llm import Chat2VisParser, NL2InterfaceParser
from repro.parsers.vis.neural import NcNetParser, Seq2VisParser
from repro.parsers.vis.retrieval import RGVisNetParser
from repro.parsers.vis.rule import DataToneVisParser

__all__ = [
    "Chat2VisParser",
    "DataToneVisParser",
    "NL2InterfaceParser",
    "NcNetParser",
    "RGVisNetParser",
    "Seq2VisParser",
    "VisParser",
]
