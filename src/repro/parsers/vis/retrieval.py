"""Retrieval-then-revision Text-to-Vis parser (RGVisNet lineage).

RGVisNet retrieves the most relevant *delexicalized* VQL skeleton from a
codebase of training queries, then revises it with a learned decoder, and
reports gains over pure generation models (ncNet) on nvBench.  We
reproduce the architecture over our substrate:

1. **generation backbone** — the full relation-aware grammar parser (graph
   features on, unlike the ncNet sequence model) with a trained chart-type
   head;
2. **retrieval** — training VQLs are delexicalized into typed-slot
   skeletons indexed by their question's token profile;
3. **revision** — when the generation backbone fails (no candidate or an
   invalid query), the nearest skeleton is re-grounded in the current
   schema by the backbone's role rankers and used as the recovery path.

The combination dominates ncNet for two reasons that mirror the paper's:
the stronger schema encoding, and skeleton recovery on structures the
generator cannot compose.
"""

from __future__ import annotations

import re

import numpy as np

from repro.data.database import Database
from repro.data.schema import ColumnType
from repro.datasets.base import Example
from repro.errors import ReproError
from repro.parsers.base import ParseRequest
from repro.parsers.neural.features import FeatureConfig, question_vector
from repro.parsers.neural.grammar import GrammarNeuralParser
from repro.parsers.neural.models import SoftmaxClassifier
from repro.parsers.vis.base import VisParser
from repro.sql.analyzer import is_valid
from repro.vis.lint.gate import VisLintGate
from repro.vis.vql import CHART_TYPES, parse_vql


class RGVisNetParser(VisParser):
    """See module docstring."""

    name = "rgvisnet parser"
    stage = "neural"
    year = 2022

    def __init__(
        self, seed: int = 0, lint_gate: VisLintGate | None = None
    ) -> None:
        self.lint_gate = lint_gate
        self.config = FeatureConfig()  # graph features on (relation-aware)
        self.backbone = GrammarNeuralParser(
            config=self.config,
            name="rgvisnet backbone",
            year=2022,
            seed=seed,
        )
        self.chart_head = SoftmaxClassifier(
            self.config.dim, len(CHART_TYPES), seed=seed
        )
        self.codebase: list[tuple[set[str], str]] = []
        self.trained = False

    # ------------------------------------------------------------------
    def train(
        self,
        examples: list[Example],
        databases: dict[str, Database],
    ) -> None:
        sql_examples = []
        features = []
        labels = []
        for example in examples:
            if example.vql is None:
                continue
            db = databases.get(example.db_id)
            if db is None:
                continue
            try:
                vql = parse_vql(example.vql)
            except ReproError:
                continue
            sql_examples.append(example)
            features.append(question_vector(example.question, self.config))
            labels.append(CHART_TYPES.index(vql.chart_type))
            skeleton = _delexicalize(example.vql, db)
            if skeleton is not None:
                self.codebase.append(
                    (_token_profile(example.question), skeleton)
                )
        if features:
            self.chart_head.fit(np.stack(features), np.array(labels))
        self.backbone.train(sql_examples, databases)
        self.trained = True

    # ------------------------------------------------------------------
    def parse_vis(self, request: ParseRequest) -> str | None:
        if not self.trained:
            return None
        chart_type = CHART_TYPES[
            self.chart_head.predict(
                question_vector(request.question, self.config)
            )
        ]
        result = self.backbone.parse(request)
        if self.lint_gate is not None:
            return self._gated(chart_type, result, request)
        if result.query is not None and is_valid(
            result.query, request.schema
        ):
            return self.assemble_vql(chart_type, result.query)
        # recovery path: retrieve and revise a skeleton
        revised = self._retrieve_and_revise(request)
        if revised is not None:
            return revised
        if result.query is not None:
            return self.assemble_vql(chart_type, result.query)
        return None

    def _gated(self, chart_type, result, request: ParseRequest) -> str | None:
        """Gate-ranked variant: generation and recovery candidates compete.

        Candidates keep the ungated priority order (valid generation,
        revised skeleton, raw generation), so with a silent gate or when
        every candidate is pruned the answer matches the ungated path.
        """
        candidates: list[str] = []
        if result.query is not None and is_valid(
            result.query, request.schema
        ):
            candidates.append(self.assemble_vql(chart_type, result.query))
        revised = self._retrieve_and_revise(request)
        if revised is not None and revised not in candidates:
            candidates.append(revised)
        if result.query is not None:
            raw = self.assemble_vql(chart_type, result.query)
            if raw not in candidates:
                candidates.append(raw)
        if not candidates:
            return None
        decision = self.lint_gate.decide(
            candidates, request.schema, db=request.db
        )
        if decision.chosen is not None:
            return decision.chosen
        return candidates[0]

    def _retrieve_and_revise(self, request: ParseRequest) -> str | None:
        if not self.codebase:
            return None
        profile = _token_profile(request.question)
        best = max(self.codebase, key=lambda e: _overlap(profile, e[0]))
        if _overlap(profile, best[0]) < 0.2:
            return None
        filled = self._fill_skeleton(best[1], request)
        if filled is None:
            return None
        try:
            vql = parse_vql(filled)
        except ReproError:
            return None
        if not is_valid(vql.query, request.schema):
            return None
        return filled

    def _fill_skeleton(self, skeleton: str, request: ParseRequest) -> str | None:
        """Re-ground a delexicalized skeleton in the current schema."""
        question = request.question
        schema = request.schema
        main = self.backbone._predict_table(question, schema)

        slots: dict[str, str | None] = {"<TABLE>": main.name.lower()}
        cat = self.backbone._predict_column(
            question, schema, main, "group",
            type_filter=(ColumnType.TEXT, ColumnType.DATE),
        )
        slots["<CAT>"] = (
            cat[1].name.lower()
            if cat is not None and cat[0].name.lower() == main.name.lower()
            else None
        )
        num = self.backbone._predict_column(
            question, schema, main, "agg",
            type_filter=(ColumnType.NUMBER,),
        )
        slots["<NUM>"] = (
            num[1].name.lower()
            if num is not None and num[0].name.lower() == main.name.lower()
            else None
        )
        col = self.backbone._predict_column(
            question, schema, main, "projection"
        )
        slots["<COL>"] = (
            col[1].name.lower()
            if col is not None and col[0].name.lower() == main.name.lower()
            else None
        )

        out = skeleton
        for slot, value in slots.items():
            if slot in out:
                if value is None:
                    return None
                out = out.replace(slot, value)
        return out


# ----------------------------------------------------------------------
def _token_profile(question: str) -> set[str]:
    return set(re.findall(r"[a-z']+", question.lower()))


def _overlap(a: set[str], b: set[str]) -> float:
    union = a | b
    return len(a & b) / len(union) if union else 0.0


def _delexicalize(vql_text: str, db: Database) -> str | None:
    """Replace schema identifiers in a VQL string with typed slots.

    Only single-table VQLs delexicalize cleanly (multi-table skeletons
    would need join slots); others return None and are covered only by the
    generation path — matching RGVisNet's codebase curation.
    """
    try:
        parse_vql(vql_text)
    except ReproError:
        return None
    text = vql_text
    table_names = sorted(
        (t.schema.name for t in db.tables.values()), key=len, reverse=True
    )
    used_tables = [
        name for name in table_names if name.lower() in text.lower()
    ]
    if len(used_tables) != 1:
        return None
    table = db.table(used_tables[0])
    text = re.sub(
        re.escape(used_tables[0]), "<TABLE>", text, flags=re.IGNORECASE
    )
    for column in table.schema.columns:
        if column.name.lower() not in text.lower():
            continue
        if column.type is ColumnType.NUMBER:
            slot = "<NUM>"
        elif column.type is ColumnType.TEXT:
            slot = "<CAT>"
        else:
            slot = "<COL>"
        text = re.sub(
            r"\b" + re.escape(column.name) + r"\b",
            slot,
            text,
            flags=re.IGNORECASE,
        )
    return text
