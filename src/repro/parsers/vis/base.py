"""Base interface for Text-to-Vis parsers.

A Vis parser maps a :class:`~repro.parsers.base.ParseRequest` to a VQL
string (``VISUALIZE <TYPE> <SQL>``) or ``None`` on failure.  The shared
helpers cover chart-type keyword detection — every surveyed system, from
DataTone to Chat2VIS, reads the requested chart type off surface cues —
and VQL assembly.
"""

from __future__ import annotations

import abc

from repro.data.database import Database
from repro.datasets.base import Example
from repro.parsers.base import ParseRequest
from repro.sql.ast import Query
from repro.sql.unparser import to_sql

#: chart-type keyword table (mirrors the NLG lexicon's chart phrases)
_CHART_KEYWORDS: tuple[tuple[str, str], ...] = (
    ("scatter", "scatter"),
    ("pie", "pie"),
    ("proportion", "pie"),
    ("line", "line"),
    ("trend", "line"),
    ("bar", "bar"),
)


def detect_chart_type(question: str, default: str = "bar") -> str:
    """Read the requested chart type off the question's surface cues."""
    lowered = question.lower()
    for keyword, chart_type in _CHART_KEYWORDS:
        if keyword in lowered:
            return chart_type
    if "points plotting" in lowered or "comparing" in lowered:
        return "scatter"
    return default


class VisParser(abc.ABC):
    """Base class for all Text-to-Vis parsers."""

    name: str = "vis parser"
    stage: str = "traditional"
    year: int = 2015

    @abc.abstractmethod
    def parse_vis(self, request: ParseRequest) -> str | None:
        """Translate the request's question into a VQL string."""

    def train(
        self,
        examples: list[Example],
        databases: dict[str, Database],
    ) -> None:
        """Fit on training examples (no-op for rule/LLM parsers)."""
        del examples, databases

    @staticmethod
    def assemble_vql(chart_type: str, query: Query) -> str:
        return f"VISUALIZE {chart_type.upper()} {to_sql(query)}"
