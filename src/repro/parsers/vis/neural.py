"""Neural Text-to-Vis parsers (Seq2Vis and ncNet lineage).

Both parsers pair a trained chart-type classifier with a trained
Text-to-SQL backbone for the data query, exactly the VQL factorization the
surveyed systems use:

- :class:`Seq2VisParser` backs onto the single-table *sketch* parser —
  the seq2seq era could not compose joins or grouping reliably, which is
  why Seq2Vis' overall nvBench accuracy in Table 2 is near the floor;
- :class:`NcNetParser` backs onto the grammar parser without graph
  features (a transformer-class sequence model), landing in the middle of
  the nvBench column.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import Database
from repro.datasets.base import Example
from repro.errors import ReproError
from repro.parsers.base import ParseRequest
from repro.parsers.neural.features import FeatureConfig, question_vector
from repro.parsers.neural.grammar import GrammarNeuralParser
from repro.parsers.neural.models import SoftmaxClassifier
from repro.parsers.neural.sketch import SketchParser
from repro.parsers.vis.base import VisParser
from repro.vis.vql import CHART_TYPES, parse_vql


class _NeuralVisParser(VisParser):
    """Shared training/inference for classifier + SQL-backbone parsers."""

    def __init__(self, backbone, config: FeatureConfig, seed: int = 0) -> None:
        self.backbone = backbone
        self.config = config
        self.chart_head = SoftmaxClassifier(
            config.dim, len(CHART_TYPES), seed=seed
        )
        self.trained = False

    def train(
        self,
        examples: list[Example],
        databases: dict[str, Database],
    ) -> None:
        sql_examples = []
        features = []
        labels = []
        for example in examples:
            if example.vql is None:
                continue
            try:
                vql = parse_vql(example.vql)
            except ReproError:
                continue
            sql_examples.append(example)
            features.append(question_vector(example.question, self.config))
            labels.append(CHART_TYPES.index(vql.chart_type))
        if features:
            self.chart_head.fit(np.stack(features), np.array(labels))
        # the backbone trains on (question, sql) pairs of the same examples
        self.backbone.train(sql_examples, databases)
        self.trained = True

    def parse_vis(self, request: ParseRequest) -> str | None:
        if not self.trained:
            return None
        chart_index = self.chart_head.predict(
            question_vector(request.question, self.config)
        )
        chart_type = CHART_TYPES[chart_index]
        result = self.backbone.parse(request)
        if result.query is None:
            return None
        return self.assemble_vql(chart_type, result.query)


class Seq2VisParser(_NeuralVisParser):
    """Seq2seq-era Vis parser; see module docstring."""

    name = "seq2vis parser"
    stage = "neural"
    year = 2021

    def __init__(self, seed: int = 0) -> None:
        config = FeatureConfig(
            bigrams=False, context=False, graph=False, value_link=False
        )
        super().__init__(
            backbone=SketchParser(config=config, seed=seed),
            config=config,
            seed=seed,
        )


class NcNetParser(_NeuralVisParser):
    """Transformer-era Vis parser; see module docstring."""

    name = "ncnet parser"
    stage = "neural"
    year = 2022

    def __init__(self, seed: int = 0) -> None:
        # sequence model: no graph features and no relation-aware context —
        # those are exactly what RGVisNet's hybrid encoder adds on top
        config = FeatureConfig(graph=False, context=False)
        super().__init__(
            backbone=GrammarNeuralParser(
                config=config, name="ncnet backbone", year=2022, seed=seed
            ),
            config=config,
            seed=seed,
        )
