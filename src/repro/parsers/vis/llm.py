"""LLM-prompted Text-to-Vis parsers (Chat2VIS and NL2INTERFACE lineage).

Chat2VIS prompts a code LLM zero-shot with the schema and the chart
request; NL2INTERFACE prepares few-shot examples mapping questions to VQL
before prompting.  Both run against the simulated LLM with ``task="vis"``
prompts, whose completions are VQL programs.

Both parsers accept a :class:`~repro.vis.lint.VisLintGate`: with
``n_candidates > 1`` they sample several completions and let the gate's
static diagnostics pick the cleanest — the self-consistency idea with a
static verifier instead of majority voting.
"""

from __future__ import annotations

from repro.data.database import Database
from repro.datasets.base import Example
from repro.errors import ReproError
from repro.llm.interface import SimulatedLLM
from repro.llm.profiles import ModelProfile
from repro.llm.prompts import PromptBuilder, extract_vql
from repro.parsers.base import ParseRequest
from repro.parsers.vis.base import VisParser
from repro.vis.lint.gate import VisLintGate
from repro.vis.vql import normalize_vql


class Chat2VisParser(VisParser):
    """Zero-shot LLM visualization prompting."""

    name = "chat2vis parser"
    stage = "llm"
    year = 2023

    def __init__(
        self,
        model: str | ModelProfile = "codex-like",
        seed: int = 0,
        clear_prompting: bool = True,
        n_candidates: int = 1,
        lint_gate: VisLintGate | None = None,
    ) -> None:
        self.llm = SimulatedLLM(model, seed=seed)
        self.clear_prompting = clear_prompting
        self.n_candidates = n_candidates
        self.lint_gate = lint_gate

    def _builder(self) -> PromptBuilder:
        return PromptBuilder(
            include_schema=True,
            include_descriptions=self.clear_prompting,
            include_foreign_keys=self.clear_prompting,
            task="vis",
        )

    def parse_vis(self, request: ParseRequest) -> str | None:
        prompt = self._build_prompt(request)
        # multiple candidates only differ at nonzero sampling temperature
        temperature = 0.7 if self.n_candidates > 1 else 0.0
        completions = self.llm.complete(
            prompt, temperature=temperature, n=self.n_candidates
        )
        candidates: list[str] = []
        for completion in completions:
            try:
                vql = normalize_vql(extract_vql(completion.text))
            except ReproError:
                continue
            if vql not in candidates:
                candidates.append(vql)
        if not candidates:
            return None
        if self.lint_gate is not None:
            decision = self.lint_gate.decide(
                candidates, request.schema, db=request.db
            )
            if decision.chosen is not None:
                return decision.chosen
        return candidates[0]

    def _build_prompt(self, request: ParseRequest) -> str:
        from repro.sql.unparser import to_sql

        history = [
            (question, to_sql(query)) for question, query in request.history
        ]
        return self._builder().build(
            question=request.question,
            schema=request.schema,
            knowledge=request.knowledge,
            history=history or None,
        )


class NL2InterfaceParser(Chat2VisParser):
    """Few-shot LLM visualization prompting with retrieved demonstrations."""

    name = "nl2interface parser"
    stage = "llm"
    year = 2022

    def __init__(
        self,
        model: str | ModelProfile = "codex-like",
        seed: int = 0,
        num_demos: int = 4,
        clear_prompting: bool = True,
    ) -> None:
        super().__init__(model, seed, clear_prompting)
        self.num_demos = num_demos
        self.pool: list[tuple[str, str]] = []

    def train(
        self,
        examples: list[Example],
        databases: dict[str, Database],
    ) -> None:
        self.pool = [
            (e.question, e.vql) for e in examples if e.vql is not None
        ]

    def _build_prompt(self, request: ParseRequest) -> str:
        question_tokens = set(request.question.lower().split())

        def similarity(pair: tuple[str, str]) -> float:
            tokens = set(pair[0].lower().split())
            union = question_tokens | tokens
            return len(question_tokens & tokens) / len(union) if union else 0

        demos = sorted(self.pool, key=similarity, reverse=True)[
            : self.num_demos
        ]
        return self._builder().build(
            question=request.question,
            schema=request.schema,
            demonstrations=demos or None,
            knowledge=request.knowledge,
        )
