"""Compile an executed VQL query into a Vega-Lite-like specification.

The spec is a plain dictionary mirroring Vega-Lite's core shape — ``mark``,
``encoding`` with ``x``/``y`` channels (field + type), and inline
``data.values`` — which is what surveyed Text-to-Vis systems emit as the
final visualization specification.  Keeping it a dictionary makes specs
comparable, serializable, and renderer-agnostic without a plotting
dependency.
"""

from __future__ import annotations

from repro.data.values import Value, looks_temporal
from repro.errors import ChartError
from repro.sql.executor import Result
from repro.vis.vql import VQLQuery

#: VQL chart type -> Vega-Lite mark
_MARKS = {"bar": "bar", "pie": "arc", "line": "line", "scatter": "point"}


def build_spec(vql: VQLQuery, result: Result) -> dict:
    """Build the Vega-Lite-like spec for *result* charted as *vql* asks.

    The first result column is the x (or theta category) channel and the
    second is the y (or theta value) channel.  Raises
    :class:`~repro.errors.ChartError` when the result shape does not
    support the chart type.

    The arity and encoding-type checks here are runtime *backstops*: the
    static vis linter (:mod:`repro.vis.lint`) performs the same checks
    from the AST alone before execution, using the output-schema typer
    (:mod:`repro.sql.typer`) whose :meth:`~repro.sql.typer.ColType.vega`
    classification is differentially tested against :func:`field_type`.
    """
    if len(result.columns) < 2:
        raise ChartError(
            f"a {vql.chart_type} chart needs two result columns, got "
            f"{len(result.columns)}"
        )
    x_field, y_field = result.columns[0], result.columns[1]
    values = [
        {x_field: row[0], y_field: row[1]}
        for row in result.rows
    ]
    x_type = field_type([row[0] for row in result.rows])
    y_type = field_type([row[1] for row in result.rows])

    # an empty result is a valid (empty) chart; type checks need data
    if result.rows:
        if vql.chart_type == "scatter" and (
            x_type != "quantitative" or y_type != "quantitative"
        ):
            raise ChartError("scatter plots need numeric x and y columns")
        if vql.chart_type in ("bar", "pie") and y_type != "quantitative":
            raise ChartError(
                f"{vql.chart_type} charts need a numeric y column"
            )

    if vql.chart_type == "pie":
        encoding = {
            "theta": {"field": y_field, "type": "quantitative"},
            "color": {"field": x_field, "type": "nominal"},
        }
    else:
        encoding = {
            "x": {"field": x_field, "type": x_type},
            "y": {"field": y_field, "type": y_type},
        }
        if vql.bin_column and vql.bin_unit:
            encoding["x"]["timeUnit"] = vql.bin_unit

    return {
        "mark": _MARKS[vql.chart_type],
        "encoding": encoding,
        "data": {"values": values},
    }


def field_type(values: list[Value]) -> str:
    """Infer a Vega-Lite field type from result values.

    The runtime counterpart of the static typer's
    :meth:`repro.sql.typer.ColType.vega`; both use
    :func:`repro.data.values.looks_temporal` so temporal classification
    cannot drift between the two.
    """
    non_null = [v for v in values if v is not None]
    if non_null and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in non_null
    ):
        return "quantitative"
    if non_null and all(looks_temporal(v) for v in non_null):
        return "temporal"
    return "nominal"


#: backwards-compatible aliases for the pre-typer private names
_field_type = field_type
_looks_temporal = looks_temporal
