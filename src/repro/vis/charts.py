"""Chart execution and rendering.

``render_chart`` is the Text-to-Vis execution engine ``E(e, D) -> r``: it
runs a VQL program's SQL against a database (applying the BIN clause as a
pre-aggregation rewrite), compiles the spec, and returns a :class:`Chart`
— the graphical result object.  ``Chart.to_ascii`` draws a terminal
rendering so examples can show actual charts without a plotting library.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field

from repro.data.database import Database
from repro.data.values import Value
from repro.errors import ChartError
from repro.sql.executor import Result, execute
from repro.vis.spec import build_spec
from repro.vis.vql import VQLQuery, parse_vql, to_vql


@dataclass
class Chart:
    """The rendered result of a visualization query."""

    chart_type: str
    x_label: str
    y_label: str
    points: list[tuple[Value, Value]]
    spec: dict = field(default_factory=dict)
    vql: str = ""

    def copy(self) -> "Chart":
        """A defensive copy sharing no mutable state with the original.

        The turn memos (:mod:`repro.core.pipeline`,
        :mod:`repro.systems.session`) replay charts across calls; the
        spec is deep-copied because it nests dicts (``encoding``,
        ``data.values``).
        """
        return Chart(
            chart_type=self.chart_type,
            x_label=self.x_label,
            y_label=self.y_label,
            points=list(self.points),
            spec=_copy.deepcopy(self.spec),
            vql=self.vql,
        )

    def to_ascii(self, width: int = 40) -> str:
        """Draw the chart with unicode block characters."""
        if not self.points:
            return f"[{self.chart_type} chart: no data]"
        if self.chart_type == "scatter":
            return self._ascii_scatter(width)
        return self._ascii_bars(width)

    def _ascii_bars(self, width: int) -> str:
        numeric = [
            (str(x), float(y))
            for x, y in self.points
            if isinstance(y, (int, float)) and not isinstance(y, bool)
        ]
        if not numeric:
            return f"[{self.chart_type} chart: no numeric values]"
        top = max(abs(y) for _, y in numeric) or 1.0
        label_width = max(len(label) for label, _ in numeric)
        lines = [f"{self.y_label} by {self.x_label} ({self.chart_type})"]
        for label, y in numeric:
            bar = "█" * max(1, int(round(width * abs(y) / top)))
            lines.append(f"{label.rjust(label_width)} | {bar} {y:g}")
        return "\n".join(lines)

    def _ascii_scatter(self, width: int) -> str:
        numeric = [
            (float(x), float(y))
            for x, y in self.points
            if isinstance(x, (int, float)) and isinstance(y, (int, float))
            and not isinstance(x, bool) and not isinstance(y, bool)
        ]
        if not numeric:
            return "[scatter chart: no numeric points]"
        height = 12
        xs = [x for x, _ in numeric]
        ys = [y for _, y in numeric]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        grid = [[" "] * width for _ in range(height)]
        for x, y in numeric:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = "•"
        lines = [f"{self.y_label} vs {self.x_label} (scatter)"]
        lines.extend("".join(row) for row in grid)
        return "\n".join(lines)


def render_chart(vql: VQLQuery | str, db: Database) -> Chart:
    """Execute a VQL program against *db* and build its :class:`Chart`."""
    if isinstance(vql, str):
        vql = parse_vql(vql)
    query = vql.query
    if vql.bin_column and vql.bin_unit:
        result = _execute_binned(vql, db)
    else:
        result = execute(query, db)
    if len(result.columns) < 2:
        raise ChartError(
            "visualization queries must return at least two columns"
        )
    spec = build_spec(vql, result)
    return Chart(
        chart_type=vql.chart_type,
        x_label=result.columns[0],
        y_label=result.columns[1],
        points=[(row[0], row[1]) for row in result.rows],
        spec=spec,
        vql=to_vql(vql),
    )


def _execute_binned(vql: VQLQuery, db: Database) -> Result:
    """Apply the BIN clause: post-process the x column into calendar bins.

    The SQL part is executed as-is, then x values that look like ISO dates
    are collapsed into the requested unit and the y values aggregated by
    sum (counts and sums re-aggregate correctly; averages are approximated,
    matching nvBench's binning semantics over pre-aggregated queries).
    """
    result = execute(vql.query, db)
    bins: dict[str, float] = {}
    order: list[str] = []
    for row in result.rows:
        key = _bin_key(row[0], vql.bin_unit or "year")
        y = row[1]
        if not isinstance(y, (int, float)) or isinstance(y, bool):
            continue
        if key not in bins:
            bins[key] = 0.0
            order.append(key)
        bins[key] += float(y)
    rows = [(key, bins[key]) for key in sorted(order)]
    return Result(columns=list(result.columns[:2]), rows=rows, ordered=True)


def _bin_key(value: Value, unit: str) -> str:
    text = str(value)
    if len(text) >= 10 and text[4] == "-" and text[7] == "-":
        year, month, day = text[:4], text[5:7], text[8:10]
        if unit == "year":
            return year
        if unit == "quarter":
            quarter = (int(month) - 1) // 3 + 1
            return f"{year}-Q{quarter}"
        if unit == "month":
            return f"{year}-{month}"
        if unit == "weekday":
            return _weekday(int(year), int(month), int(day))
    return text


def _weekday(year: int, month: int, day: int) -> str:
    import datetime

    names = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
    return names[datetime.date(year, month, day).weekday()]
