"""The visualization query language (VQL).

Following nvBench's DV query syntax, a VQL program is::

    VISUALIZE <chart-type> <sql-query> [BIN <column> BY <unit>]

where ``chart-type`` is one of BAR, PIE, LINE, SCATTER and the SQL part is
any query of the :mod:`repro.sql` dialect.  The optional BIN clause groups
a temporal column by a calendar unit before charting, mirroring nvBench's
binning directive.

The module provides parsing (:func:`parse_vql`), rendering
(:func:`to_vql`), and normalization (:func:`normalize_vql`) — the latter is
what Text-to-Vis string metrics compare, exactly as the surveyed systems
compare canonicalized DV queries.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import LexError, ParseError, VQLParseError
from repro.sql.ast import Query
from repro.sql.normalize import normalize_query
from repro.sql.parser import parse_sql
from repro.sql.unparser import to_sql

CHART_TYPES: tuple[str, ...] = ("bar", "pie", "line", "scatter")

BIN_UNITS: tuple[str, ...] = ("year", "quarter", "month", "weekday")

#: a trailing ``BIN <column> BY <unit>`` clause — anchored at the end and
#: restricted to bare identifiers, so ``' bin '`` inside a string literal
#: (e.g. ``WHERE name = 'x bin y'``) can never be mistaken for a clause
_BIN_CLAUSE = re.compile(
    r"\s+bin\s+([A-Za-z_][A-Za-z_0-9]*)\s+by\s+([A-Za-z_][A-Za-z_0-9]*)\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class VQLQuery:
    """A parsed VQL program."""

    chart_type: str
    query: Query
    bin_column: str | None = None
    bin_unit: str | None = None

    def with_chart(self, chart_type: str) -> "VQLQuery":
        return VQLQuery(
            chart_type=chart_type,
            query=self.query,
            bin_column=self.bin_column,
            bin_unit=self.bin_unit,
        )


def parse_vql(text: str) -> VQLQuery:
    """Parse a VQL program; raise :class:`VQLParseError` on bad input."""
    stripped = text.strip().rstrip(";")
    tokens = stripped.split(None, 2)
    if len(tokens) < 3 or tokens[0].lower() != "visualize":
        raise VQLParseError(
            f"VQL must start with 'VISUALIZE <type> <sql>': {text!r}"
        )
    chart_type = tokens[1].lower()
    if chart_type not in CHART_TYPES:
        raise VQLParseError(f"unknown chart type {tokens[1]!r}")
    remainder = tokens[2]

    bin_column = bin_unit = None
    match = _BIN_CLAUSE.search(remainder)
    if match is not None:
        remainder = remainder[: match.start()]
        bin_column = match.group(1).lower()
        bin_unit = match.group(2).lower()
        if bin_unit not in BIN_UNITS:
            raise VQLParseError(f"unknown BIN unit {match.group(2)!r}")

    try:
        query = parse_sql(remainder)
    except (ParseError, LexError) as exc:
        raise VQLParseError(f"invalid SQL inside VQL: {exc}") from exc
    return VQLQuery(
        chart_type=chart_type,
        query=query,
        bin_column=bin_column,
        bin_unit=bin_unit,
    )


def to_vql(vql: VQLQuery) -> str:
    """Render a :class:`VQLQuery` as canonical VQL text."""
    text = f"VISUALIZE {vql.chart_type.upper()} {to_sql(vql.query)}"
    if vql.bin_column and vql.bin_unit:
        text += f" BIN {vql.bin_column} BY {vql.bin_unit.upper()}"
    return text


def normalize_vql(text: str) -> str:
    """Canonical text of a VQL program (normalizes the SQL part too)."""
    vql = parse_vql(text)
    normalized = VQLQuery(
        chart_type=vql.chart_type,
        query=normalize_query(vql.query),
        bin_column=vql.bin_column,
        bin_unit=vql.bin_unit,
    )
    return to_vql(normalized)
