"""Visualization substrate: VQL, chart specs, rendering, recommendation.

The survey describes Text-to-Vis systems as producing a *visualization
query language* (VQL) — "a SQL-like pseudo syntax for combining database
querying with visualization directives" — which is then compiled to a
visualization specification (Vega-Lite style) and rendered.  This package
implements that whole substrate:

- :mod:`repro.vis.vql` — the VQL language (``VISUALIZE <TYPE> <SQL>`` with
  an optional ``BIN ... BY ...`` clause, following nvBench);
- :mod:`repro.vis.spec` — compilation of an executed VQL query into a
  Vega-Lite-like spec dictionary;
- :mod:`repro.vis.charts` — chart objects, execution, and ASCII rendering
  for terminal examples;
- :mod:`repro.vis.recommend` — DeepEye-style chart-quality ranking;
- :mod:`repro.vis.lint` — static VQL analysis (the ``V``-code diagnostic
  catalog over the :mod:`repro.sql.typer` output schema) and the
  candidate-pruning :class:`~repro.vis.lint.VisLintGate`.
"""

from repro.vis.charts import Chart, render_chart
from repro.vis.lint import VisLintGate, VisLintReport, lint_vis, lint_vql_text
from repro.vis.recommend import recommend_charts
from repro.vis.spec import build_spec
from repro.vis.vql import CHART_TYPES, VQLQuery, normalize_vql, parse_vql, to_vql

__all__ = [
    "CHART_TYPES",
    "Chart",
    "VQLQuery",
    "VisLintGate",
    "VisLintReport",
    "build_spec",
    "lint_vis",
    "lint_vql_text",
    "normalize_vql",
    "parse_vql",
    "recommend_charts",
    "render_chart",
    "to_vql",
]
