"""The vis diagnostic engine: SQL lint + static typing + the V-rule pass.

Reuses the SQL lint substrate (:class:`~repro.sql.lint.diagnostics.
Diagnostic`, :class:`~repro.sql.lint.diagnostics.LintReport`,
:class:`~repro.sql.lint.diagnostics.Severity`) so vis and SQL findings
share one severity order, one rendering, and one gate-scoring scheme.
Every diagnostic the engine emits also increments the per-code
``repro.vis.lint.diag.<code>`` counter in the process metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.database import Database
from repro.data.schema import Schema
from repro.errors import VQLParseError
from repro.obs import metrics as _obs_metrics
from repro.sql.lint.diagnostics import LintReport, Severity
from repro.sql.lint.engine import lint_query
from repro.sql.typer import ResultSchema, infer_output_schema
from repro.vis.vql import VQLQuery, parse_vql

_registry = _obs_metrics.get_registry()
_LINTED = _registry.counter("repro.vis.lint.runs")


def _count_diag(code: str) -> None:
    _registry.counter(f"repro.vis.lint.diag.{code}").inc()


@dataclass
class VisLintReport(LintReport):
    """One vis lint run: SQL + vis diagnostics plus the inferred schema.

    Extends :class:`~repro.sql.lint.diagnostics.LintReport` with the VQL
    source text and the static :class:`~repro.sql.typer.ResultSchema` the
    V-rules judged (None when the VQL itself did not parse).  The
    inherited views (``errors``, ``ok``, ``counts``, ``render``) work
    unchanged over the combined diagnostic list.
    """

    vql: str | None = None
    output: ResultSchema | None = None

    @property
    def vis_diagnostics(self) -> list:
        """Only the V-code findings (the SQL engine's are pass-through)."""
        return [d for d in self.diagnostics if d.code.startswith("V")]


def lint_vis(
    vql: VQLQuery, schema: Schema, db: Database | None = None
) -> VisLintReport:
    """Run every vis analysis pass over a parsed *vql* program.

    *db* is optional: when given, cardinality rules (pie slice count) use
    :mod:`repro.sql.stats` NDV estimates; without it those rules stay
    silent.  SQL diagnostics from the inner query are folded into the same
    report, so a vis report is a strict superset of the SQL one.
    """
    from repro.vis.lint.rules import run_vis_rules

    _LINTED.inc()
    report = VisLintReport()
    sql_report = lint_query(vql.query, schema)
    report.diagnostics.extend(sql_report.diagnostics)
    report.analysis = sql_report.analysis
    report.lineage = sql_report.lineage

    output = infer_output_schema(vql.query, schema)
    report.output = output

    vis_start = len(report.diagnostics)
    run_vis_rules(vql, output, schema, report, db=db)
    for diag in report.diagnostics[vis_start:]:
        _count_diag(diag.code)
    return report


def lint_vql_text(
    text: str, schema: Schema, db: Database | None = None
) -> VisLintReport:
    """Lint a VQL *string*: parse failures become a fatal ``V001``."""
    try:
        vql = parse_vql(text)
    except VQLParseError as exc:
        report = VisLintReport(vql=text)
        report.add(
            "V001", Severity.ERROR, str(exc), clause="parse", fatal=True
        )
        _LINTED.inc()
        _count_diag("V001")
        return report
    report = lint_vis(vql, schema, db=db)
    report.vql = text
    return report
