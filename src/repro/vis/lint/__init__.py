"""Static analysis for visualization queries (VQL).

The runtime chart builder (:func:`repro.vis.spec.build_spec`) discovers an
invalid chart — a non-numeric scatter axis, a non-temporal BIN column, a
one-column projection — only *after* executing the SQL.  This package
moves those checks to parse time, mirroring :mod:`repro.sql.lint`'s
engine/diagnostics/rules layout and the candidate-pruning gates that
nvBench-style Text-to-Vis systems apply to discard malformed DV queries
before execution.  Three layers:

1. **SQL diagnostics** — the inner data query runs through the full
   :mod:`repro.sql.lint` engine, so every ``E``/``W``/``I`` SQL finding
   also appears in the vis report;
2. **output-schema typing** — :mod:`repro.sql.typer` derives each result
   column's name, type, and nullability statically;
3. **vis rules** — the ``V``-code catalog validates chart arity, per-chart
   encoding/type compatibility, BIN-column existence and temporality, pie
   slice cardinality (via :mod:`repro.sql.stats` NDV estimates), and
   duplicate/swapped-axis hazards.

Code ranges: ``V0xx`` structural, ``V1xx`` type, ``V2xx`` semantic,
``V3xx`` style.  Entry points: :func:`lint_vis` (a parsed
:class:`~repro.vis.vql.VQLQuery`), :func:`lint_vql_text` (a VQL string;
parse failures become ``V001``), :class:`VisLintGate` (candidate pruning),
and the ``python -m repro vis-lint`` CLI.
"""

from repro.vis.lint.engine import VisLintReport, lint_vis, lint_vql_text
from repro.vis.lint.gate import VisGateDecision, VisLintGate
from repro.vis.lint.rules import VIS_RULES, VisRule, VisRuleContext, vis_rule

__all__ = [
    "VIS_RULES",
    "VisGateDecision",
    "VisLintGate",
    "VisLintReport",
    "VisRule",
    "VisRuleContext",
    "lint_vis",
    "lint_vql_text",
    "vis_rule",
]
