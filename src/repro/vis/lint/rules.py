"""The vis lint rule catalog: structural, type, semantic, and style checks.

Each rule targets one VQL program with its statically inferred
:class:`~repro.sql.typer.ResultSchema` and yields
``(message, node, clause)`` findings; the registry stamps them with the
rule's code and severity, exactly like :mod:`repro.sql.lint.rules`.

- ``V0xx`` structural — chart arity, BIN-column existence
- ``V1xx`` type — encoding/type compatibility per chart type, BIN
  temporality (all statically provable from the typer, so every error
  here is a chart the runtime :func:`~repro.vis.spec.build_spec` backstop
  would reject after wasting an execution)
- ``V2xx`` semantic — pie slice cardinality via :mod:`repro.sql.stats`
  NDV estimates, duplicate axes, swapped-axes hazards, BIN/x mismatch
- ``V3xx`` style — chart-choice hints (info severity)

New rules register with the :func:`vis_rule` decorator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.data.database import Database
from repro.data.schema import Schema
from repro.sql.ast import (
    ColumnRef,
    Select,
    SelectItem,
    SetOperation,
    has_aggregate,
)
from repro.sql.lint.diagnostics import LintReport, Severity
from repro.sql.typer import ColType, OutputColumn, ResultSchema
from repro.vis.vql import VQLQuery

#: a rule finding: message, offending node (or None), clause name (or None)
Finding = tuple[str, object, str | None]

#: pie charts with more slices than this are illegible (DeepEye's bound)
PIE_SLICE_LIMIT = 12

#: column types that can never chart as a quantitative encoding
_NEVER_NUMERIC = (ColType.TEXT, ColType.BOOL, ColType.TEMPORAL, ColType.NULL)


@dataclass
class VisRuleContext:
    """What a vis rule sees: the VQL, its static output schema, the world."""

    vql: VQLQuery
    output: ResultSchema
    schema: Schema
    db: Database | None = None

    @property
    def chart(self) -> str:
        return self.vql.chart_type

    @property
    def select(self) -> Select | None:
        """The leftmost SELECT — the block whose projection names the axes."""
        query = self.vql.query
        while isinstance(query, SetOperation):
            query = query.left
        return query if isinstance(query, Select) else None

    def axis_column(self, index: int) -> OutputColumn | None:
        """The inferred output column charted on axis *index* (0=x, 1=y)."""
        return self.output.column(index)

    def axis_item(self, index: int) -> SelectItem | None:
        """The projection item behind axis *index*, when star-free."""
        select = self.select
        if select is None or index >= len(select.items):
            return None
        from repro.sql.ast import Star

        if any(isinstance(item.expr, Star) for item in select.items):
            return None  # star shifts positions; typer columns still align
        return select.items[index]


@dataclass(frozen=True)
class VisRule:
    """One registered vis lint rule."""

    code: str
    name: str
    severity: Severity
    doc: str
    check: Callable[[VisRuleContext], Iterator[Finding]]


#: code -> VisRule, in registration order
VIS_RULES: dict[str, VisRule] = {}


def vis_rule(code: str, name: str, severity: Severity) -> Callable:
    """Register a vis rule function under *code* in the global catalog."""

    def decorator(fn: Callable[[VisRuleContext], Iterator[Finding]]) -> Callable:
        if code in VIS_RULES:
            raise ValueError(f"duplicate vis lint rule code {code!r}")
        VIS_RULES[code] = VisRule(
            code=code,
            name=name,
            severity=severity,
            doc=(fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else "",
            check=fn,
        )
        return fn

    return decorator


def run_vis_rules(
    vql: VQLQuery,
    output: ResultSchema,
    schema: Schema,
    report: LintReport,
    db: Database | None = None,
    codes: Iterable[str] | None = None,
) -> None:
    """Apply registered vis rules to *vql*, appending findings to *report*."""
    ctx = VisRuleContext(vql=vql, output=output, schema=schema, db=db)
    wanted = set(codes) if codes is not None else None
    for registered in VIS_RULES.values():
        if wanted is not None and registered.code not in wanted:
            continue
        for message, node, clause in registered.check(ctx):
            report.add(
                registered.code,
                registered.severity,
                message,
                clause=clause,
                node=node,
            )


# ----------------------------------------------------------------------
# V0xx — structural
# ----------------------------------------------------------------------
@vis_rule("V011", "chart-arity", Severity.ERROR)
def _chart_arity(ctx: VisRuleContext) -> Iterator[Finding]:
    """A chart needs at least two result columns (x and y)."""
    if ctx.output.incomplete:
        return
    if ctx.output.arity < 2:
        yield (
            f"a {ctx.chart} chart needs two result columns, the query "
            f"yields {ctx.output.arity}",
            ctx.vql.query,
            "select",
        )


@vis_rule("V012", "extra-columns", Severity.WARNING)
def _extra_columns(ctx: VisRuleContext) -> Iterator[Finding]:
    """Result columns beyond the first two are silently ignored."""
    if ctx.output.incomplete:
        return
    if ctx.output.arity > 2:
        ignored = ", ".join(
            repr(column.name) for column in ctx.output.columns[2:]
        )
        yield (
            f"only the first two result columns are charted; {ignored} "
            "ignored",
            ctx.vql.query,
            "select",
        )


@vis_rule("V013", "bin-column-missing", Severity.ERROR)
def _bin_column_missing(ctx: VisRuleContext) -> Iterator[Finding]:
    """The BIN clause names a column absent from the result."""
    if ctx.vql.bin_column is None or ctx.output.incomplete:
        return
    if ctx.output.find(ctx.vql.bin_column) is None:
        yield (
            f"BIN column {ctx.vql.bin_column!r} is not among the result "
            f"columns {list(ctx.output.names())}",
            None,
            "bin",
        )


# ----------------------------------------------------------------------
# V1xx — encoding/type compatibility
# ----------------------------------------------------------------------
def _provably_non_numeric(column: OutputColumn | None) -> bool:
    return column is not None and column.type in _NEVER_NUMERIC


@vis_rule("V101", "scatter-x-not-numeric", Severity.ERROR)
def _scatter_x(ctx: VisRuleContext) -> Iterator[Finding]:
    """Scatter plots need a numeric x column."""
    if ctx.chart != "scatter":
        return
    column = ctx.axis_column(0)
    if _provably_non_numeric(column):
        yield (
            f"scatter x column {column.name!r} is {column.type.value}, "
            "never numeric",
            None,
            "select",
        )


@vis_rule("V102", "scatter-y-not-numeric", Severity.ERROR)
def _scatter_y(ctx: VisRuleContext) -> Iterator[Finding]:
    """Scatter plots need a numeric y column."""
    if ctx.chart != "scatter":
        return
    column = ctx.axis_column(1)
    if _provably_non_numeric(column):
        yield (
            f"scatter y column {column.name!r} is {column.type.value}, "
            "never numeric",
            None,
            "select",
        )


@vis_rule("V103", "measure-not-numeric", Severity.ERROR)
def _measure_not_numeric(ctx: VisRuleContext) -> Iterator[Finding]:
    """Bar and pie charts need a numeric y (measure) column."""
    if ctx.chart not in ("bar", "pie"):
        return
    column = ctx.axis_column(1)
    if _provably_non_numeric(column):
        yield (
            f"{ctx.chart} chart y column {column.name!r} is "
            f"{column.type.value}, never numeric",
            None,
            "select",
        )


@vis_rule("V104", "bin-column-not-temporal", Severity.ERROR)
def _bin_not_temporal(ctx: VisRuleContext) -> Iterator[Finding]:
    """BIN groups calendar units; a provably non-temporal column can't bin."""
    if ctx.vql.bin_column is None:
        return
    column = ctx.output.find(ctx.vql.bin_column)
    if column is not None and column.type in (
        ColType.NUMBER, ColType.TEXT, ColType.BOOL, ColType.NULL,
    ):
        yield (
            f"BIN column {column.name!r} is {column.type.value}, not "
            f"temporal; BIN BY {ctx.vql.bin_unit} cannot apply",
            None,
            "bin",
        )


@vis_rule("V105", "line-x-unordered", Severity.WARNING)
def _line_x_unordered(ctx: VisRuleContext) -> Iterator[Finding]:
    """A line chart over a non-temporal, non-numeric x has no natural order."""
    if ctx.chart != "line":
        return
    column = ctx.axis_column(0)
    if column is not None and column.type in (ColType.TEXT, ColType.BOOL):
        yield (
            f"line chart x column {column.name!r} is {column.type.value}; "
            "the axis has no natural order",
            None,
            "select",
        )


# ----------------------------------------------------------------------
# V2xx — semantic
# ----------------------------------------------------------------------
@vis_rule("V201", "pie-slice-cardinality", Severity.WARNING)
def _pie_slices(ctx: VisRuleContext) -> Iterator[Finding]:
    """A pie whose estimated slice count exceeds the legibility bound."""
    if ctx.chart != "pie" or ctx.db is None:
        return
    estimate = _estimated_result_rows(ctx)
    if estimate is not None and estimate > PIE_SLICE_LIMIT:
        yield (
            f"pie chart with an estimated {estimate} slices "
            f"(legibility bound {PIE_SLICE_LIMIT})",
            None,
            "select",
        )


def _estimated_result_rows(ctx: VisRuleContext) -> int | None:
    """Estimated row (slice) count via table stats; None when undecidable."""
    from repro.sql.stats import table_stats

    select = ctx.select
    if select is None or not isinstance(ctx.vql.query, Select):
        return None
    estimate: int | None = None
    if len(select.group_by) == 1 and isinstance(
        select.group_by[0], ColumnRef
    ):
        ref = select.group_by[0]
        resolved = _resolve_base(ref, select, ctx)
        if resolved is not None:
            table_name, column_name = resolved
            try:
                stats = table_stats(ctx.db.table(table_name))
            except Exception:
                return None
            estimate = stats.column(column_name).ndv
    elif not select.group_by and not any(
        has_aggregate(item.expr) for item in select.items
    ):
        tables = _single_table(select, ctx)
        if tables is not None:
            try:
                estimate = len(ctx.db.table(tables).rows)
            except Exception:
                return None
    if estimate is not None and select.limit is not None:
        estimate = min(estimate, select.limit)
    return estimate


def _resolve_base(
    ref: ColumnRef, select: Select, ctx: VisRuleContext
) -> tuple[str, str] | None:
    """Resolve a grouping column to its base ``(table, column)`` names."""
    from repro.sql.ast import from_tables

    candidates = []
    for table_ref in from_tables(select.from_):
        if not ctx.schema.has_table(table_ref.name):
            continue
        table = ctx.schema.table(table_ref.name)
        if ref.table is not None and ref.table.lower() != table_ref.binding:
            continue
        if table.has_column(ref.column):
            candidates.append((table.name.lower(), ref.column.lower()))
    return candidates[0] if len(candidates) == 1 else None


def _single_table(select: Select, ctx: VisRuleContext) -> str | None:
    from repro.sql.ast import from_tables

    refs = from_tables(select.from_)
    if len(refs) == 1 and ctx.schema.has_table(refs[0].name):
        return refs[0].name.lower()
    return None


@vis_rule("V202", "duplicate-axes", Severity.WARNING)
def _duplicate_axes(ctx: VisRuleContext) -> Iterator[Finding]:
    """x and y encode the same column — the spec rows collapse to one key."""
    if ctx.output.incomplete or ctx.output.arity < 2:
        return
    x, y = ctx.output.columns[0], ctx.output.columns[1]
    x_item, y_item = ctx.axis_item(0), ctx.axis_item(1)
    same_expr = (
        x_item is not None
        and y_item is not None
        and x_item.expr == y_item.expr
    )
    if same_expr or x.name.lower() == y.name.lower():
        yield (
            f"x and y both chart {x.name!r}; the spec's data rows "
            "collapse to a single key",
            None,
            "select",
        )


@vis_rule("V203", "swapped-axes", Severity.WARNING)
def _swapped_axes(ctx: VisRuleContext) -> Iterator[Finding]:
    """An aggregate on x with a plain column on y looks transposed."""
    if ctx.chart == "scatter":
        return
    x_item, y_item = ctx.axis_item(0), ctx.axis_item(1)
    if x_item is None or y_item is None:
        return
    if has_aggregate(x_item.expr) and not has_aggregate(y_item.expr):
        yield (
            "x is an aggregate while y is not — the axes look swapped "
            f"for a {ctx.chart} chart",
            x_item.expr,
            "select",
        )


@vis_rule("V204", "bin-column-not-x", Severity.WARNING)
def _bin_not_x(ctx: VisRuleContext) -> Iterator[Finding]:
    """Binning applies to the x axis; a BIN naming another column is inert."""
    if ctx.vql.bin_column is None or ctx.output.incomplete:
        return
    first = ctx.output.column(0)
    if (
        first is not None
        and ctx.output.find(ctx.vql.bin_column) is not None
        and first.name.lower() != ctx.vql.bin_column.lower()
    ):
        yield (
            f"BIN names {ctx.vql.bin_column!r} but binning applies to the "
            f"x column {first.name!r}",
            None,
            "bin",
        )


# ----------------------------------------------------------------------
# V3xx — style
# ----------------------------------------------------------------------
@vis_rule("V301", "bar-over-temporal", Severity.INFO)
def _bar_over_temporal(ctx: VisRuleContext) -> Iterator[Finding]:
    """A temporal x axis usually reads better as a line chart."""
    if ctx.chart != "bar":
        return
    column = ctx.axis_column(0)
    if column is not None and column.type is ColType.TEMPORAL:
        yield (
            f"bar chart over temporal x {column.name!r}; a line chart "
            "usually reads better",
            None,
            "select",
        )


@vis_rule("V302", "pie-of-raw-rows", Severity.INFO)
def _pie_of_raw_rows(ctx: VisRuleContext) -> Iterator[Finding]:
    """A pie over non-aggregated rows rarely yields meaningful slices."""
    if ctx.chart != "pie":
        return
    select = ctx.select
    if select is None:
        return
    if not select.group_by and not any(
        has_aggregate(item.expr) for item in select.items
    ):
        yield (
            "pie chart over raw (non-aggregated) rows; one slice per row",
            None,
            "select",
        )


@vis_rule("V303", "line-without-order", Severity.INFO)
def _line_without_order(ctx: VisRuleContext) -> Iterator[Finding]:
    """A line chart without ORDER BY draws points in arbitrary order."""
    if ctx.chart != "line" or ctx.vql.bin_column is not None:
        return
    select = ctx.select
    if select is not None and not select.order_by:
        yield (
            "line chart without ORDER BY; point order follows row order",
            None,
            "order_by",
        )
