"""The vis lint gate: prune and rank candidate VQL programs statically.

The Text-to-Vis counterpart of :class:`repro.core.pipeline.LintGate`.
Candidates arrive as VQL *strings* (that is what vis parsers emit); each
is linted end to end — parse, SQL diagnostics, output-schema typing, the
``V``-rule catalog — and pruned when it carries a diagnostic at or above
the gate's severity threshold.  Survivors are ranked by the same weighted
penalty the SQL gate uses, ties broken by the parser's original order.

One extra move the SQL gate has no analogue for: **chart repair**.  When a
candidate is pruned *only* by chart/encoding mismatches (``V1xx`` type
errors), the data query itself is fine — only the chart choice is wrong —
so the gate retries the same query under the other chart types and keeps
the cleanest repaired variant.  ``VisGateDecision.repaired`` records when
the chosen candidate came from that path.

Defined here (not in :mod:`repro.core.pipeline`) so vis parsers can use
the gate without importing the pipeline module — that import would cycle
through :mod:`repro.core`'s registry back into the parsers package.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.database import Database
from repro.data.schema import Schema
from repro.obs import metrics as _obs_metrics
from repro.resilience import deadline as _deadline
from repro.sql.lint.diagnostics import Severity
from repro.vis.lint.engine import VisLintReport, lint_vis, lint_vql_text
from repro.vis.vql import CHART_TYPES, parse_vql, to_vql

_registry = _obs_metrics.get_registry()
_DECISIONS = _registry.counter("repro.vis.gate.decisions")
_PRUNED = _registry.counter("repro.vis.gate.pruned")
_REPAIRED = _registry.counter("repro.vis.gate.repaired")
_FALLBACKS = _registry.counter("repro.vis.gate.fallbacks")

#: error codes that indict only the chart choice, not the data query —
#: candidates pruned solely by these are eligible for chart repair
_CHART_ONLY_CODES = frozenset({"V101", "V102", "V103", "V105"})


@dataclass
class VisGateDecision:
    """What the :class:`VisLintGate` did with one candidate list.

    ``chosen`` is the candidate the gate ranked best (None when every
    candidate was pruned and no repair succeeded — callers should fall
    back to the parser's own best, so the gate can only help);
    ``kept``/``pruned`` partition the deduplicated candidates, each
    paired with its :class:`~repro.vis.lint.engine.VisLintReport`.
    ``repaired`` is True when ``chosen`` is a chart-repaired rewrite
    rather than one of the original candidates.
    """

    chosen: str | None
    kept: list[tuple[str, VisLintReport]] = field(default_factory=list)
    pruned: list[tuple[str, VisLintReport]] = field(default_factory=list)
    repaired: bool = False

    @property
    def examined(self) -> int:
        return len(self.kept) + len(self.pruned)

    def describe(self) -> str:
        text = (
            f"kept {len(self.kept)}/{self.examined} candidate(s), "
            f"pruned {len(self.pruned)}"
        )
        if self.repaired:
            text += ", chart repaired"
        return text


class VisLintGate:
    """Score and prune candidate VQL programs by static-diagnostic severity.

    Mirrors the SQL :class:`~repro.core.pipeline.LintGate` contract —
    ``decide`` never raises and ``chosen=None`` tells the caller to fall
    back — but works on VQL text and consults the full vis diagnostic
    stack, so a syntactically perfect query charting text on a scatter
    axis is pruned before it costs an execution.
    """

    #: penalty weights per severity for candidate ranking
    WEIGHTS = {Severity.ERROR: 100.0, Severity.WARNING: 3.0, Severity.INFO: 1.0}

    def __init__(
        self,
        prune_at: Severity = Severity.ERROR,
        repair_chart: bool = True,
    ) -> None:
        self.prune_at = prune_at
        self.repair_chart = repair_chart

    def report(
        self, vql_text: str, schema: Schema, db: Database | None = None
    ) -> VisLintReport:
        return lint_vql_text(vql_text, schema, db=db)

    def score(self, report: VisLintReport) -> float:
        """Weighted badness of a report; 0.0 means lint-clean."""
        return sum(self.WEIGHTS[d.severity] for d in report.diagnostics)

    def decide(
        self,
        candidates: list[str],
        schema: Schema,
        db: Database | None = None,
    ) -> VisGateDecision:
        """Lint every distinct candidate and pick the cleanest survivor."""
        _DECISIONS.inc()
        distinct: list[str] = []
        for candidate in candidates:
            if candidate is not None and candidate not in distinct:
                distinct.append(candidate)
        kept: list[tuple[str, VisLintReport]] = []
        pruned: list[tuple[str, VisLintReport]] = []
        best: str | None = None
        best_score = float("inf")
        for candidate in distinct:
            if _deadline._ACTIVE:
                _deadline.checkpoint("vis lint gate")
            report = self.report(candidate, schema, db=db)
            if any(
                self.prune_at <= d.severity for d in report.diagnostics
            ):
                pruned.append((candidate, report))
                _PRUNED.inc()
                continue
            kept.append((candidate, report))
            score = self.score(report)
            if score < best_score:
                best, best_score = candidate, score

        repaired = False
        if best is None and self.repair_chart:
            best = self._repair(pruned, schema, db)
            repaired = best is not None
            if repaired:
                _REPAIRED.inc()
        if best is None:
            _FALLBACKS.inc()
        return VisGateDecision(
            chosen=best, kept=kept, pruned=pruned, repaired=repaired
        )

    # ------------------------------------------------------------------
    def _repair(
        self,
        pruned: list[tuple[str, VisLintReport]],
        schema: Schema,
        db: Database | None,
    ) -> str | None:
        """Retry chart-mismatch-only rejects under the other chart types."""
        best: str | None = None
        best_score = float("inf")
        for candidate, report in pruned:
            blockers = {
                d.code
                for d in report.diagnostics
                if self.prune_at <= d.severity
            }
            if not blockers or not blockers <= _CHART_ONLY_CODES:
                continue
            vql = parse_vql(candidate)  # linted above, so it parses
            for chart in CHART_TYPES:
                if chart == vql.chart_type:
                    continue
                rewritten = to_vql(vql.with_chart(chart))
                retry = lint_vis(parse_vql(rewritten), schema, db=db)
                if any(
                    self.prune_at <= d.severity for d in retry.diagnostics
                ):
                    continue
                score = self.score(retry)
                if score < best_score:
                    best, best_score = rewritten, score
        return best
