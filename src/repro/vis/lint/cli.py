"""``python -m repro vis-lint`` — the visualization diagnostics CLI.

Two modes::

    # lint one VQL program against a curated domain schema
    python -m repro vis-lint --vql "VISUALIZE BAR SELECT name, price FROM products"

    # lint every gold VQL query of a generated benchmark dataset
    python -m repro vis-lint --dataset nvbench_like --scale 0.05

Exit status is 0 when no error-severity diagnostics were found, 1
otherwise (``--strict`` also fails on warnings).  ``--stats`` populates
the database so cardinality rules (pie slice count) can consult
:mod:`repro.sql.stats`.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro.sql.lint.diagnostics import LintReport
from repro.vis.lint.engine import lint_vql_text
from repro.vis.lint.rules import VIS_RULES


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro vis-lint``.

    Lints either one ``--vql`` string against a curated ``--domain``
    schema or every gold VQL of a generated ``--dataset``; prints each
    diagnostic as ``source severity CODE message [clause]``.  Returns 0
    when no error-severity diagnostics were found (with ``--strict``, no
    warnings either), 1 otherwise.
    """
    parser = argparse.ArgumentParser(
        prog="repro-vis-lint",
        description="static analysis for VQL visualization queries",
    )
    parser.add_argument("--vql", help="one VQL program to lint")
    parser.add_argument(
        "--domain",
        default="sales",
        help="curated domain schema to lint --vql against (default: sales)",
    )
    parser.add_argument(
        "--dataset",
        help="lint every gold VQL of this generated dataset "
        "(e.g. nvbench_like)",
    )
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--stats",
        action="store_true",
        help="populate the database so cardinality rules can run",
    )
    parser.add_argument(
        "--strict", action="store_true", help="exit nonzero on warnings too"
    )
    parser.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.rules:
        _print_catalog()
        return 0
    if args.vql is not None:
        return _lint_one(args)
    if args.dataset is not None:
        return _lint_dataset(args)
    parser.print_usage(sys.stderr)
    print(
        "repro-vis-lint: provide --vql, --dataset, or --rules",
        file=sys.stderr,
    )
    return 2


def _print_catalog() -> None:
    print("vis rule catalog:")
    for rule in VIS_RULES.values():
        print(f"  {rule.code}  {rule.severity.value:<7}  {rule.name}")
        if rule.doc:
            print(f"        {rule.doc}")


def _fails(report: LintReport, strict: bool) -> bool:
    if report.errors:
        return True
    return strict and bool(report.warnings)


def _lint_one(args: argparse.Namespace) -> int:
    from repro.data.domains import domain_by_name
    from repro.data.generator import DatabaseGenerator

    domain = domain_by_name(args.domain)
    db = None
    if args.stats:
        db = DatabaseGenerator(seed=args.seed).populate(
            domain, rows_per_table=40
        )
    report = lint_vql_text(args.vql, domain.schema, db=db)
    print(report.render(source="query"))
    if report.output is not None:
        print(f"output schema: {report.output.render()}")
    return 1 if _fails(report, args.strict) else 0


def _lint_dataset(args: argparse.Namespace) -> int:
    from repro.datasets import build_dataset

    dataset = build_dataset(args.dataset, scale=args.scale, seed=args.seed)
    code_counts: Counter = Counter()
    severity_counts: Counter = Counter()
    failing = 0
    total = 0
    for example in dataset.examples:
        if not example.is_vis:
            continue
        total += 1
        db = dataset.database(example.db_id)
        report = lint_vql_text(
            example.vql, db.schema, db=db if args.stats else None
        )
        code_counts.update(report.counts())
        for diag in report.diagnostics:
            severity_counts[diag.severity.value] += 1
        if _fails(report, args.strict):
            failing += 1
            source = f"{example.db_id}:{example.vql}"
            print(report.render(source=source))
    print(
        f"linted {total} gold VQL quer{'y' if total == 1 else 'ies'} of "
        f"{dataset.name!r}: "
        f"{severity_counts.get('error', 0)} error(s), "
        f"{severity_counts.get('warning', 0)} warning(s), "
        f"{severity_counts.get('info', 0)} info(s)"
    )
    if code_counts:
        print("by code:")
        for code, count in sorted(code_counts.items()):
            print(f"  {code}  {count}")
    return 1 if failing else 0


if __name__ == "__main__":  # pragma: no cover - exercised via entry point
    sys.exit(main())
