"""DeepEye-style chart recommendation.

DeepEye (Luo et al., 2018) is the survey's exemplar multi-stage Text-to-Vis
system: it enumerates candidate visualizations of a dataset, scores their
*quality*, ranks them, and returns the top-k.  This module reproduces that
pipeline over our substrate: candidate VQL programs are enumerated from a
table's schema, scored with interpretable goodness heuristics (cardinality
fit, type fit, coverage), and ranked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.database import Database
from repro.data.schema import ColumnType, TableSchema
from repro.sql.ast import (
    ColumnRef,
    FuncCall,
    Select,
    SelectItem,
    Star,
    TableRef,
)
from repro.vis.charts import Chart, render_chart
from repro.vis.vql import VQLQuery, to_vql


@dataclass(frozen=True)
class RankedChart:
    """A candidate visualization with its quality score."""

    vql: str
    score: float
    chart: Chart


def recommend_charts(
    db: Database, table_name: str, top_k: int = 3
) -> list[RankedChart]:
    """Rank candidate charts for one table, best first.

    Candidates: for every low-cardinality category column, a bar/pie of
    counts and of each numeric aggregate; for every numeric column pair, a
    scatter.  Scores reward 3-12 categories (readable bars), penalize
    singleton or huge category sets, and reward scatter plots with enough
    points to show structure.
    """
    table = db.table(table_name).schema
    candidates = _candidate_queries(db, table)
    ranked: list[RankedChart] = []
    for vql in candidates:
        try:
            chart = render_chart(vql, db)
        except Exception:
            continue
        score = _quality(chart)
        if score > 0:
            ranked.append(RankedChart(vql=to_vql(vql), score=score, chart=chart))
    ranked.sort(key=lambda r: r.score, reverse=True)
    return ranked[:top_k]


def _candidate_queries(db: Database, table: TableSchema) -> list[VQLQuery]:
    numeric = [
        c
        for c in table.columns
        if c.type is ColumnType.NUMBER and not c.name.lower().endswith("id")
    ]
    category: list = []
    contents = db.table(table.name)
    for column in table.columns:
        if column.type is not ColumnType.TEXT:
            continue
        distinct = {
            v for v in contents.column_values(column.name) if v is not None
        }
        if 2 <= len(distinct) <= 20:
            category.append(column)

    out: list[VQLQuery] = []
    from_ = TableRef(name=table.name.lower())
    for cat in category:
        cat_ref = ColumnRef(column=cat.name.lower())
        count_select = Select(
            items=(
                SelectItem(expr=cat_ref),
                SelectItem(expr=FuncCall(name="count", args=(Star(),))),
            ),
            from_=from_,
            group_by=(cat_ref,),
        )
        out.append(VQLQuery(chart_type="bar", query=count_select))
        out.append(VQLQuery(chart_type="pie", query=count_select))
        for num in numeric:
            agg_select = Select(
                items=(
                    SelectItem(expr=cat_ref),
                    SelectItem(
                        expr=FuncCall(
                            name="avg",
                            args=(ColumnRef(column=num.name.lower()),),
                        )
                    ),
                ),
                from_=from_,
                group_by=(cat_ref,),
            )
            out.append(VQLQuery(chart_type="bar", query=agg_select))
    for i, x_col in enumerate(numeric):
        for y_col in numeric[i + 1 :]:
            scatter = Select(
                items=(
                    SelectItem(expr=ColumnRef(column=x_col.name.lower())),
                    SelectItem(expr=ColumnRef(column=y_col.name.lower())),
                ),
                from_=from_,
            )
            out.append(VQLQuery(chart_type="scatter", query=scatter))
    return out


def _quality(chart: Chart) -> float:
    """Heuristic quality score in [0, 1] (DeepEye's 'goodness')."""
    n = len(chart.points)
    if n == 0:
        return 0.0
    if chart.chart_type == "scatter":
        return min(1.0, n / 20.0)
    # category charts: reward readable category counts
    if n < 2:
        return 0.05
    if n <= 12:
        base = 1.0 - abs(n - 6) / 12.0
    else:
        base = max(0.0, 1.0 - (n - 12) / 20.0)
    if chart.chart_type == "pie" and n > 8:
        base *= 0.5  # pies with many slices are unreadable
    ys = [
        float(y)
        for _, y in chart.points
        if isinstance(y, (int, float)) and not isinstance(y, bool)
    ]
    if ys and max(ys) > 0 and (max(ys) - min(ys)) / max(abs(max(ys)), 1.0) < 0.01:
        base *= 0.6  # flat charts carry little information
    return round(base, 4)
