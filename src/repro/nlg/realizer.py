"""Compositional English realizer for synthesized questions.

The realizer turns query semantics into natural questions, sampling among
the lexicon's paraphrases with an explicit RNG so dataset builds are
reproducible.  Dataset patterns (:mod:`repro.datasets.patterns`) assemble
questions from these helpers, mirroring how nvBench-style benchmarks were
synthesized from NL2SQL templates.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.data.schema import Column, TableSchema
from repro.data.values import Value
from repro.nlg import lexicon


class Realizer:
    """Samples surface realizations of query semantics."""

    def __init__(self, rng: random.Random, synonym_prob: float = 0.35) -> None:
        self._rng = rng
        self.synonym_prob = synonym_prob

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def choose(self, options: Sequence[str]) -> str:
        """Pick one option uniformly."""
        return self._rng.choice(list(options))

    def table_noun(self, table: TableSchema) -> str:
        """A noun phrase for a table, sometimes using a synonym."""
        mentions = table.mentions()
        if len(mentions) > 1 and self._rng.random() < self.synonym_prob:
            return self.choose(mentions[1:])
        return mentions[0]

    def column_noun(self, column: Column) -> str:
        """A noun phrase for a column, sometimes using a synonym."""
        mentions = column.mentions()
        if len(mentions) > 1 and self._rng.random() < self.synonym_prob:
            return self.choose(mentions[1:])
        return mentions[0]

    def value_text(self, value: Value) -> str:
        """Render a literal value as it appears inside a question."""
        if isinstance(value, str):
            return value
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    # ------------------------------------------------------------------
    # noun phrases
    # ------------------------------------------------------------------
    def projection_np(self, column_nouns: Sequence[str], table_noun: str) -> str:
        """``the name and price of products``."""
        joined = self._join_nouns(column_nouns)
        return f"the {joined} of {table_noun}"

    def agg_np(self, func: str, column_noun: str, table_noun: str) -> str:
        """``the average price of products`` / ``the number of orders``."""
        func = func.lower()
        if func == "count":
            template = self.choose(lexicon.AGG_PHRASES["count"])
            return f"{template} {table_noun}"
        template = self.choose(lexicon.AGG_PHRASES[func])
        return f"{template.format(col=column_noun)} {table_noun}"

    def _join_nouns(self, nouns: Sequence[str]) -> str:
        nouns = list(nouns)
        if len(nouns) == 1:
            return nouns[0]
        return ", ".join(nouns[:-1]) + " and " + nouns[-1]

    # ------------------------------------------------------------------
    # clauses
    # ------------------------------------------------------------------
    def condition(self, column_noun: str, op: str, value: Value) -> str:
        """``whose price is greater than 100`` (without the 'whose')."""
        phrase = self.choose(lexicon.OP_PHRASES[op])
        return f"{column_noun} {phrase} {self.value_text(value)}"

    def like_condition(self, column_noun: str, substring: str) -> str:
        phrase = self.choose(lexicon.LIKE_PHRASES).format(val=substring)
        return f"{column_noun} {phrase}"

    def between_condition(self, column_noun: str, low: Value, high: Value) -> str:
        phrase = self.choose(lexicon.BETWEEN_PHRASES).format(
            low=self.value_text(low), high=self.value_text(high)
        )
        return f"{column_noun} {phrase}"

    def group_suffix(self, group_noun: str) -> str:
        return self.choose(lexicon.GROUP_PHRASES).format(g=group_noun)

    def order_suffix(self, column_noun: str, descending: bool) -> str:
        return self.choose(lexicon.ORDER_PHRASES[descending]).format(
            col=column_noun
        )

    def superlative(self, column_noun: str, descending: bool) -> str:
        return self.choose(lexicon.SUPERLATIVE_PHRASES[descending]).format(
            col=column_noun
        )

    def set_op_connective(self, op: str) -> str:
        key = "union" if op.startswith("union") else op
        return self.choose(lexicon.SET_OP_PHRASES[key])

    def chart_np(self, chart_type: str) -> str:
        return self.choose(lexicon.CHART_PHRASES[chart_type])

    # ------------------------------------------------------------------
    # sentence assembly
    # ------------------------------------------------------------------
    def list_question(self, subject_np: str, suffixes: Sequence[str] = ()) -> str:
        opener = self.choose(lexicon.LIST_OPENERS).format(x=subject_np)
        return self._finish(opener, suffixes)

    def scalar_question(self, subject_np: str, suffixes: Sequence[str] = ()) -> str:
        opener = self.choose(lexicon.SCALAR_OPENERS).format(x=subject_np)
        return self._finish(opener, suffixes)

    def followup(self, question: str) -> str:
        """Wrap a question as a conversational follow-up turn."""
        body = question.rstrip("?.")
        body = body[0].lower() + body[1:] if body else body
        return self.choose(lexicon.FOLLOWUP_PHRASES).format(x=body) + "?"

    def _finish(self, text: str, suffixes: Sequence[str]) -> str:
        for suffix in suffixes:
            if suffix:
                text = f"{text} {suffix}"
        text = " ".join(text.split())
        if not text.endswith("?"):
            text += "?"
        return text[0].upper() + text[1:]
