"""Surface-form lexicons for question realization.

Each SQL-level concept (aggregate, comparison operator, ordering, ...) maps
to several natural phrasings.  The realizer samples among them, which gives
the synthetic datasets the lexical variety that separates rule/template
parsers (brittle to phrasing) from learned parsers (robust to it) — the
central contrast of the survey's approach taxonomy.
"""

from __future__ import annotations

#: Aggregate function -> question phrasings.  ``{col}`` is the column noun.
AGG_PHRASES: dict[str, tuple[str, ...]] = {
    "count": ("the number of", "how many", "the count of"),
    "sum": ("the total {col} of", "the sum of {col} for", "the combined {col} of"),
    "avg": ("the average {col} of", "the mean {col} of", "the typical {col} of"),
    "min": ("the minimum {col} of", "the lowest {col} of", "the smallest {col} of"),
    "max": ("the maximum {col} of", "the highest {col} of", "the largest {col} of"),
}

#: Comparison operator -> phrasings.
OP_PHRASES: dict[str, tuple[str, ...]] = {
    "=": ("is", "equals", "is exactly"),
    "<>": ("is not", "is different from", "does not equal"),
    ">": ("is greater than", "is more than", "is above", "exceeds"),
    "<": ("is less than", "is under", "is below", "is smaller than"),
    ">=": ("is at least", "is no less than", "is greater than or equal to"),
    "<=": ("is at most", "is no more than", "is less than or equal to"),
}

#: Openers for listing questions.
LIST_OPENERS: tuple[str, ...] = (
    "Show {x}", "List {x}", "What are {x}", "Give me {x}", "Return {x}",
    "Find {x}", "Display {x}",
)

#: Openers for scalar (aggregate) questions.
SCALAR_OPENERS: tuple[str, ...] = (
    "What is {x}", "Tell me {x}", "Compute {x}", "Find {x}",
)

#: Phrasings for "for each <group>".
GROUP_PHRASES: tuple[str, ...] = (
    "for each {g}", "per {g}", "grouped by {g}", "broken down by {g}",
)

#: Phrasings for ORDER BY direction.
ORDER_PHRASES: dict[bool, tuple[str, ...]] = {
    False: ("in ascending order of {col}", "sorted by {col}",
            "ordered by {col} from low to high"),
    True: ("in descending order of {col}", "sorted by {col} from high to low",
           "ordered by decreasing {col}"),
}

#: Superlative phrasings, keyed by descending flag.
SUPERLATIVE_PHRASES: dict[bool, tuple[str, ...]] = {
    True: ("with the highest {col}", "with the largest {col}",
           "with the greatest {col}", "with the most {col}"),
    False: ("with the lowest {col}", "with the smallest {col}",
            "with the least {col}"),
}

#: LIKE phrasings. ``{val}`` is the raw substring.
LIKE_PHRASES: tuple[str, ...] = (
    "contains the substring '{val}'", "includes '{val}'",
    "has '{val}' in it",
)

#: BETWEEN phrasings.
BETWEEN_PHRASES: tuple[str, ...] = (
    "is between {low} and {high}",
    "falls between {low} and {high}",
    "is in the range {low} to {high}",
)

#: Set-operation connectives.
SET_OP_PHRASES: dict[str, tuple[str, ...]] = {
    "union": ("or", "as well as"),
    "intersect": ("and also", "that also"),
    "except": ("but not", "excluding"),
}

#: Chart-type request phrasings for Text-to-Vis questions.
CHART_PHRASES: dict[str, tuple[str, ...]] = {
    "bar": ("a bar chart of", "a bar graph showing", "bars for"),
    "line": ("a line chart of", "a line graph showing", "a trend line of"),
    "pie": ("a pie chart of", "a pie graph showing",
            "the proportion breakdown of"),
    "scatter": ("a scatter plot of", "a scatter chart comparing",
                "points plotting"),
}

#: Multi-turn follow-up templates.
FOLLOWUP_PHRASES: tuple[str, ...] = (
    "Now {x}", "Next, {x}", "And {x}", "Also {x}", "Then {x}",
)

#: Words the typo channel may corrupt (function words are safe to corrupt
#: without destroying schema-linking evidence).
SAFE_TYPO_WORDS: frozenset[str] = frozenset(
    {"show", "list", "what", "give", "return", "find", "display", "the",
     "number", "average", "total", "whose", "with", "each", "sorted"}
)
