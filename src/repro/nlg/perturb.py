"""Robustness perturbations for dataset variants.

The survey catalogs a family of Spider variants probing robustness:

- **Spider-SYN** — schema-related terms replaced by synonyms, stressing
  schema linking (:func:`substitute_synonyms`);
- **Spider-realistic** — explicit column-name mentions removed or replaced
  with vaguer references (:func:`drop_column_mentions`);
- **Dr.Spider** — multi-dimensional perturbations including surface noise;
  our typo channel (:func:`typo_perturb`) reproduces the NLQ-side
  perturbation dimension.

Each function is pure and deterministic given its RNG, so perturbed
datasets are reproducible.
"""

from __future__ import annotations

import random

from repro.data.schema import Schema
from repro.nlg.lexicon import SAFE_TYPO_WORDS

#: Out-of-schema paraphrases.  Spider-SYN deliberately replaces schema
#: mentions with synonyms that do NOT occur in the schema, so exact-match
#: schema linking breaks; this table is the substitution source.  The same
#: table doubles as the "world knowledge" that LLM-grade parsers use to
#: recover such mentions (see ``repro.parsers.linker``).
OUT_OF_SCHEMA_SYNONYMS: dict[str, tuple[str, ...]] = {
    "name": ("label", "designation", "moniker"),
    "price": ("cost figure", "amount charged"),
    "city": ("town", "municipality"),
    "country": ("nation", "homeland"),
    "year": ("calendar year",),
    "rating": ("grade", "mark"),
    "salary": ("earnings", "compensation"),
    "population": ("head count", "populace"),
    "quantity": ("volume", "unit count"),
    "title": ("heading",),
    "age": ("years of age",),
    "budget": ("allocated funds",),
    "distance": ("mileage",),
    "length": ("extent",),
    "stock": ("inventory level",),
    "category": ("classification", "grouping"),
    "genre": ("style",),
    "cuisine": ("cooking style",),
    "specialty": ("field of practice",),
    "segment": ("market group",),
    "wins": ("victory total",),
    "points": ("tally",),
    "cost": ("expense",),
    "area": ("surface extent",),
    "citations": ("reference count",),
    "pages": ("page total",),
    "gross": ("takings",),
}

# backwards-compatible alias used by tests of the perturbation channel
_FALLBACK_SYNONYMS = OUT_OF_SCHEMA_SYNONYMS


def substitute_synonyms(
    question: str, schema: Schema, rng: random.Random, probability: float = 1.0
) -> str:
    """Replace schema-term mentions with synonyms (Spider-SYN style).

    Every maximal schema mention found in the question is, with
    *probability*, replaced by a synonym: first choice is a synonym
    declared on the schema element, falling back to a generic paraphrase
    table.  Mentions without any synonym are left untouched.
    """
    replacements: dict[str, tuple[str, ...]] = {}
    for table in schema.tables:
        mentions = table.mentions()
        if len(mentions) > 1:
            replacements[mentions[0]] = mentions[1:]
        for column in table.columns:
            col_mentions = column.mentions()
            # out-of-schema synonyms first: Spider-SYN's point is that the
            # replacement is NOT discoverable by exact schema matching
            options = OUT_OF_SCHEMA_SYNONYMS.get(col_mentions[0], ())
            options = options or col_mentions[1:]
            if options:
                replacements[col_mentions[0]] = tuple(options)

    # longest mentions first so multi-word phrases win over their sub-words
    text = question
    for mention in sorted(replacements, key=len, reverse=True):
        if mention in text.lower() and rng.random() < probability:
            text = _replace_ci(text, mention, rng.choice(replacements[mention]))
    return text


def drop_column_mentions(question: str, schema: Schema) -> str:
    """Remove explicit column-name mentions (Spider-realistic style).

    Column mentions are replaced by a vague placeholder so the parser must
    infer the column from context rather than string match it.
    """
    text = question
    column_mentions = sorted(
        {
            column.mentions()[0]
            for table in schema.tables
            for column in table.columns
        },
        key=len,
        reverse=True,
    )
    for mention in column_mentions:
        if " " + mention in text.lower() or text.lower().startswith(mention):
            text = _replace_ci(text, mention, "value")
    return " ".join(text.split())


def typo_perturb(
    question: str, rng: random.Random, rate: float = 0.25
) -> str:
    """Inject keyboard typos into safe function words (Dr.Spider style).

    Only words in the safe list are corrupted, so schema-linking evidence
    survives — matching Dr.Spider's NLQ perturbations, which are meant to
    be answerable by a robust model.
    """
    out: list[str] = []
    for token in question.split():
        stripped = token.strip("?,.'").lower()
        if stripped in SAFE_TYPO_WORDS and rng.random() < rate:
            out.append(_typo(token, rng))
        else:
            out.append(token)
    return " ".join(out)


def _typo(word: str, rng: random.Random) -> str:
    if len(word) < 3:
        return word
    kind = rng.randrange(3)
    index = rng.randrange(1, len(word) - 1)
    if kind == 0:  # swap adjacent characters
        chars = list(word)
        chars[index], chars[index - 1] = chars[index - 1], chars[index]
        return "".join(chars)
    if kind == 1:  # drop a character
        return word[:index] + word[index + 1 :]
    return word[:index] + word[index] + word[index:]  # double a character


def _replace_ci(text: str, old: str, new: str) -> str:
    """Case-insensitive single-pass replacement of *old* with *new*."""
    lowered = text.lower()
    out: list[str] = []
    i = 0
    while True:
        j = lowered.find(old, i)
        if j < 0:
            out.append(text[i:])
            return "".join(out)
        out.append(text[i:j])
        out.append(new)
        i = j + len(old)
