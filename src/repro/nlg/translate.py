"""Lexicon-based translation for multilingual dataset variants.

CSpider, ViText2SQL, PortugueseSpider, and CNvBench translate an English
benchmark's questions while keeping the databases (and SQL) in English.
We reproduce that construction with function-word lexicons: English
function words are mapped to the target language, schema words and values
are left untouched (real multilingual benchmarks exhibit exactly this
code-switching for schema terms).  The translation is deterministic so the
multilingual variant of an example is stable across builds.
"""

from __future__ import annotations

#: language code -> English function word -> translation
_LEXICONS: dict[str, dict[str, str]] = {
    "zh": {
        "show": "显示", "list": "列出", "what": "什么", "are": "是",
        "is": "是", "the": "", "of": "的", "all": "所有", "whose": "其",
        "with": "带有", "and": "和", "or": "或", "for": "对于",
        "each": "每个", "number": "数量", "how": "多少", "many": "个",
        "average": "平均", "total": "总", "sum": "总和", "highest": "最高",
        "lowest": "最低", "maximum": "最大", "minimum": "最小",
        "greater": "大", "less": "小", "than": "于", "more": "多",
        "sorted": "排序", "by": "按", "descending": "降序",
        "ascending": "升序", "order": "顺序", "find": "查找",
        "give": "给出", "me": "我", "return": "返回", "display": "展示",
        "between": "之间", "contains": "包含", "not": "不",
        "but": "但", "also": "也", "now": "现在", "then": "然后",
        "chart": "图表", "bar": "柱状", "line": "折线", "pie": "饼",
        "scatter": "散点", "plot": "图", "graph": "图", "showing": "显示",
        "tell": "告诉", "compute": "计算", "per": "每",
    },
    "vi": {
        "show": "hiển thị", "list": "liệt kê", "what": "gì", "are": "là",
        "is": "là", "the": "", "of": "của", "all": "tất cả",
        "whose": "mà có", "with": "với", "and": "và", "or": "hoặc",
        "for": "cho", "each": "mỗi", "number": "số lượng",
        "how": "bao nhiêu", "many": "", "average": "trung bình",
        "total": "tổng", "sum": "tổng", "highest": "cao nhất",
        "lowest": "thấp nhất", "maximum": "tối đa", "minimum": "tối thiểu",
        "greater": "lớn hơn", "less": "nhỏ hơn", "than": "", "more": "hơn",
        "sorted": "sắp xếp", "by": "theo", "descending": "giảm dần",
        "ascending": "tăng dần", "order": "thứ tự", "find": "tìm",
        "give": "cho", "me": "tôi", "return": "trả về",
        "display": "hiển thị", "between": "giữa", "contains": "chứa",
        "not": "không", "but": "nhưng", "also": "cũng",
        "chart": "biểu đồ", "bar": "cột", "line": "đường", "pie": "tròn",
        "scatter": "phân tán", "plot": "đồ thị", "graph": "đồ thị",
    },
    "ru": {
        "show": "покажи", "list": "перечисли", "what": "какой",
        "are": "есть", "is": "есть", "the": "", "of": "из",
        "all": "все", "whose": "чей", "with": "с", "and": "и",
        "or": "или", "for": "для", "each": "каждый",
        "number": "количество", "how": "сколько", "many": "",
        "average": "средний", "total": "общий", "sum": "сумма",
        "highest": "наибольший", "lowest": "наименьший",
        "maximum": "максимум", "minimum": "минимум",
        "greater": "больше", "less": "меньше", "than": "чем",
        "more": "более", "sorted": "отсортированный", "by": "по",
        "descending": "убыванию", "ascending": "возрастанию",
        "order": "порядке", "find": "найди", "give": "дай",
        "me": "мне", "return": "верни", "display": "покажи",
        "between": "между", "contains": "содержит", "not": "не",
        "but": "но", "also": "также", "chart": "график",
        "bar": "столбчатый", "line": "линейный", "pie": "круговой",
        "scatter": "точечный", "plot": "график", "graph": "график",
    },
    "pt": {
        "show": "mostre", "list": "liste", "what": "qual", "are": "são",
        "is": "é", "the": "o", "of": "de", "all": "todos",
        "whose": "cujo", "with": "com", "and": "e", "or": "ou",
        "for": "para", "each": "cada", "number": "número",
        "how": "quantos", "many": "", "average": "média",
        "total": "total", "sum": "soma", "highest": "mais alto",
        "lowest": "mais baixo", "maximum": "máximo", "minimum": "mínimo",
        "greater": "maior", "less": "menor", "than": "que", "more": "mais",
        "sorted": "ordenado", "by": "por", "descending": "decrescente",
        "ascending": "crescente", "order": "ordem", "find": "encontre",
        "give": "dê", "me": "me", "return": "retorne",
        "display": "exiba", "between": "entre", "contains": "contém",
        "not": "não", "but": "mas", "also": "também",
        "chart": "gráfico", "bar": "de barras", "line": "de linhas",
        "pie": "de pizza", "scatter": "de dispersão", "plot": "gráfico",
        "graph": "gráfico",
    },
}

SUPPORTED_LANGUAGES: tuple[str, ...] = ("en",) + tuple(sorted(_LEXICONS))


def reverse_translate(question: str, language: str) -> str:
    """Map a translated question back to its English function words.

    Used by parsers with multilingual capability: the inverse lexicon is
    applied longest-entry-first so multi-word translations ("hiển thị")
    reverse correctly.  Untranslatable tokens (schema words, values) pass
    through, as they were never translated in the first place.
    """
    if language == "en":
        return question
    lexicon = _LEXICONS[language]
    reverse: dict[str, str] = {}
    for english, target in lexicon.items():
        if target and target not in reverse:
            reverse[target] = english
    import re

    text = question
    for target in sorted(reverse, key=len, reverse=True):
        pattern = r"(?<!\w)" + re.escape(target) + r"(?!\w)"
        text = re.sub(pattern, f" {reverse[target]} ", text)
    return " ".join(text.split())


def translate(question: str, language: str) -> str:
    """Translate *question* into *language* (see module docstring).

    ``language == "en"`` returns the question unchanged.  Raises
    ``KeyError`` for unsupported languages.
    """
    if language == "en":
        return question
    lexicon = _LEXICONS[language]
    out: list[str] = []
    for token in question.split():
        stripped = token.strip("?,.'").lower()
        punct = "?" if token.endswith("?") else ""
        replacement = lexicon.get(stripped)
        if replacement is None:
            out.append(token)
        elif replacement:
            out.append(replacement + punct)
        elif punct:
            out.append(punct)
    text = " ".join(out)
    return " ".join(text.split())
