"""Natural-language generation channel for benchmark synthesis.

The surveyed benchmarks pair formal queries with natural-language
questions.  Our synthetic counterparts realize questions from query
semantics through this package: op/aggregate lexicons with paraphrase
variation (:mod:`repro.nlg.lexicon`), a compositional English realizer
(:mod:`repro.nlg.realizer`), lexicon-based translation for multilingual
datasets (:mod:`repro.nlg.translate`), and the robustness perturbations —
synonym substitution, explicit-mention removal, typos — used by the
Spider-SYN / Spider-realistic / Dr.Spider-style variants
(:mod:`repro.nlg.perturb`).
"""

from repro.nlg.lexicon import AGG_PHRASES, OP_PHRASES
from repro.nlg.realizer import Realizer
from repro.nlg.translate import SUPPORTED_LANGUAGES, translate
from repro.nlg.perturb import (
    drop_column_mentions,
    substitute_synonyms,
    typo_perturb,
)

__all__ = [
    "AGG_PHRASES",
    "OP_PHRASES",
    "Realizer",
    "SUPPORTED_LANGUAGES",
    "drop_column_mentions",
    "substitute_synonyms",
    "translate",
    "typo_perturb",
]
