"""Process-wide metrics registry — the aggregation half of :mod:`repro.obs`.

Where spans (:mod:`repro.obs.trace`) answer "where did *this* request's
time go", metrics answer "what has the process done so far": monotonically
increasing :class:`Counter`\\ s, point-in-time :class:`Gauge`\\ s (plain or
callback-backed, so existing counters like the plan-cache hit totals in
:mod:`repro.sql.plan` re-register here without any hot-path cost), and
fixed-boundary :class:`Histogram`\\ s for latency distributions.

Naming scheme (documented in DESIGN.md): dot-separated
``repro.<area>.<object>.<measure>`` — e.g. ``repro.sql.plan.cache.hits``,
``repro.pipeline.stage.execute.seconds``, ``repro.session.turns``.  The
default :class:`MetricsRegistry` is a process singleton
(:func:`get_registry`); tests get a clean slate from the autouse
``_obs_reset`` fixture in ``tests/conftest.py``, which calls
:meth:`MetricsRegistry.reset` after every test.

Instruments are created on first use and returned on every subsequent
request for the same name; asking for an existing name as a different
instrument kind raises ``TypeError`` (a name can only ever mean one
thing).  Creation is lock-protected, and so are the increment/observe
hot paths: ``value += amount`` is a read-modify-write, and with the
serving layer (:mod:`repro.serve`) incrementing the same counters from
many worker threads, relying on the GIL to never preempt between the
read and the write would silently drop updates.  Each instrument carries
its own small lock, so contention stays per-instrument, exactly like
collectors in production metrics clients.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

#: Seconds-denominated boundaries spanning 100µs–5s, the range the
#: pipeline and SQL engine actually occupy (see BENCH_*.json).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """A monotonically increasing count (requests served, cache probes)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1) to the counter.  Thread-safe: the
        += is a read-modify-write, so concurrent workers would lose
        increments without the lock."""
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value: either set explicitly or callback-backed.

    A callback gauge (``fn=...``) reads its source of truth lazily at
    snapshot time — the pattern used to mirror the plan/parse cache
    counters of :mod:`repro.sql.plan` into the registry with zero cost on
    the cache hot path.
    """

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self._value: float = 0
        self._fn = fn

    def set(self, value: float) -> None:
        """Set the gauge (and detach any callback)."""
        # value first: a concurrent snapshot sees either the callback's
        # reading or the new value, never a stale explicit one
        self._value = value
        self._fn = None

    def set_function(self, fn: Callable[[], float] | None) -> None:
        """Back the gauge by *fn*, read at every snapshot."""
        self._fn = fn

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def reset(self) -> None:
        """Zero an explicit gauge; callback gauges keep their source."""
        if self._fn is None:
            self._value = 0

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-boundary histogram with Prometheus ``le`` bucket semantics.

    ``boundaries`` are inclusive upper bounds in ascending order; an
    observation lands in the first bucket whose boundary is >= the value
    (so a value exactly on an edge belongs to that edge's bucket), with a
    final implicit ``+Inf`` overflow bucket.  Tracks count and sum, so
    mean latency falls out for free.
    """

    __slots__ = (
        "name", "boundaries", "bucket_counts", "count", "total", "_lock"
    )

    def __init__(
        self, name: str, boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.name = name
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.count = 0
        self.total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation.  Thread-safe: the three updates are
        read-modify-writes and must also stay mutually consistent
        (``count`` equals the bucket sum) for snapshot readers."""
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.boundaries) + 1)
            self.count = 0
            self.total = 0.0

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self.bucket_counts)
            count = self.count
            total = self.total
        buckets = {
            f"le_{bound:g}": n
            for bound, n in zip(self.boundaries, counts)
        }
        buckets["le_inf"] = counts[-1]
        return {
            "count": count,
            "sum": round(total, 9),
            "mean": round(total / count if count else 0.0, 9),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Name → instrument map with fetch-or-create semantics."""

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory):
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """Fetch or create the counter *name*."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        """Fetch or create the gauge *name*; *fn* (re)binds its callback."""
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name))
        if fn is not None:
            gauge.set_function(fn)
        return gauge

    def histogram(
        self, name: str, boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        """Fetch or create the histogram *name* (boundaries fixed at birth)."""
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, boundaries)
        )

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """All instruments' current values, sorted by name (JSON-safe)."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def reset(self) -> None:
        """Zero every instrument (callback gauges keep their callbacks)."""
        for instrument in self._instruments.values():
            instrument.reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every instrumented module uses."""
    return _REGISTRY
