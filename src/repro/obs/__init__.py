"""Unified observability for the repro stack: tracing, metrics, profiling.

The survey's Fig. 1 workflow is a multi-stage pipeline (NL → parse →
candidate pruning → execution → feedback); operating it at any scale
requires knowing where time and failures go *per stage and per operator*,
not per whole query.  ``repro.obs`` is the zero-dependency subsystem the
rest of the library reports into:

- :mod:`repro.obs.trace` — hierarchical wall-time spans with structured
  attributes, a thread-local active-span stack, an injectable clock, and
  a no-op fast path that makes disabled instrumentation near-free
  (< 5% on the optimizer benchmark, enforced by
  ``benchmarks/bench_obs_overhead.py``);
- :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  (plain or callback-backed), and fixed-bucket histograms under the
  ``repro.<area>.<object>.<measure>`` naming scheme;
- :mod:`repro.obs.trace_cli` — ``python -m repro trace "SELECT ..."``,
  which runs one query through parse → lint → plan → execute and prints
  the resulting span tree with per-operator row counts matching
  ``explain()``.

Instrumented layers: ``core.pipeline`` (per-stage spans + latency
histograms), ``sql.plan``/``sql.executor`` (parse/compile/execute spans,
per-operator timings and actual row counts, cache counters re-registered
as callback gauges), ``metrics.execution``/``metrics.test_suite``
(evaluation-loop spans and accept/reject counters), and
``systems.session`` (per-turn spans).

Quick use::

    from repro.obs import trace
    with trace.tracing() as roots:
        nli.ask("How many products are there?")
    print(roots[0].render())

    from repro.obs import metrics
    print(metrics.get_registry().snapshot())
"""

from repro.obs import metrics, trace
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    annotate,
    current_span,
    span,
    take_roots,
    tracing,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "annotate",
    "current_span",
    "get_registry",
    "metrics",
    "span",
    "take_roots",
    "trace",
    "tracing",
]
