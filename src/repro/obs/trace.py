"""Hierarchical trace spans — the tracing half of :mod:`repro.obs`.

A :class:`Span` is one timed, attributed node in a per-request tree:
``span("repro.sql.execute", rows=3)`` opens a child of whatever span is
currently active on this thread, records wall time between ``__enter__``
and ``__exit__``, and attaches itself to its parent (or to the thread's
finished-root ring when it is outermost).  The survey's Fig. 1 pipeline,
the SQL engine, and the evaluation loops all emit spans through this
module, so one enabled trace shows where a request's time and failures
went, stage by stage and operator by operator.

Design constraints, in order:

- **Near-free when disabled.**  Tracing is off by default; ``span()``
  then returns the shared :data:`NULL_SPAN` singleton after a single
  module-flag test, and instrumented call sites guard with the same flag
  (``if trace._ENABLED:``) so the disabled path costs one attribute load.
  ``benchmarks/bench_obs_overhead.py`` enforces the <5% overhead budget
  on the optimizer benchmark.
- **Exception safe.**  A span that exits through an exception still
  closes, records ``error=True`` plus the exception type, and detaches
  from the stack — an instrumented failure can never corrupt the stack
  for the next request.
- **Deterministic-friendly.**  The clock is injectable
  (:func:`set_clock`), so tests can assert exact durations.
- **Thread-correct.**  The active-span stack and finished-root ring are
  thread-local; traces from concurrent sessions never interleave.

Spans export as JSON (:meth:`Span.to_dict`) or as a pretty tree
(:meth:`Span.render`); ``python -m repro trace`` is the CLI front end.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "NULL_SPAN",
    "Span",
    "annotate",
    "clear",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "now",
    "set_clock",
    "span",
    "take_roots",
    "tracing",
]

#: Module-level master switch.  Instrumented hot paths read this attribute
#: directly (one global load) before doing any tracing work.
_ENABLED = False

_clock: Callable[[], float] = time.perf_counter

#: Finished outermost spans are kept per thread in a bounded ring so an
#: always-on trace session cannot grow memory without bound.
_MAX_ROOTS = 128

_local = threading.local()

#: Attribute values that serialize to JSON as-is; everything else reprs.
_JSON_SCALARS = (str, int, float, bool, type(None))


def enabled() -> bool:
    """Whether tracing is currently on for the whole process."""
    return _ENABLED


def enable() -> bool:
    """Turn tracing on; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = True
    return previous


def disable() -> bool:
    """Turn tracing off; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    return previous


def now() -> float:
    """The tracer's current clock reading (injectable, see :func:`set_clock`)."""
    return _clock()


def set_clock(clock: Callable[[], float] | None) -> Callable[[], float]:
    """Replace the span clock (``None`` restores ``time.perf_counter``).

    Returns the previous clock so callers can restore it.  Tests inject a
    counter-backed clock to make span durations exact and deterministic.
    """
    global _clock
    previous = _clock
    _clock = clock if clock is not None else time.perf_counter
    return previous


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _roots() -> deque:
    roots = getattr(_local, "roots", None)
    if roots is None:
        roots = _local.roots = deque(maxlen=_MAX_ROOTS)
    return roots


class Span:
    """One node of a trace tree: name, wall time, attributes, children.

    Use as a context manager (via :func:`span`); entering pushes it on the
    thread's active stack, exiting pops it, stamps the end time, and
    attaches it to the enclosing span (or the finished-root ring).
    """

    __slots__ = (
        "name",
        "attrs",
        "counters",
        "children",
        "start_time",
        "end_time",
        "error",
    )

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self.start_time: float | None = None
        self.end_time: float | None = None
        self.error = False

    # -- context-manager protocol -------------------------------------
    def __enter__(self) -> "Span":
        self.start_time = _clock()
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_time = _clock()
        if exc_type is not None:
            self.error = True
            self.attrs.setdefault("error_type", exc_type.__name__)
        stack = _stack()
        # Unwind to (and including) this span even if a child failed to
        # close — exception safety must hold for whatever is left above.
        while stack:
            top = stack.pop()
            if top is self:
                break
            top.error = top.error or exc_type is not None
            if top.end_time is None:
                top.end_time = self.end_time
        if stack:
            stack[-1].children.append(self)
        else:
            _roots().append(self)
        return False

    # -- recording ----------------------------------------------------
    def set_attr(self, name: str, value: Any) -> "Span":
        """Attach one structured attribute; returns self for chaining."""
        self.attrs[name] = value
        return self

    def incr(self, name: str, amount: int = 1) -> "Span":
        """Bump a per-span counter (e.g. rows examined, cache probes)."""
        self.counters[name] = self.counters.get(name, 0) + amount
        return self

    # -- inspection ---------------------------------------------------
    @property
    def duration(self) -> float | None:
        """Wall seconds between enter and exit, ``None`` while open (or
        for synthetic spans that were never entered)."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict form (non-scalar attrs are ``repr``'d)."""
        out: dict[str, Any] = {"name": self.name}
        if self.duration is not None:
            out["duration_ms"] = round(self.duration * 1000, 4)
        if self.error:
            out["error"] = True
        if self.attrs:
            out["attrs"] = {
                key: value if isinstance(value, _JSON_SCALARS) else repr(value)
                for key, value in self.attrs.items()
            }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, indent: str = "", into: list[str] | None = None) -> str:
        """Pretty one-span-per-line tree, durations in milliseconds."""
        lines = [] if into is None else into
        parts = [indent + self.name]
        if self.duration is not None:
            parts.append(f"({self.duration * 1000:.2f} ms)")
        parts.extend(
            f"{key}={value!r}" if isinstance(value, str) else f"{key}={value}"
            for key, value in self.attrs.items()
        )
        parts.extend(f"{key}={value}" for key, value in self.counters.items())
        if self.error:
            parts.append("!error")
        lines.append(" ".join(parts))
        for child in self.children:
            child.render(indent + "  ", lines)
        if into is None:
            return "\n".join(lines)
        return ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Span {self.name} children={len(self.children)}>"


class _NullSpan:
    """The do-nothing span returned while tracing is disabled.

    A single shared instance; every method is a no-op returning self, so
    ``with span(...) as s: s.set_attr(...)`` costs almost nothing when
    tracing is off.
    """

    __slots__ = ()
    children: tuple = ()
    counters: dict = {}
    attrs: dict = {}
    error = False
    duration = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, name: str, value: Any) -> "_NullSpan":
        return self

    def incr(self, name: str, amount: int = 1) -> "_NullSpan":
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """Open a child span of the current one (the core instrumentation API).

    Returns a context manager.  When tracing is disabled this is the
    shared :data:`NULL_SPAN` — one flag test, no allocation.
    """
    if not _ENABLED:
        return NULL_SPAN
    return Span(name, attrs)


def current_span() -> Span | None:
    """The innermost open span on this thread, or ``None``."""
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    return None


def annotate(**attrs: Any) -> None:
    """Attach attributes to the current span, if any (no-op otherwise)."""
    current = current_span()
    if current is not None:
        current.attrs.update(attrs)


def take_roots() -> list[Span]:
    """Drain and return this thread's finished outermost spans."""
    roots = _roots()
    out = list(roots)
    roots.clear()
    return out


def clear() -> None:
    """Drop this thread's active stack and finished roots (test hygiene)."""
    _stack().clear()
    _roots().clear()


@contextmanager
def tracing():
    """Enable tracing for a block and yield the finished-roots list.

    The yielded list is populated when the block exits (the root ring is
    drained into it); roots left over from before the block are dropped::

        with trace.tracing() as roots:
            run_workload()
        print(roots[0].render())
    """
    previous = enable()
    take_roots()  # start the block with a clean ring
    collected: list[Span] = []
    try:
        yield collected
    finally:
        collected.extend(take_roots())
        if not previous:
            disable()
