"""``python -m repro trace`` — run one query and print its span tree.

Runs a SQL query through the full engine path — parse, lint, plan,
execute — with tracing enabled, and prints the resulting hierarchical
span tree: wall time per phase, per-operator actual row counts (the same
numbers ``explain()`` reports), cache-miss compile spans, and subquery
timings, e.g.::

    python -m repro trace "SELECT name FROM products WHERE price > 500"
    python -m repro trace --domain healthcare --json "SELECT ..."

``--json`` additionally dumps the tree as JSON (one object per root
span) for machine consumption; ``--metrics`` dumps the process metrics
registry snapshot after the run.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.data.domains import domain_by_name, domain_names
from repro.data.generator import DatabaseGenerator
from repro.errors import SQLError
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.sql.lint import lint_query
from repro.sql.parser import parse_sql
from repro.sql.plan import attach_operator_spans, plan_for, set_optimizer_enabled


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="run a SQL query with tracing on and print the span tree",
    )
    parser.add_argument("sql", help="the SQL query to trace")
    parser.add_argument(
        "--domain",
        default="sales",
        choices=domain_names(),
        help="curated domain schema/database to run against",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--rows", type=int, default=200, help="rows per generated table"
    )
    parser.add_argument(
        "--no-optimizer",
        action="store_true",
        help="trace the unoptimized (written-order, full-scan) plan",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also dump the span tree as JSON",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="also dump the metrics-registry snapshot after the run",
    )
    args = parser.parse_args(argv)

    db = DatabaseGenerator(seed=args.seed).populate(
        domain_by_name(args.domain), rows_per_table=args.rows
    )
    previous = set_optimizer_enabled(not args.no_optimizer)
    error: SQLError | None = None
    try:
        with _obs_trace.tracing() as roots:
            error = _trace_one(args.sql, db)
    finally:
        set_optimizer_enabled(previous)

    for root in roots:
        print(root.render().rstrip())
    if args.json:
        print(json.dumps([root.to_dict() for root in roots], indent=2))
    if args.metrics:
        snapshot = _obs_metrics.get_registry().snapshot()
        print("-- metrics")
        for name in sorted(snapshot):
            print(f"   {name}: {snapshot[name]}")
    if error is not None:
        print(f"trace: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    return 0


def _trace_one(sql: str, db) -> SQLError | None:
    """Run *sql* under a ``repro.sql.query`` root span; return any SQLError.

    Each engine phase gets its own child span; the execute span grows the
    per-operator subtree via :func:`repro.sql.plan.attach_operator_spans`,
    so its ``actual_rows`` attributes match ``explain()`` actuals exactly.
    """
    with _obs_trace.span("repro.sql.query", sql=sql) as root:
        try:
            with _obs_trace.span("repro.sql.parse.phase"):
                query = parse_sql(sql)
            with _obs_trace.span("repro.sql.lint.phase") as lint_span:
                report = lint_query(query, db.schema)
                lint_span.set_attr("diagnostics", len(report.diagnostics))
            with _obs_trace.span("repro.sql.plan.phase") as plan_span:
                plan = plan_for(query, db.schema, db)
                plan_span.set_attr("optimized", plan.optimized)
            with _obs_trace.span("repro.sql.execute") as exec_span:
                result, state = plan.run_traced(db)
                exec_span.set_attr("rows", len(result.rows))
                attach_operator_spans(exec_span, plan, state)
        except SQLError as exc:
            root.set_attr("error", str(exc))
            return exc
        root.set_attr("rows", len(result.rows))
    return None


if __name__ == "__main__":
    sys.exit(main())
