"""Parallel corpus-evaluation driver (see :mod:`repro.eval.parallel`)."""

from repro.eval.parallel import parallel_map, resolve_workers

__all__ = ["parallel_map", "resolve_workers"]
