"""Chunked parallel map over evaluation examples.

Execution-based metrics (execution match, test-suite match) are
embarrassingly parallel across examples but CPU-bound in pure Python, so
the GIL rules out thread-level speedup: :func:`parallel_map` therefore
fans work out to a ``concurrent.futures`` **process pool**.  The design
constraints, in order:

* **Deterministic ordering** — results come back in input order no matter
  which worker finished first, so parallel and serial evaluation of the
  same corpus produce byte-identical reports.
* **One payload, many chunks** — the function and the full item list are
  pickled *once* and shipped to each worker through the pool initializer
  (fork-safe: nothing is inherited implicitly, so the same code runs
  under ``fork`` and ``spawn`` start methods).  Tasks themselves are just
  ``(start, end)`` index ranges into the worker's copy, so per-task
  dispatch cost is a few bytes regardless of item size.  Pickling the
  list in one shot also lets the pickle memo deduplicate shared objects —
  a corpus of 1 000 examples over 20 databases ships 20 databases, not
  1 000.
* **Per-worker caches for free** — each worker process has its own module
  state, so the plan/parse LRUs in :mod:`repro.sql.plan`, the shared
  result cache in :mod:`repro.sql.rescache` (each worker's unpickled
  database copies get fresh identity tokens, so entries warm per worker
  and never alias across processes), and the gold-result/variant caches
  that ride on database objects all warm up independently per worker
  with zero locking.
* **Graceful degradation** — ``max_workers<=1`` (or a tiny item count)
  runs serially in-process; *infrastructure* failures (unpicklable
  payload, a broken pool, fork failure) fall back to a thread pool, which
  is slower but always correct because the metric stack is thread-safe
  (:data:`repro.sql.plan._CACHE_LOCK`).  Exceptions raised by ``fn``
  itself are never swallowed — they propagate to the caller exactly as a
  serial loop would raise them.

Caveat: obs counters incremented inside worker *processes* die with the
workers; only counters touched in the parent survive.  The
``repro.eval.parallel.*`` counters below are parent-side and reliable.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import metrics as _obs_metrics

T = TypeVar("T")
R = TypeVar("R")

#: below this many items the pool spin-up costs more than it saves
MIN_PARALLEL_ITEMS = 8

#: per-task chunk size is capped so stragglers cannot hold a worker for
#: more than ~this many items while its siblings sit idle
MAX_CHUNK_SIZE = 64

_registry = _obs_metrics.get_registry()
_CHUNKS = _registry.counter("repro.eval.parallel.chunks")
_FALLBACKS = _registry.counter("repro.eval.parallel.fallbacks")

#: worker-process global holding the unpickled ``(fn, items)`` payload;
#: populated by :func:`_init_worker` via the pool initializer
_WORKER_STATE: dict = {}


#: environment default consulted by every worker-count consumer (the
#: ``eval`` CLI, the report generator, ``loadgen``) when no explicit
#: ``--workers`` was given
WORKERS_ENV = "REPRO_EVAL_WORKERS"


def resolve_workers(
    max_workers: int | None = None,
    *,
    env: str | None = WORKERS_ENV,
    default: int | None = None,
) -> int:
    """The one worker-count resolution rule, shared by every consumer.

    Precedence: explicit *max_workers* → the *env* variable (ignored when
    unset or not an integer) → *default* → one per CPU.  The result is
    always >= 1, so ``resolved <= 1`` is the serial-fallback test
    everywhere.
    """
    if max_workers is not None:
        return max(1, int(max_workers))
    raw = os.environ.get(env, "") if env else ""
    if raw.strip():
        try:
            return max(1, int(raw))
        except ValueError:
            pass  # a malformed env var must never break an eval run
    if default is not None:
        return max(1, int(default))
    return max(1, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    max_workers: int | None = None,
    chunk_size: int | None = None,
) -> list[R]:
    """Map *fn* over *items* on a process pool; results in input order.

    *fn* must be a module-level function (it is pickled by reference).
    ``max_workers=None`` uses one worker per CPU; ``<=1`` runs serially.
    *chunk_size* bounds how many items one task covers (default: balanced
    so each worker sees ~4 tasks, capped at :data:`MAX_CHUNK_SIZE`).
    """
    items = list(items)
    n = len(items)
    workers = resolve_workers(max_workers)
    if workers <= 1 or n < MIN_PARALLEL_ITEMS:
        return [fn(item) for item in items]
    workers = min(workers, n)
    bounds = _chunk_bounds(n, workers, chunk_size)
    try:
        payload = pickle.dumps((fn, items), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        # unpicklable fn or items: processes are off the table
        _FALLBACKS.inc()
        return _thread_map(fn, items, bounds, workers)
    try:
        ctx = _pool_context()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            chunk_results = list(pool.map(_run_chunk, bounds))
    except (BrokenProcessPool, OSError, pickle.PicklingError):
        # infrastructure failure (worker died, fork refused, ...) — the
        # task itself did not raise, so rerun on threads rather than fail
        _FALLBACKS.inc()
        return _thread_map(fn, items, bounds, workers)
    _CHUNKS.inc(len(bounds))
    out: list[R] = []
    for chunk in chunk_results:
        out.extend(chunk)
    return out


# ----------------------------------------------------------------------
def _chunk_bounds(
    n: int, workers: int, chunk_size: int | None
) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous ``(start, end)`` tasks."""
    if chunk_size is None:
        # ~4 tasks per worker: coarse enough to amortize dispatch, fine
        # enough that an unlucky slow chunk rebalances across the pool
        chunk_size = max(1, -(-n // (workers * 4)))
    chunk_size = max(1, min(int(chunk_size), MAX_CHUNK_SIZE))
    return [(i, min(i + chunk_size, n)) for i in range(0, n, chunk_size)]


def _pool_context():
    """Prefer ``fork`` (cheap, inherits warmed module state) when offered."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the shared payload once per worker."""
    fn, items = pickle.loads(payload)
    _WORKER_STATE["fn"] = fn
    _WORKER_STATE["items"] = items


def _run_chunk(bounds: tuple[int, int]) -> list:
    """Run the worker's function over one index range of its items."""
    start, end = bounds
    fn = _WORKER_STATE["fn"]
    items: Sequence = _WORKER_STATE["items"]
    return [fn(item) for item in items[start:end]]


def _thread_map(
    fn: Callable[[T], R],
    items: list[T],
    bounds: list[tuple[int, int]],
    workers: int,
) -> list[R]:
    """Thread-pool fallback: no speedup for CPU-bound fns, but correct."""

    def run(span: tuple[int, int]) -> list[R]:
        return [fn(item) for item in items[span[0] : span[1]]]

    with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
        chunks = list(pool.map(run, bounds))
    _CHUNKS.inc(len(bounds))
    return [result for chunk in chunks for result in chunk]
