"""``python -m repro eval`` — corpus evaluation with parallel scoring.

Runs one parser stack over a generated benchmark split and prints the
standard metric battery, optionally fanning the execution-based metrics
out over worker processes::

    python -m repro eval --dataset spider_like --workers 4
    python -m repro eval --dataset wikisql_like --parser rule --limit 200
    python -m repro eval --dataset spider_like --test-suite --json
"""

from __future__ import annotations

import argparse
import json as _json


def _build_parser(kind: str, dataset):
    if kind == "rule":
        from repro.parsers import KeywordRuleParser

        parser = KeywordRuleParser()
    else:
        from repro.parsers import GrammarSemanticParser

        parser = GrammarSemanticParser()
    parser.train(dataset.split("train").examples, dataset.databases)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.datasets import dataset_names

    arg_parser = argparse.ArgumentParser(
        prog="python -m repro eval", description=__doc__
    )
    arg_parser.add_argument(
        "--dataset", default="spider_like", choices=dataset_names()
    )
    arg_parser.add_argument("--scale", type=float, default=0.02)
    arg_parser.add_argument("--seed", type=int, default=11)
    arg_parser.add_argument(
        "--parser", default="semantic", choices=("semantic", "rule")
    )
    arg_parser.add_argument("--split", default="dev")
    arg_parser.add_argument("--limit", type=int, default=None)
    arg_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for execution-based metrics "
        "(default: REPRO_EVAL_WORKERS, else serial; >1 enables the "
        "parallel driver)",
    )
    arg_parser.add_argument(
        "--test-suite",
        action="store_true",
        help="also score distilled test-suite match (slow but strict)",
    )
    arg_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = arg_parser.parse_args(argv)

    from repro.datasets import build_dataset
    from repro.eval.parallel import resolve_workers
    from repro.metrics import evaluate_parser

    workers = resolve_workers(args.workers, default=1)
    dataset = build_dataset(args.dataset, scale=args.scale, seed=args.seed)
    parser = _build_parser(args.parser, dataset)
    report = evaluate_parser(
        parser,
        dataset,
        split=args.split,
        with_test_suite=args.test_suite,
        limit=args.limit,
        max_workers=workers,
    )

    payload = report.as_dict()
    payload["workers"] = workers
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"{payload['parser']} on {payload['dataset']}/{payload['split']}: "
        f"{payload['total']} examples, {payload['seconds']}s "
        f"({payload['workers']} worker(s))"
    )
    for metric in sorted(report.metric_hits):
        print(f"  {metric:20s} {100 * report.accuracy(metric):5.1f}%")
    hardness = report.hardness_accuracy()
    if hardness:
        breakdown = ", ".join(
            f"{level}={100 * acc:.1f}%" for level, acc in hardness.items()
        )
        print(f"  by hardness: {breakdown}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
