"""``python -m repro explain`` — physical-plan inspection CLI.

Compiles a SQL query against a generated domain database with the
cost-based optimizer, executes it once, and prints the physical operator
tree annotated with estimated vs. actual row counts, e.g.::

    python -m repro explain "SELECT name FROM products WHERE price > 500"
    python -m repro explain --domain healthcare --no-optimizer "SELECT ..."

``--counters`` additionally dumps the plan/parse LRU cache counters and
the statistics/index cache counters, which is how cache behaviour is
inspected during benchmark runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.data.domains import domain_by_name, domain_names
from repro.data.generator import DatabaseGenerator
from repro.errors import SQLError
from repro.sql import index as _index
from repro.sql import stats as _stats
from repro.sql.plan import (
    compile_query,
    _parse_cached,
    parse_cache_stats,
    plan_cache_stats,
    set_optimizer_enabled,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="print the physical plan for a SQL query "
        "(estimates vs. actuals)",
    )
    parser.add_argument("sql", help="the SQL query to explain")
    parser.add_argument(
        "--domain",
        default="sales",
        choices=domain_names(),
        help="curated domain schema/database to plan against",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--rows", type=int, default=200, help="rows per generated table"
    )
    parser.add_argument(
        "--no-optimizer",
        action="store_true",
        help="show the unoptimized (written-order, full-scan) plan",
    )
    parser.add_argument(
        "--counters",
        action="store_true",
        help="also print plan/parse/stats/index cache counters",
    )
    args = parser.parse_args(argv)

    db = DatabaseGenerator(seed=args.seed).populate(
        domain_by_name(args.domain), rows_per_table=args.rows
    )
    previous = set_optimizer_enabled(not args.no_optimizer)
    try:
        try:
            plan = compile_query(_parse_cached(args.sql), db.schema, db)
        except SQLError as exc:
            print(f"explain: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 1
        print(plan.explain(db))
        meta = {k: v for k, v in plan.describe().items() if v}
        if meta:
            print("-- operators: " + ", ".join(
                f"{key}={value}" for key, value in sorted(meta.items())
            ))
    finally:
        set_optimizer_enabled(previous)

    if args.counters:
        _print_counters()
    return 0


def _print_counters() -> None:
    sections = (
        ("plan cache", plan_cache_stats()),
        ("parse cache", parse_cache_stats()),
        ("stats cache", _stats.stats_cache_stats()),
        ("index cache", _index.index_cache_stats()),
    )
    print("-- caches")
    for label, counters in sections:
        rendered = ", ".join(
            f"{key}={value}" for key, value in counters.items()
        )
        print(f"   {label}: {rendered}")


if __name__ == "__main__":
    sys.exit(main())
